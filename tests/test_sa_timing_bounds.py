"""Synchronization-array timing bounds: the shared-port schedule's
booking dict must stay bounded on long runs (regression for unbounded
growth), and queue-capacity back-pressure must show up as
``sa_queue_full`` stall attribution when — and only when — the queue is
actually tight."""

import dataclasses

import pytest

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program
from repro.machine.timing import SAPortSchedule
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.trace import TraceCollector

from ._pipeline_fixture import build_pipeline_loop


class TestSAPortSchedulePrune:
    def test_prune_drops_only_below_watermark(self):
        schedule = SAPortSchedule(ports=2)
        for cycle in range(10):
            schedule.book(cycle)
        schedule.prune(5)
        assert sorted(schedule.booked) == [5, 6, 7, 8, 9]

    def test_next_free_unaffected_at_or_above_watermark(self):
        schedule = SAPortSchedule(ports=1)
        for cycle in (3, 4, 5, 6):
            schedule.book(cycle)
        before = schedule.next_free(5)
        schedule.prune(5)
        assert schedule.next_free(5) == before == 7

    def test_prune_empty_is_a_noop(self):
        schedule = SAPortSchedule(ports=4)
        schedule.prune(1000)
        assert schedule.booked == {}

    def test_booked_stays_bounded_on_long_simulation(self):
        """Regression: before pruning, ``booked`` grew by one entry per
        SA access forever.  A run with tens of thousands of SA accesses
        must stay at or below the prune threshold plus one round of
        growth."""
        f = build_pipeline_loop()
        args = {"r_n": 4000}
        profile = run_function(f, args).profile
        pdg = build_pdg(f)
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        mt = generate(f, pdg, p, None)

        captured = {}
        original = SAPortSchedule.book

        def counting_book(self, cycle):
            captured["accesses"] = captured.get("accesses", 0) + 1
            captured["peak"] = max(captured.get("peak", 0),
                                   len(self.booked))
            original(self, cycle)

        SAPortSchedule.book = counting_book
        try:
            simulate_program(mt, args, config=DEFAULT_CONFIG.for_dswp())
        finally:
            SAPortSchedule.book = original
        assert captured["accesses"] > SAPortSchedule.PRUNE_THRESHOLD
        # Bounded: never far past the threshold (one booking per access
        # may land between prune sweeps).
        assert captured["peak"] <= 2 * SAPortSchedule.PRUNE_THRESHOLD


def _slow_consumer_program():
    """A loop whose *consumer* stage is the slow one — the shape that
    creates produce-side back-pressure.  (DSWP's own partitioner fuses
    this loop into one stage, so the split is pinned by hand: thread 0
    runs the cheap ``r_x`` recurrence, thread 1 the loop-carried
    multiply chain that consumes it.)"""
    from repro.ir import FunctionBuilder
    from repro.partition import Partition

    b = FunctionBuilder("bp_loop", params=["r_n"], live_outs=["r_s"])
    b.label("entry")
    b.movi("r_x", 7)
    b.movi("r_s", 1)
    b.movi("r_i", 0)
    b.jmp("header")
    b.label("header")
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "body", "done")
    b.label("body")
    b.add("r_x", "r_x", 1)          # cheap producer recurrence
    b.mul("r_s", "r_s", 3)          # slow, loop-carried consumer chain
    b.add("r_s", "r_s", "r_x")
    b.mul("r_s", "r_s", 5)
    b.and_("r_s", "r_s", 65535)
    b.add("r_i", "r_i", 1)
    b.jmp("header")
    b.label("done")
    b.exit()
    f = b.build()
    assignment = {i.iid: (1 if i.dest == "r_s" else 0)
                  for i in f.instructions()}
    return generate(f, build_pdg(f), Partition(f, 2, assignment))


def _traced_run(mt, config, n):
    collector = TraceCollector()
    result = simulate_program(mt, {"r_n": n}, config=config,
                              tracer=collector)
    collector.verify()
    return collector, result


class TestBackPressureAttribution:
    @pytest.fixture(scope="class")
    def program(self):
        return _slow_consumer_program()

    def test_tiny_queue_shows_produce_side_stalls(self, program):
        """With a 1-entry SA queue the producer must wait for the slow
        consumer to free the slot, and the attribution must say so."""
        tiny = dataclasses.replace(DEFAULT_CONFIG, sa_queue_size=1)
        collector, _ = _traced_run(program, tiny, n=30)
        assert collector.stall_totals()["sa_queue_full"] > 0

    def test_deep_dswp_queue_absorbs_back_pressure(self, program):
        """On a run short enough that the producer never gets 32
        iterations ahead, the 32-entry DSWP configuration fully
        decouples the stages: zero produce-side stalls."""
        deep = DEFAULT_CONFIG.for_dswp()
        assert deep.sa_queue_size == 32
        collector, _ = _traced_run(program, deep, n=30)
        assert collector.stall_totals()["sa_queue_full"] == 0

    def test_capacity_monotonically_relieves_back_pressure(self, program):
        """On a long run even the deep queue eventually fills (the
        consumer is steady-state slower), but strictly less of the time
        than the 1-entry queue."""
        tiny = dataclasses.replace(DEFAULT_CONFIG, sa_queue_size=1)
        deep = DEFAULT_CONFIG.for_dswp()
        tiny_col, tiny_res = _traced_run(program, tiny, n=300)
        deep_col, deep_res = _traced_run(program, deep, n=300)
        assert tiny_col.stall_totals()["sa_queue_full"] \
            > deep_col.stall_totals()["sa_queue_full"] > 0
        # Consumer-bound either way: the end-to-end time is set by the
        # slow stage, back-pressure just moves where producers wait.
        assert tiny_res.cycles >= deep_res.cycles

    def test_backpressure_lands_on_the_producer_core(self, program):
        """sa_queue_full cycles must be attributed to the *produce*
        side (core 0 here), not to the consumer."""
        tiny = dataclasses.replace(DEFAULT_CONFIG, sa_queue_size=1)
        collector, _ = _traced_run(program, tiny, n=30)
        table = collector.core_table()
        assert table[0]["sa_queue_full"] > 0
        assert table[1]["sa_queue_full"] == 0
