"""Compatibility shim: the random-program grammar now ships with the
package as :mod:`repro.check.generate` (pure-random sampling, used by
``python -m repro fuzz``) and :mod:`repro.check.strategies` (the
hypothesis front end the property tests use).  Import from there."""

from repro.check.generate import (MEM_SIZE, SAFE_BINOPS,  # noqa: F401
                                  ProgramSketch, render_program)
from repro.check.strategies import (program_sketches,  # noqa: F401
                                    random_partition_strategy)

# Historical (private) name for the sketch class.
_ProgramSketch = ProgramSketch
