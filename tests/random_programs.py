"""Hypothesis strategies generating random structured IR programs.

Programs are built from nested sequences / if-else diamonds / bounded
counted loops over a small register pool and a masked-index memory object,
so every generated program terminates and never faults.  Used by the
property tests to stress MTCG, COCO, and the simulators with arbitrary
control flow and arbitrary partitions.
"""

from __future__ import annotations

from typing import List

from hypothesis import strategies as st

from repro.ir import Function, FunctionBuilder, Opcode
from repro.partition import Partition

MEM_SIZE = 32
SAFE_BINOPS = ["add", "sub", "mul", "and", "or", "xor", "min", "max",
               "cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge"]


class _ProgramSketch:
    """A recursive program description that can be rendered to IR."""

    def __init__(self, statements):
        self.statements = statements


_leaf_stmt = st.one_of(
    st.tuples(st.just("alu"), st.sampled_from(SAFE_BINOPS),
              st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("movi"), st.integers(0, 5), st.integers(-20, 20)),
    st.tuples(st.just("load"), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("store"), st.integers(0, 5), st.integers(0, 5)),
    # Early loop exit (a no-op when not inside a loop): exercises
    # multi-exit loops through MTCG/COCO/outlining paths.
    st.tuples(st.just("breakif"), st.integers(0, 5)),
)


def _stmts(depth: int):
    if depth <= 0:
        return st.lists(_leaf_stmt, min_size=1, max_size=4)
    inner = _stmts(depth - 1)
    compound = st.one_of(
        _leaf_stmt,
        st.tuples(st.just("if"), st.integers(0, 5), inner, inner),
        st.tuples(st.just("loop"), st.integers(1, 4), inner),
    )
    return st.lists(compound, min_size=1, max_size=4)


program_sketches = st.builds(_ProgramSketch, _stmts(2))


def render_program(sketch: _ProgramSketch) -> Function:
    """Render a sketch to a verified IR function."""
    builder = FunctionBuilder(
        "random_program", params=["r_in0", "r_in1", "p_m"],
        live_outs=["r0", "r1", "r2"])
    builder.mem("m", MEM_SIZE, ptr="p_m")
    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return "%s%d" % (prefix, counter[0])

    builder.label("entry")
    # Initialize the register pool from the inputs.
    builder.mov("r0", "r_in0")
    builder.mov("r1", "r_in1")
    builder.add("r2", "r_in0", "r_in1")
    builder.sub("r3", "r_in0", "r_in1")
    builder.movi("r4", 7)
    builder.movi("r5", -3)

    def reg(index: int) -> str:
        return "r%d" % index

    def emit_statements(statements, next_label: str,
                        break_label: str = None) -> None:
        """Emit statements into the currently open block; finally jump to
        ``next_label``.  Opens/closes blocks as needed for control flow.
        ``break_label`` is the innermost loop's exit (for "breakif")."""
        for statement in statements:
            kind = statement[0]
            if kind == "breakif":
                _, cond = statement
                if break_label is None:
                    continue  # not inside a loop: no-op
                cond_reg = fresh("r_bc")
                cont_label = fresh("cont")
                builder.cmpgt(cond_reg, reg(cond), 15)
                builder.br(cond_reg, break_label, cont_label)
                builder.label(cont_label)
                continue
            if kind == "alu":
                _, op, dest, a, b = statement
                builder.alu(op, reg(dest), reg(a), reg(b))
            elif kind == "movi":
                _, dest, value = statement
                builder.movi(reg(dest), value)
            elif kind == "load":
                _, dest, addr = statement
                index = fresh("r_ix")
                address = fresh("r_ad")
                builder.and_(index, reg(addr), MEM_SIZE - 1)
                builder.abs(index, index)
                builder.add(address, "p_m", index)
                builder.load(reg(dest), address)
            elif kind == "store":
                _, value, addr = statement
                index = fresh("r_ix")
                address = fresh("r_ad")
                builder.and_(index, reg(addr), MEM_SIZE - 1)
                builder.abs(index, index)
                builder.add(address, "p_m", index)
                builder.store(address, reg(value))
            elif kind == "if":
                _, cond, then_statements, else_statements = statement
                cond_reg = fresh("r_c")
                then_label = fresh("then")
                else_label = fresh("else")
                join_label = fresh("join")
                builder.cmpgt(cond_reg, reg(cond), 0)
                builder.br(cond_reg, then_label, else_label)
                builder.label(then_label)
                emit_statements(then_statements, join_label,
                                break_label)
                builder.label(else_label)
                emit_statements(else_statements, join_label,
                                break_label)
                builder.label(join_label)
            elif kind == "loop":
                _, trips, body = statement
                i_reg = fresh("r_i")
                cond_reg = fresh("r_c")
                header = fresh("head")
                body_label = fresh("body")
                done_label = fresh("done")
                builder.movi(i_reg, trips)
                builder.jmp(header)
                builder.label(header)
                builder.cmpgt(cond_reg, i_reg, 0)
                builder.br(cond_reg, body_label, done_label)
                builder.label(body_label)
                builder.sub(i_reg, i_reg, 1)
                emit_statements(body, header,
                                break_label=done_label)
                builder.label(done_label)
            else:  # pragma: no cover
                raise AssertionError("unknown statement %r" % (statement,))
        builder.jmp(next_label)

    final = "final"
    emit_statements(sketch.statements, final)
    builder.label(final)
    builder.exit()
    return builder.build()


def random_partition_strategy(function: Function, max_threads: int = 3):
    """Strategy of random partitions for a fixed function (exit pinned to
    thread 0, everything else arbitrary)."""
    iids = [instruction.iid for instruction in function.instructions()
            if instruction.op is not Opcode.EXIT]
    exits = [instruction.iid for instruction in function.instructions()
             if instruction.op is Opcode.EXIT]

    def build(n_threads: int, choices: List[int]) -> Partition:
        assignment = {iid: choices[index] % n_threads
                      for index, iid in enumerate(iids)}
        for iid in exits:
            assignment[iid] = 0
        return Partition(function, n_threads, assignment)

    return st.builds(
        build,
        st.integers(2, max_threads),
        st.lists(st.integers(0, max_threads - 1),
                 min_size=len(iids), max_size=len(iids)))
