"""End-to-end determinism: the whole toolchain — profiling, partitioning,
COCO, MTCG, and both simulators — produces bit-identical results across
repeated in-process runs (cross-process determinism is exercised by the
hash-seed-independence design choices; see docs/extending.md)."""

from repro import evaluate_workload, get_workload
from repro.ir import format_function


def _snapshot(evaluation):
    program = evaluation.parallelization.program
    return (
        evaluation.st_result.cycles,
        evaluation.mt_result.cycles,
        evaluation.mt_result.dynamic_instructions,
        evaluation.communication_instructions,
        tuple(sorted(evaluation.parallelization.partition
                     .assignment.items())),
        tuple(format_function(thread) for thread in program.threads),
        tuple((c.queue, c.kind.value, c.register, tuple(sorted(c.points)))
              for c in program.channels),
    )


class TestDeterminism:
    def test_gremio_coco_pipeline_is_deterministic(self):
        first = evaluate_workload(get_workload("ks"), technique="gremio",
                                  coco=True, scale="train")
        second = evaluate_workload(get_workload("ks"), technique="gremio",
                                   coco=True, scale="train")
        assert _snapshot(first) == _snapshot(second)

    def test_dswp_pipeline_is_deterministic(self):
        first = evaluate_workload(get_workload("300.twolf"),
                                  technique="dswp", coco=True,
                                  scale="train")
        second = evaluate_workload(get_workload("300.twolf"),
                                   technique="dswp", coco=True,
                                   scale="train")
        assert _snapshot(first) == _snapshot(second)

    def test_workload_inputs_are_seeded(self):
        workload = get_workload("183.equake")
        a = workload.make_inputs("ref")
        b = workload.make_inputs("ref")
        assert a.args == b.args
        assert a.memory == b.memory
        # ...and train differs from ref (different seed and size).
        train = workload.make_inputs("train")
        assert train.memory != a.memory
