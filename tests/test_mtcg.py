"""MTCG correctness tests: structure and, crucially, semantic equivalence
of the generated multi-threaded code with the single-threaded original."""

import pytest

from repro.analysis import DepKind, build_pdg
from repro.ir import Opcode
from repro.mtcg import generate
from repro.partition import (partition_from_threads,
                             single_thread_partition)

from .helpers import (build_counted_loop, build_diamond, build_memory_loop,
                      build_nested_loops, build_paper_figure3,
                      build_paper_figure4, build_straightline)
from .mt_utils import (assert_equivalent, block_level_partition, make_mt,
                       round_robin_partition)


class TestSingleThreadDegenerate:
    """With everything on one thread, MTCG must insert no communication."""

    @pytest.mark.parametrize("factory,args", [
        (build_straightline, {"r_a": 2, "r_b": 3}),
        (build_diamond, {"r_a": -7}),
        (build_counted_loop, {"r_n": 9}),
        (build_nested_loops, {"r_n": 3, "r_m": 4}),
    ])
    def test_no_channels_and_equivalent(self, factory, args):
        f = factory()
        p = single_thread_partition(f)
        mt = make_mt(f, p)
        assert mt.channels == []
        assert mt.n_threads == 1
        assert_equivalent(f, p, args, mt_program=mt)


class TestTwoThreadSplits:
    def test_straightline_split(self):
        f = build_straightline()
        # add on T0; mul and final sub on T1; exit on T1.
        instrs = list(f.instructions())
        p = partition_from_threads(f, 2, [
            [instrs[0].iid], [i.iid for i in instrs[1:]]])
        st, mt = assert_equivalent(f, p, {"r_a": 2, "r_b": 3})
        # Exactly one register channel (r_x from the add).
        assert len(mt.program.channels) == 1
        channel = mt.program.channels[0]
        assert channel.kind is DepKind.REGISTER
        assert channel.register == "r_x"

    def test_diamond_offloaded_arm(self):
        f = build_diamond()
        then_iids = [i.iid for i in f.block("then").body]
        rest = [i.iid for i in f.instructions()
                if i.iid not in then_iids]
        p = partition_from_threads(f, 2, [rest, then_iids])
        for a in (-3, 0, 5):
            assert_equivalent(f, p, {"r_a": a})

    def test_counted_loop_consumer_thread(self):
        """The whole loop on T0; the exit (using r_s) on T1 — a live-out
        communication like the companion text's Figure 4."""
        f = build_counted_loop()
        exit_iid = f.block("done").terminator.iid
        others = [i.iid for i in f.instructions() if i.iid != exit_iid]
        p = partition_from_threads(f, 2, [others, [exit_iid]])
        assert_equivalent(f, p, {"r_n": 25})

    def test_memory_loop_split_load_store(self):
        """Loads on T0, stores on T1: cross-thread register deps carry the
        values; the address recomputation is duplicated control flow."""
        f = build_memory_loop()
        t1 = []
        for instruction in f.instructions():
            if instruction.op in (Opcode.STORE,):
                t1.append(instruction.iid)
        t0 = [i.iid for i in f.instructions() if i.iid not in t1]
        p = partition_from_threads(f, 2, [t0, t1])
        data = list(range(20))
        assert_equivalent(f, p, {"r_n": 20},
                          initial_memory={"arr_in": data})

    def test_figure3_paper_partition(self):
        """The partition of the companion text's Figure 3: the store (F)
        alone on thread 2."""
        f = build_paper_figure3()
        store = next(i for i in f.instructions()
                     if i.op is Opcode.STORE)
        others = [i.iid for i in f.instructions() if i.iid != store.iid]
        p = partition_from_threads(f, 2, [others, [store.iid]])
        data = [3, 7, 250, 9, 0, 11, 42, 5]
        st, mt = assert_equivalent(
            f, p, {"r_n": 8}, initial_memory={"f3_in": data})
        # Thread 1 must contain a duplicated branch (control dependence).
        t1_ops = [i.op for i in mt.program.threads[1].instructions()]
        assert Opcode.CONSUME in t1_ops
        assert Opcode.BR in t1_ops

    def test_figure4_paper_partition(self):
        """Figure 4 of the companion text: loop 1 produces r1 on T_s, loop 2
        consumes it on T_t.  Baseline MTCG communicates r1 every iteration
        of loop 1."""
        f = build_paper_figure4()
        loop1_blocks = {"B1", "B2"}
        block_of = f.block_of()
        t0, t1 = [], []
        for instruction in f.instructions():
            if block_of[instruction.iid] in loop1_blocks:
                t0.append(instruction.iid)
            else:
                t1.append(instruction.iid)
        p = partition_from_threads(f, 2, [t0, t1])
        st, mt = assert_equivalent(f, p, {"r_n": 10, "r_m": 4})
        # Baseline: r1 is communicated once per loop-1 iteration (10 times),
        # because the produce sits right after the definition inside loop 1.
        produces = [op for op in mt.opcode_counts.elements()
                    if op is Opcode.PRODUCE]
        assert mt.opcode_counts[Opcode.PRODUCE] >= 10

    def test_three_threads(self):
        f = build_nested_loops()
        p = round_robin_partition(f, 3)
        assert_equivalent(f, p, {"r_n": 4, "r_m": 3})

    def test_queue_capacity_one(self):
        """Single-element queues (the non-DSWP hardware configuration) must
        still be deadlock-free."""
        f = build_counted_loop()
        p = round_robin_partition(f, 2)
        assert_equivalent(f, p, {"r_n": 12}, queue_capacity=1)


class TestAdversarialPartitions:
    @pytest.mark.parametrize("factory,args,mem", [
        (build_straightline, {"r_a": -5, "r_b": 8}, {}),
        (build_diamond, {"r_a": 4}, {}),
        (build_counted_loop, {"r_n": 11}, {}),
        (build_nested_loops, {"r_n": 3, "r_m": 5}, {}),
        (build_memory_loop, {"r_n": 16}, {"arr_in": list(range(16))}),
        (build_paper_figure3, {"r_n": 6}, {"f3_in": [1, 200, 3, 9, 150, 7]}),
        (build_paper_figure4, {"r_n": 7, "r_m": 3}, {}),
    ])
    @pytest.mark.parametrize("n_threads", [2, 3, 4])
    def test_round_robin(self, factory, args, mem, n_threads):
        f = factory()
        p = round_robin_partition(f, n_threads)
        assert_equivalent(f, p, args, initial_memory=mem)

    @pytest.mark.parametrize("factory,args,mem", [
        (build_counted_loop, {"r_n": 11}, {}),
        (build_nested_loops, {"r_n": 3, "r_m": 5}, {}),
        (build_memory_loop, {"r_n": 16}, {"arr_in": list(range(16))}),
    ])
    def test_block_level(self, factory, args, mem):
        f = factory()
        p = block_level_partition(f, 2)
        assert_equivalent(f, p, args, initial_memory=mem)


class TestStructure:
    def test_every_thread_has_exit(self):
        f = build_nested_loops()
        p = round_robin_partition(f, 3)
        mt = make_mt(f, p)
        for thread_function in mt.threads:
            assert thread_function.exit_blocks()

    def test_exit_must_be_on_one_thread(self):
        f = build_diamond()
        pdg = build_pdg(f)
        # Force the exit onto thread 1 while validating error detection on
        # a contrived double-exit function is covered elsewhere; here the
        # single exit is fine.
        p = round_robin_partition(f, 2)
        mt = generate(f, pdg, p)
        assert mt.exit_thread == 0

    def test_channels_have_unique_queues(self):
        f = build_paper_figure3()
        p = round_robin_partition(f, 2)
        mt = make_mt(f, p)
        queues = [c.queue for c in mt.channels]
        assert len(queues) == len(set(queues))
        assert queues == sorted(queues)

    def test_uninvolved_thread_is_trivial(self):
        """A thread with no instructions gets only entry->exit glue."""
        f = build_straightline()
        all_iids = [i.iid for i in f.instructions()]
        p = partition_from_threads(f, 2, [all_iids, []])
        mt = make_mt(f, p)
        t1 = mt.threads[1]
        ops = [i.op for i in t1.instructions()]
        assert set(ops) <= {Opcode.JMP, Opcode.EXIT}
        assert_equivalent(f, p, {"r_a": 1, "r_b": 2}, mt_program=mt)

    def test_dedup_one_channel_for_two_uses(self):
        """Two uses of the same def in the other thread share one channel
        (the 'communicate once' optimization of Algorithm 1)."""
        from repro.ir import FunctionBuilder
        b = FunctionBuilder("dedup", params=["r_a"], live_outs=["r_x", "r_y"])
        b.label("entry")
        b.add("r_v", "r_a", 1)
        b.mul("r_x", "r_v", 2)
        b.mul("r_y", "r_v", 3)
        b.exit()
        f = b.build()
        instrs = list(f.instructions())
        p = partition_from_threads(
            f, 2, [[instrs[0].iid],
                   [i.iid for i in instrs[1:]]])
        mt = make_mt(f, p)
        register_channels = [c for c in mt.channels
                             if c.kind is DepKind.REGISTER]
        assert len(register_channels) == 1
        assert_equivalent(f, p, {"r_a": 5}, mt_program=mt)
