"""Tests for ``tools/check_cache_smoke.py`` — the cold/warm artifact-
cache contract checker shared by the CI ``cache-smoke`` job."""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "tools"))

from check_cache_smoke import (CacheSmokeError, check, main,  # noqa: E402
                               metric_rows, parse_summary)

METRICS = """\
benchmark   technique   speedup
181.mcf     gremio      1.523
ks          dswp        1.104
"""

COLD = METRICS + "artifact cache: 0 hits, 24 misses\n"
WARM = METRICS + "artifact cache: 24 hits, 0 misses\n"


class TestParsers:
    def test_parse_summary(self):
        assert parse_summary(COLD) == (0, 24)
        assert parse_summary(WARM) == (24, 0)

    def test_parse_summary_missing(self):
        with pytest.raises(CacheSmokeError, match="cold output"):
            parse_summary("no summary here", "cold")

    def test_metric_rows(self):
        rows = metric_rows(COLD)
        assert len(rows) == 2
        assert rows[0].startswith("181.mcf")


class TestCheck:
    def test_contract_holds(self):
        check(COLD, WARM)  # does not raise

    def test_cold_run_must_miss(self):
        with pytest.raises(CacheSmokeError, match="populate"):
            check(METRICS + "artifact cache: 5 hits, 0 misses\n", WARM)

    def test_warm_run_must_hit(self):
        with pytest.raises(CacheSmokeError, match="no cache hits"):
            check(COLD, METRICS + "artifact cache: 0 hits, 0 misses\n")

    def test_warm_run_must_not_miss(self):
        with pytest.raises(CacheSmokeError, match="fully cached"):
            check(COLD, METRICS + "artifact cache: 20 hits, 4 misses\n")

    def test_metrics_must_match(self):
        drifted = COLD.replace("1.523", "1.524").replace(
            "0 hits, 24 misses", "24 hits, 0 misses")
        with pytest.raises(CacheSmokeError, match="different metrics"):
            check(COLD, drifted)


class TestMain:
    def write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_ok_exit_zero(self, tmp_path, capsys):
        cold = self.write(tmp_path, "cold.txt", COLD)
        warm = self.write(tmp_path, "warm.txt", WARM)
        assert main([cold, warm]) == 0
        assert "cache-smoke ok" in capsys.readouterr().out

    def test_violation_exit_one(self, tmp_path, capsys):
        cold = self.write(tmp_path, "cold.txt", COLD)
        bad = self.write(tmp_path, "warm.txt", COLD)
        assert main([cold, bad]) == 1
        assert "cache-smoke FAILED" in capsys.readouterr().err

    def test_usage_exit_two(self, capsys):
        assert main(["only-one-arg"]) == 2
        assert "usage" in capsys.readouterr().err
