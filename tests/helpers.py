"""Shared fixtures: small IR programs used across the test suite.

Several of these encode the running examples of the GMT scheduling papers
(Figure 3, 4 and 5 of the ASPLOS 2008 companion text), so analysis and
codegen behaviour can be checked against the published walk-throughs.
"""

from __future__ import annotations

from repro.ir import Function, FunctionBuilder


def build_straightline() -> Function:
    """entry -> exit, pure arithmetic."""
    b = FunctionBuilder("straightline", params=["r_a", "r_b"],
                        live_outs=["r_x", "r_y"])
    b.label("entry")
    b.add("r_x", "r_a", "r_b")
    b.mul("r_y", "r_x", 3)
    b.sub("r_x", "r_y", "r_a")
    b.exit()
    return b.build()


def build_diamond() -> Function:
    """if/else diamond joining before exit."""
    b = FunctionBuilder("diamond", params=["r_a"], live_outs=["r_x"])
    b.label("entry")
    b.cmpgt("r_c", "r_a", 0)
    b.br("r_c", "then", "else_")
    b.label("then")
    b.mov("r_x", "r_a")
    b.jmp("join")
    b.label("else_")
    b.neg("r_x", "r_a")
    b.jmp("join")
    b.label("join")
    b.add("r_x", "r_x", 1)
    b.exit()
    return b.build()


def build_counted_loop(n_param: str = "r_n") -> Function:
    """for (i = 0; i < n; i++) s += i; with s live-out."""
    b = FunctionBuilder("counted_loop", params=[n_param],
                        live_outs=["r_s"])
    b.label("entry")
    b.movi("r_s", 0)
    b.movi("r_i", 0)
    b.jmp("header")
    b.label("header")
    b.cmplt("r_c", "r_i", n_param)
    b.br("r_c", "body", "done")
    b.label("body")
    b.add("r_s", "r_s", "r_i")
    b.add("r_i", "r_i", 1)
    b.jmp("header")
    b.label("done")
    b.exit()
    return b.build()


def build_nested_loops() -> Function:
    """Two-level loop nest: sum of i*j products."""
    b = FunctionBuilder("nested_loops", params=["r_n", "r_m"],
                        live_outs=["r_s"])
    b.label("entry")
    b.movi("r_s", 0)
    b.movi("r_i", 0)
    b.jmp("outer")
    b.label("outer")
    b.cmplt("r_c0", "r_i", "r_n")
    b.br("r_c0", "outer_body", "done")
    b.label("outer_body")
    b.movi("r_j", 0)
    b.jmp("inner")
    b.label("inner")
    b.cmplt("r_c1", "r_j", "r_m")
    b.br("r_c1", "inner_body", "outer_latch")
    b.label("inner_body")
    b.mul("r_t", "r_i", "r_j")
    b.add("r_s", "r_s", "r_t")
    b.add("r_j", "r_j", 1)
    b.jmp("inner")
    b.label("outer_latch")
    b.add("r_i", "r_i", 1)
    b.jmp("outer")
    b.label("done")
    b.exit()
    return b.build()


def build_memory_loop() -> Function:
    """out[i] = in[i] * 2 over an array; exercises loads/stores/alias."""
    b = FunctionBuilder("memory_loop", params=["p_in", "p_out", "r_n"],
                        live_outs=[])
    b.mem("arr_in", 64, ptr="p_in")
    b.mem("arr_out", 64, ptr="p_out")
    b.label("entry")
    b.movi("r_i", 0)
    b.jmp("header")
    b.label("header")
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "body", "done")
    b.label("body")
    b.add("r_pa", "p_in", "r_i")
    b.load("r_v", "r_pa")
    b.mul("r_v", "r_v", 2)
    b.add("r_pb", "p_out", "r_i")
    b.store("r_pb", "r_v")
    b.add("r_i", "r_i", 1)
    b.jmp("header")
    b.label("done")
    b.exit()
    return b.build()


def build_paper_figure3() -> Function:
    """The running example of the companion text's Figure 3.

        B1:  A: r1 = M[r5]        (modeled: r1 = load in[r5])
             B: r2 = r1 < 10      (cmplt)
             C: branch r2, B3     (br)
        B2:  D: branch r3, B4     (loop-ish side branch; here: br r3)
             E: r1 = r1 + 1       (on the fall-through path)
        B3:  F: M[r6] = r1        (store out)
             G: jump B1 / exit    (here: back-edge guarded to terminate)

    We reproduce the shape: A,B,C in B1; D,E in B2; F,G in B3, with the
    register dependences (A->F), (E->F) on r1 and control dependence via D.
    A loop guard makes the function executable and terminating.
    """
    b = FunctionBuilder("figure3", params=["p_in", "p_out", "r_n"],
                        live_outs=["r1"])
    b.mem("f3_in", 32, ptr="p_in")
    b.mem("f3_out", 32, ptr="p_out")
    b.label("B0")            # loop counter setup (not in the paper figure)
    b.movi("r_i", 0)
    b.jmp("B1")
    b.label("B1")
    b.add("r_a", "p_in", "r_i")
    b.load("r1", "r_a")                    # A: r1 = ...
    b.cmplt("r2", "r1", 10)                # B: r2 = r1 < 10
    b.br("r2", "B3", "B2")                 # C: branch to B3 or fall to B2
    b.label("B2")
    b.cmpgt("r3", "r1", 100)               # feeds D
    b.br("r3", "B3", "B2b")                # D: branch
    b.label("B2b")
    b.add("r1", "r1", 1)                   # E: r1 = r1 + 1
    b.jmp("B3")
    b.label("B3")
    b.add("r_b", "p_out", "r_i")
    b.store("r_b", "r1")                   # F: store r1
    b.add("r_i", "r_i", 1)
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "B1", "B4")                # G: loop / exit
    b.label("B4")
    b.exit()
    return b.build()


def build_paper_figure4() -> Function:
    """The companion text's Figure 4: two sequential loops; the first
    computes r1 (thread T_s = {A, B, C}), the second only uses its final
    value (thread T_t = {D, E, F}).  MTCG communicates r1 every iteration
    of loop 1; the optimized placement communicates it once, in B3."""
    b = FunctionBuilder("figure4", params=["r_n", "r_m"],
                        live_outs=["r1", "r2"])
    b.label("B1")
    b.movi("r1", 0)
    b.movi("r_i", 0)
    b.jmp("B2")
    b.label("B2")
    b.add("r1", "r1", 3)                   # B: r1 += 3 (loop 1 body)
    b.add("r_i", "r_i", 1)
    b.cmplt("r_c1", "r_i", "r_n")
    b.br("r_c1", "B2", "B3")               # C: loop 1 back edge
    b.label("B3")
    b.movi("r2", 0)
    b.movi("r_j", 0)
    b.jmp("B4")
    b.label("B4")
    b.add("r2", "r2", "r1")                # E: uses r1 (loop 2 body)
    b.add("r_j", "r_j", 1)
    b.cmplt("r_c2", "r_j", "r_m")
    b.br("r_c2", "B4", "B5")               # F: loop 2 back edge
    b.label("B5")
    b.exit()
    return b.build()
