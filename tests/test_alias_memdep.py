"""Tests for the alias analysis (all modes) and memory dependence arcs."""

import pytest

from repro.analysis import AliasAnalysis, build_pdg, memory_dependences
from repro.analysis.pdg import DepKind
from repro.ir import FunctionBuilder, Opcode

from .helpers import build_memory_loop


def _two_array_kernel():
    """Load from a, store to b, both addressed off distinct pointers."""
    b = FunctionBuilder("two_arrays", params=["p_a", "p_b", "r_n"])
    b.mem("arr_a", 16, ptr="p_a")
    b.mem("arr_b", 16, ptr="p_b")
    b.label("entry")
    b.movi("r_i", 0)
    b.jmp("loop")
    b.label("loop")
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "body", "done")
    b.label("body")
    b.add("r_pa", "p_a", "r_i")
    b.load("r_v", "r_pa")
    b.add("r_pb", "p_b", "r_i")
    b.store("r_pb", "r_v")
    b.add("r_i", "r_i", 1)
    b.jmp("loop")
    b.label("done")
    b.exit()
    return b.build()


class TestProvenance:
    def test_pointer_params_tracked(self):
        f = _two_array_kernel()
        alias = AliasAnalysis(f)
        assert alias.register_provenance("p_a") == frozenset({"arr_a"})
        assert alias.register_provenance("r_pa") == frozenset({"arr_a"})
        assert alias.register_provenance("r_pb") == frozenset({"arr_b"})

    def test_non_pointer_has_empty_provenance(self):
        f = _two_array_kernel()
        alias = AliasAnalysis(f)
        assert alias.register_provenance("r_i") == frozenset()
        assert alias.register_provenance("r_c") == frozenset()

    def test_loaded_value_is_unknown(self):
        f = _two_array_kernel()
        alias = AliasAnalysis(f)
        assert alias.register_provenance("r_v") is None  # UNKNOWN

    def test_disjoint_objects_do_not_alias(self):
        f = _two_array_kernel()
        alias = AliasAnalysis(f, mode="provenance")
        load = next(i for i in f.instructions() if i.op is Opcode.LOAD)
        store = next(i for i in f.instructions() if i.op is Opcode.STORE)
        assert not alias.may_alias(load, store)

    def test_merge_through_select_like_flow(self):
        b = FunctionBuilder("merge", params=["p_a", "p_b", "r_c"])
        b.mem("oa", 8, ptr="p_a")
        b.mem("ob", 8, ptr="p_b")
        b.label("entry")
        b.br("r_c", "use_a", "use_b")
        b.label("use_a")
        b.mov("r_p", "p_a")
        b.jmp("go")
        b.label("use_b")
        b.mov("r_p", "p_b")
        b.jmp("go")
        b.label("go")
        b.load("r_v", "r_p")
        b.exit()
        f = b.build()
        alias = AliasAnalysis(f)
        assert alias.register_provenance("r_p") == frozenset({"oa", "ob"})


class TestAliasModes:
    def test_mode_none_everything_aliases(self):
        f = _two_array_kernel()
        alias = AliasAnalysis(f, mode="none")
        load = next(i for i in f.instructions() if i.op is Opcode.LOAD)
        store = next(i for i in f.instructions() if i.op is Opcode.STORE)
        assert alias.may_alias(load, store)

    def test_annotations_only_respected_in_annotated_mode(self):
        b = FunctionBuilder("ann", params=["p_a"])
        b.mem("obj", 8, ptr="p_a")
        b.label("entry")
        b.load("r_x", "p_a", 0, region="half1")
        b.store("p_a", "r_x", 4, region="half2")
        b.exit()
        f = b.build()
        load = f.entry.instructions[0]
        store = f.entry.instructions[1]
        assert not AliasAnalysis(f, "annotated").may_alias(load, store)
        # Provenance alone cannot distinguish the halves.
        assert AliasAnalysis(f, "provenance").may_alias(load, store)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            AliasAnalysis(_two_array_kernel(), mode="magic")


class TestMemoryDependences:
    def test_disjoint_arrays_no_arcs(self):
        f = _two_array_kernel()
        assert memory_dependences(f) == []

    def test_same_array_bidirectional_in_loop(self):
        f = build_memory_loop()
        # Force everything into one may-alias region.
        for instruction in f.instructions():
            if instruction.is_memory():
                instruction.region = "everything"
        arcs = memory_dependences(f)
        load = next(i for i in f.instructions() if i.op is Opcode.LOAD)
        store = next(i for i in f.instructions() if i.op is Opcode.STORE)
        assert (load.iid, store.iid) in arcs
        assert (store.iid, load.iid) in arcs  # loop-carried: bidirectional

    def test_straightline_is_unidirectional(self):
        b = FunctionBuilder("seq", params=["p_a"])
        b.mem("obj", 8, ptr="p_a")
        b.label("entry")
        b.movi("r_x", 1)
        b.store("p_a", "r_x")
        b.load("r_y", "p_a")
        b.exit()
        f = b.build()
        arcs = memory_dependences(f)
        store = f.entry.instructions[1]
        load = f.entry.instructions[2]
        assert arcs == [(store.iid, load.iid)]

    def test_load_load_never_depends(self):
        b = FunctionBuilder("ll", params=["p_a"])
        b.mem("obj", 8, ptr="p_a")
        b.label("entry")
        b.load("r_x", "p_a")
        b.load("r_y", "p_a")
        b.exit()
        assert memory_dependences(b.build()) == []

    def test_pdg_uses_supplied_alias_analysis(self):
        f = _two_array_kernel()
        precise = build_pdg(f, AliasAnalysis(f, "provenance"))
        coarse = build_pdg(f, AliasAnalysis(f, "none"))
        assert not precise.arcs_of_kind(DepKind.MEMORY)
        assert coarse.arcs_of_kind(DepKind.MEMORY)
