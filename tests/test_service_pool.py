"""Service behaviour: admission shedding, timeout degradation to stale
cached artifacts, idempotent memoization, and crashed-worker recovery
in the multiprocess pool."""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.api import (EvaluateRequest, EvaluateResult, configure_cache,
                       get_cache)
from repro.service import (AdmissionQueue, InlineWorkerPool,
                           ProcessWorkerPool, QueueFullError, RESULT_STAGE,
                           SchedulerService, ServiceConfig, ServiceMetrics,
                           make_pool)
import repro.service.workers as workers_module


@pytest.fixture
def isolated_cache(tmp_path):
    previous = configure_cache(str(tmp_path / "artifacts"))
    try:
        yield get_cache()
    finally:
        configure_cache(previous.directory, previous.enabled)


def _body(**overrides):
    fields = dict(program={"kind": "registry", "value": "ks"},
                  technique="gremio", n_threads=2, scale="train")
    fields.update(overrides)
    return fields


def _fake_result(request: EvaluateRequest,
                 speedup: float = 1.0) -> EvaluateResult:
    return EvaluateResult(request=request, metrics={"speedup": speedup})


class TestAdmissionQueue:
    def test_sheds_beyond_limit_and_frees_on_leave(self):
        queue = AdmissionQueue(2)
        queue.enter()
        queue.enter()
        with pytest.raises(QueueFullError):
            queue.enter()
        assert queue.shed_total == 1
        queue.leave()
        queue.enter()  # freed slot is reusable
        assert queue.active == 2
        assert queue.admitted_total == 3

    def test_tenant_cap_keeps_shedding_fair(self):
        queue = AdmissionQueue(4, tenant_limit=2)
        queue.enter("noisy")
        queue.enter("noisy")
        with pytest.raises(QueueFullError) as shed:
            queue.enter("noisy")
        assert shed.value.tenant == "noisy" and shed.value.tenant_full
        # The flooding tenant is at its own cap, but the global queue
        # is not: another tenant is still admitted into the slack.
        queue.enter("quiet")
        queue.enter("quiet")
        tenants = queue.tenants()
        assert tenants["noisy"] == {"active": 2, "admitted": 2,
                                    "shed": 1}
        assert tenants["quiet"] == {"active": 2, "admitted": 2,
                                    "shed": 0}
        queue.leave("noisy")
        queue.enter("noisy")  # freed tenant allowance is reusable
        assert queue.active == 4
        assert queue.admitted_total == 5 and queue.shed_total == 1


class TestShedding:
    def test_full_queue_sheds_429_instead_of_hanging(self, isolated_cache):
        release = threading.Event()

        def blocking_evaluate(request):
            release.wait(10.0)
            return _fake_result(request)

        service = SchedulerService(ServiceConfig(
            workers=0, inline_threads=4, queue_limit=2,
            request_timeout=10.0, quiet=True,
            evaluate_fn=blocking_evaluate))
        try:
            outcomes = {}

            def post(n_threads):
                status, document, outcome = service.handle_evaluate(
                    _body(n_threads=n_threads))
                outcomes[n_threads] = (status, document, outcome)

            threads = [threading.Thread(target=post, args=(n,))
                       for n in (2, 4)]
            for thread in threads:
                thread.start()
            deadline = time.time() + 5.0
            while service.admission.active < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert service.admission.active == 2

            started = time.time()
            status, document, outcome = service.handle_evaluate(
                _body(n_threads=8))
            assert time.time() - started < 2.0  # shed, not queued
            assert (status, outcome) == (429, "shed")
            assert document["kind"] == "shed"
            assert document["queue_limit"] == 2

            release.set()
            for thread in threads:
                thread.join(5.0)
            assert {s for s, _, _ in outcomes.values()} == {200}

            counters = service.metrics.counters
            assert counters["shed_total"] == 1
            assert counters["requests_total"] == 3
            assert counters["responses_ok"] == 2
        finally:
            release.set()
            service.close()

    def test_flooding_tenant_cannot_starve_another(self, isolated_cache):
        release = threading.Event()

        def blocking_evaluate(request):
            release.wait(10.0)
            return _fake_result(request)

        service = SchedulerService(ServiceConfig(
            workers=0, inline_threads=4, queue_limit=4, tenant_limit=2,
            request_timeout=10.0, quiet=True,
            evaluate_fn=blocking_evaluate))
        try:
            outcomes = {}

            def post(tag, n_threads, tenant):
                status, document, outcome = service.handle_evaluate(
                    _body(n_threads=n_threads), tenant=tenant)
                outcomes[tag] = (status, document, outcome)

            flood = [threading.Thread(target=post,
                                      args=("noisy-%d" % n, n, "noisy"))
                     for n in (2, 4)]
            for thread in flood:
                thread.start()
            deadline = time.time() + 5.0
            while service.admission.active < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert service.admission.active == 2

            # The third noisy request hits the per-tenant cap although
            # the global queue still has room -> shed with 429, fairly.
            status, document, outcome = service.handle_evaluate(
                _body(n_threads=8), tenant="noisy")
            assert (status, outcome) == (429, "shed")
            assert document["kind"] == "shed"
            assert document["tenant"] == "noisy"

            # A quieter tenant is admitted into the remaining room the
            # flooder could not claim.
            quiet = threading.Thread(target=post,
                                     args=("quiet", 6, "quiet"))
            quiet.start()
            deadline = time.time() + 5.0
            while (service.admission.tenants()
                   .get("quiet", {}).get("active", 0) < 1
                   and time.time() < deadline):
                time.sleep(0.01)
            tenants = service.admission.tenants()
            assert tenants["noisy"]["active"] == 2
            assert tenants["noisy"]["shed"] == 1
            assert tenants["quiet"]["active"] == 1

            release.set()
            for thread in flood + [quiet]:
                thread.join(5.0)
            assert outcomes["quiet"][0] == 200
            assert {outcomes["noisy-%d" % n][0] for n in (2, 4)} == {200}

            # Per-tenant depth and shed counters surface in /metrics.
            document = service.metrics_document()
            assert document["tenants"]["noisy"]["shed"] == 1
            assert document["tenants"]["noisy"]["admitted"] == 2
            assert document["tenants"]["quiet"]["admitted"] == 1
        finally:
            release.set()
            service.close()


class TestTimeoutDegradation:
    def test_timeout_serves_stale_cached_artifact(self, isolated_cache):
        body = _body()
        request = EvaluateRequest.from_dict(body)
        key = request.request_key()
        isolated_cache.store(RESULT_STAGE, key,
                             _fake_result(request, speedup=2.0).as_dict())

        def slow_evaluate(req):
            time.sleep(1.0)
            return _fake_result(req)

        service = SchedulerService(ServiceConfig(
            workers=0, request_timeout=0.05, quiet=True,
            evaluate_fn=slow_evaluate))
        try:
            status, document, outcome = service.handle_evaluate(body)
            assert (status, outcome) == (200, "stale")
            assert document["stale"] is True
            assert document["stale_age_seconds"] >= 0.0
            assert document["metrics"]["speedup"] == 2.0
            counters = service.metrics.counters
            assert counters["timeouts_total"] == 1
            assert counters["stale_served"] == 1
        finally:
            service.close()

    def test_timeout_without_cached_artifact_is_504(self, isolated_cache):
        def slow_evaluate(req):
            time.sleep(1.0)
            return _fake_result(req)

        service = SchedulerService(ServiceConfig(
            workers=0, request_timeout=0.05, quiet=True,
            evaluate_fn=slow_evaluate))
        try:
            status, document, outcome = service.handle_evaluate(_body())
            assert (status, outcome) == (504, "timeout")
            assert document["kind"] == "timeout"
        finally:
            service.close()


class TestMemoization:
    def test_repeat_request_is_memoized_not_reevaluated(self,
                                                        isolated_cache):
        calls = []

        def counting_evaluate(request):
            calls.append(request.request_key())
            return _fake_result(request, speedup=1.5)

        service = SchedulerService(ServiceConfig(
            workers=0, quiet=True, evaluate_fn=counting_evaluate))
        try:
            first = service.handle_evaluate(_body())
            second = service.handle_evaluate(_body())
            assert first[0] == second[0] == 200
            assert first[2] == "ok" and second[2] == "memo"
            assert second[1]["memoized"] is True
            assert second[1]["metrics"] == first[1]["metrics"]
            assert len(calls) == 1  # idempotent: evaluated once
            assert service.metrics.counters["memo_hits"] == 1

            # A different cell is new work, not a memo hit.
            third = service.handle_evaluate(_body(n_threads=4))
            assert third[2] == "ok"
            assert len(calls) == 2
        finally:
            service.close()

    def test_validation_failure_is_400(self, isolated_cache):
        service = SchedulerService(ServiceConfig(workers=0, quiet=True))
        try:
            status, document, outcome = service.handle_evaluate(
                _body(program={"kind": "registry",
                               "value": "no-such-workload"}))
            assert (status, outcome) == (400, "invalid")
            assert document["kind"] == "validation"
            assert service.metrics.counters["validation_errors"] == 1
        finally:
            service.close()


def _sleepy_evaluate(request_dict, cache_dir, cache_enabled):
    """Fork-inherited stand-in for the real evaluation (slow enough to
    kill a worker mid-flight, fast enough to keep the test snappy)."""
    time.sleep(0.6)
    return {"workload": request_dict["program"]["value"],
            "n_threads": request_dict["n_threads"], "telemetry": None}


def _requires_fork():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")


class TestProcessPoolRecovery:
    def test_killed_worker_respawns_and_retries(self, isolated_cache,
                                                monkeypatch):
        _requires_fork()
        monkeypatch.setattr(workers_module, "_EVALUATE", _sleepy_evaluate)
        metrics = ServiceMetrics()
        pool = ProcessWorkerPool(ServiceConfig(
            workers=2, max_retries=2, retry_backoff=0.01,
            poll_interval=0.01), metrics)
        pool.start()
        try:
            tasks = [pool.submit(EvaluateRequest.from_dict(_body(
                n_threads=n))) for n in (2, 4)]
            deadline = time.time() + 5.0
            while (pool.snapshot()["in_flight"] < 2
                   and time.time() < deadline):
                time.sleep(0.01)
            assert pool.snapshot()["in_flight"] == 2

            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)

            # Both requests finish: the killed worker's task is retried
            # on a respawned process, the survivor is untouched.
            for task in tasks:
                assert task.wait(10.0), "task never finished"
                assert task.result is not None, task.error
            results = {task.result["n_threads"] for task in tasks}
            assert results == {2, 4}
            assert pool.respawns >= 1
            assert metrics.counters["worker_crashes"] >= 1
            assert metrics.counters["retries_total"] >= 1
            assert metrics.counters["worker_respawns"] >= 1
        finally:
            pool.stop()

    def test_cancel_inflight_kills_and_frees_the_slot(self, isolated_cache,
                                                      monkeypatch):
        _requires_fork()
        monkeypatch.setattr(workers_module, "_EVALUATE", _sleepy_evaluate)
        metrics = ServiceMetrics()
        pool = ProcessWorkerPool(ServiceConfig(
            workers=1, max_retries=0, retry_backoff=0.01,
            poll_interval=0.01), metrics)
        pool.start()
        try:
            doomed = pool.submit(EvaluateRequest.from_dict(_body()))
            deadline = time.time() + 5.0
            while (pool.snapshot()["in_flight"] < 1
                   and time.time() < deadline):
                time.sleep(0.01)
            pool.cancel(doomed)
            assert doomed.wait(2.0)
            assert doomed.timed_out and doomed.result is None
            assert pool.respawns >= 1

            follow_up = pool.submit(
                EvaluateRequest.from_dict(_body(n_threads=4)))
            assert follow_up.wait(10.0), "respawned slot unusable"
            assert follow_up.result is not None
        finally:
            pool.stop()

    def test_cancel_queued_task_never_dispatches(self, isolated_cache,
                                                 monkeypatch):
        _requires_fork()
        monkeypatch.setattr(workers_module, "_EVALUATE", _sleepy_evaluate)
        pool = ProcessWorkerPool(ServiceConfig(
            workers=1, poll_interval=0.01), ServiceMetrics())
        pool.start()
        try:
            running = pool.submit(EvaluateRequest.from_dict(_body()))
            deadline = time.time() + 5.0
            while (pool.snapshot()["in_flight"] < 1
                   and time.time() < deadline):
                time.sleep(0.01)
            queued = pool.submit(
                EvaluateRequest.from_dict(_body(n_threads=4)))
            pool.cancel(queued)
            assert queued.wait(1.0) and queued.timed_out
            assert pool.respawns == 0  # queued cancel never kills
            assert running.wait(10.0) and running.result is not None
        finally:
            pool.stop()


class TestMakePool:
    def test_workers_zero_selects_inline(self, isolated_cache):
        pool = make_pool(ServiceConfig(workers=0, quiet=True),
                         ServiceMetrics())
        try:
            assert isinstance(pool, InlineWorkerPool)
            assert pool.worker_pids() == []
        finally:
            pool.stop()
