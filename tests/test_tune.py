"""The ``repro tune`` search driver: determinism, budget accounting,
request validation, and the baselines-never-lose invariant."""

import json

import pytest

from repro.api import (RequestValidationError, TuneRequest,
                       configure_cache, tune)
from repro.tune import DEFAULT_SPACE, run_tune
from repro.tune.leaderboard import (markdown_summary, result_json,
                                    workload_leaderboard)
from repro.tune.strategies import make_strategy, strategy_names

WORKLOAD = "adpcmdec"
SMALL_KNOBS = ("machine.comm_latency", "partitioner.split_threshold")


def _request(**overrides):
    fields = dict(workloads=(WORKLOAD,), strategy="greedy", budget=6,
                  seed=0, scale="train", backend="fast",
                  knobs=SMALL_KNOBS)
    fields.update(overrides)
    return TuneRequest(**fields)


def _run(request, tmp_dir, jobs=1):
    previous = configure_cache(str(tmp_dir))
    try:
        return run_tune(request, jobs=jobs)
    finally:
        configure_cache(previous.directory, previous.enabled)


class TestDeterminism:
    def test_same_seed_identical_across_jobs(self, tmp_path):
        """Equal seeds must yield byte-identical leaderboard JSON even
        when the evaluation pool width differs (fresh caches for both
        runs, so memoization cannot mask a nondeterminism bug)."""
        request = _request()
        serial = _run(request, tmp_path / "a", jobs=1)
        pooled = _run(request, tmp_path / "b", jobs=2)
        assert result_json(serial) == result_json(pooled)
        assert (workload_leaderboard(serial, WORKLOAD)
                == workload_leaderboard(pooled, WORKLOAD))

    def test_warm_cache_reproduces(self, tmp_path):
        request = _request()
        cold = _run(request, tmp_path)
        warm = _run(request, tmp_path)
        assert result_json(cold) == result_json(warm)

    def test_leaderboard_json_round_trips(self, tmp_path):
        result = _run(_request(), tmp_path)
        document = json.loads(result_json(result))
        assert document["schema_version"].startswith("repro.tune/")
        assert markdown_summary(result).startswith("#")


class TestBudget:
    def test_budget_honored_exactly(self, tmp_path):
        """The canonical sub-space here has 9 distinct candidates, so a
        budget of 5 must be spent exactly — not rounded to a generation
        boundary."""
        result = _run(_request(budget=5), tmp_path)
        assert result.evaluated == 5

    def test_exhausted_space_stops_early(self, tmp_path):
        """With only 9 canonical candidates a budget of 50 cannot be
        spent; every distinct candidate is scored exactly once."""
        result = _run(_request(strategy="grid", budget=50), tmp_path)
        sub = DEFAULT_SPACE.subspace(SMALL_KNOBS)
        distinct = {sub.canonical(a).key() for a in sub.grid()}
        assert result.evaluated == len(distinct) == 9


class TestBaselines:
    def test_search_never_loses_to_seeded_baselines(self, tmp_path):
        result = _run(_request(knobs=()), tmp_path)
        best = result.best[WORKLOAD]
        cycles = best["metrics"]["mt_cycles"]
        baselines = best["baseline_mt_cycles"]
        assert set(baselines) == {"gremio", "dswp"}
        for label, base in baselines.items():
            assert cycles <= base
            assert best["improvement_pct"][label] >= 0
        sources = {entry["source"]
                   for entry in result.leaderboards[WORKLOAD]}
        assert "baseline:gremio" in sources or \
            "baseline:dswp" in sources

    def test_ranks_are_ordered(self, tmp_path):
        result = _run(_request(), tmp_path)
        ranks = [entry["rank"]
                 for entry in result.leaderboards[WORKLOAD]]
        assert ranks == sorted(ranks) and ranks[0] == 0


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            _request(strategy="anneal").validate()
        message = str(excinfo.value)
        for name in strategy_names():
            assert name in message

    def test_unknown_knob_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            _request(knobs=("bogus",)).validate()
        message = str(excinfo.value)
        assert "bogus" in message
        assert "machine.comm_latency" in message

    def test_unknown_workload_rejected(self):
        with pytest.raises(RequestValidationError):
            _request(workloads=("nonesuch",)).validate()

    def test_empty_workloads_rejected(self):
        with pytest.raises(RequestValidationError):
            _request(workloads=()).validate()

    def test_bad_budget_rejected(self):
        with pytest.raises(RequestValidationError):
            _request(budget=0).validate()
        with pytest.raises(RequestValidationError):
            _request(budget=True).validate()

    def test_facade_tune_rejects_invalid(self):
        with pytest.raises(RequestValidationError):
            tune(_request(strategy="anneal"))

    def test_strategy_factory_rejects_unknown(self):
        import random
        with pytest.raises(ValueError):
            make_strategy("anneal", DEFAULT_SPACE, random.Random(0))


class TestSpace:
    def test_default_assignment_is_canonical_empty(self):
        """Every default knob value is inert: the default assignment
        canonicalizes to the plain GREMIO cell with no overrides (so
        baselines share cache entries with the legacy matrix)."""
        candidate = DEFAULT_SPACE.canonical(
            DEFAULT_SPACE.default_assignment())
        assert candidate.technique == "gremio"
        assert candidate.overrides == ()
        assert candidate.topology is None

    def test_partitioner_knobs_dropped_for_dswp(self):
        """DSWP takes no partitioner parameters, so GREMIO-only knobs
        are dropped from its canonical form instead of erroring."""
        assignment = DEFAULT_SPACE.default_assignment()
        assignment["technique"] = "dswp"
        assignment["partitioner.split_threshold"] = 2.0
        candidate = DEFAULT_SPACE.canonical(assignment)
        assert candidate.technique == "dswp"
        assert candidate.overrides == ()

    def test_subspace_preserves_order_and_rejects_unknown(self):
        sub = DEFAULT_SPACE.subspace(SMALL_KNOBS)
        assert tuple(sub.names()) == SMALL_KNOBS
        with pytest.raises(ValueError):
            DEFAULT_SPACE.subspace(("nope",))
