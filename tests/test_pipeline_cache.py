"""Tests for the staged pipeline's persistent artifact cache:
fingerprint stability/sensitivity, hit/miss/invalidation accounting, and
corruption tolerance."""

import dataclasses
import os

import pytest

from repro.machine import DEFAULT_CONFIG
from repro.api import (configure_cache, fingerprint_config,
                       fingerprint_function, fingerprint_inputs,
                       get_cache, parallelize)

from .helpers import build_counted_loop, build_nested_loops


@pytest.fixture
def cache(tmp_path):
    """A fresh artifact cache in a temp directory, restored afterwards."""
    previous = get_cache()
    active = configure_cache(str(tmp_path / "artifacts"))
    yield active
    configure_cache(previous.directory, previous.enabled)


def _blob_paths(cache):
    paths = []
    for root, _dirs, files in os.walk(cache.directory):
        paths.extend(os.path.join(root, name) for name in files)
    return sorted(paths)


class TestFingerprints:
    def test_function_fingerprint_is_stable(self):
        assert (fingerprint_function(build_counted_loop())
                == fingerprint_function(build_counted_loop()))

    def test_function_fingerprint_sees_ir_changes(self):
        assert (fingerprint_function(build_counted_loop())
                != fingerprint_function(build_nested_loops()))
        # A one-instruction mutation must change the key too.
        mutated = build_counted_loop()
        for block in mutated.blocks:
            for instruction in block:
                if instruction.imm == 1:
                    instruction.imm = 2
        assert (fingerprint_function(mutated)
                != fingerprint_function(build_counted_loop()))

    def test_config_fingerprint_sees_field_changes(self):
        changed = dataclasses.replace(DEFAULT_CONFIG, comm_latency=7)
        assert (fingerprint_config(DEFAULT_CONFIG)
                == fingerprint_config(dataclasses.replace(DEFAULT_CONFIG)))
        assert (fingerprint_config(DEFAULT_CONFIG)
                != fingerprint_config(changed))

    def test_inputs_fingerprint_order_independent(self):
        assert (fingerprint_inputs({"a": 1, "b": 2}, None)
                == fingerprint_inputs({"b": 2, "a": 1}, None))
        assert (fingerprint_inputs({"a": 1}, None)
                != fingerprint_inputs({"a": 2}, None))


class TestArtifactCache:
    def test_identical_runs_hit(self, cache):
        first = parallelize(build_counted_loop(), technique="dswp",
                            profile_args={"r_n": 12})
        misses = cache.stats.misses
        assert misses > 0 and cache.stats.stores == misses
        second = parallelize(build_counted_loop(), technique="dswp",
                             profile_args={"r_n": 12})
        assert cache.stats.hits == misses
        assert first.fingerprints == second.fingerprints
        assert (first.partition.assignment == second.partition.assignment)
        assert len(first.program.channels) == len(second.program.channels)

    def test_mutated_ir_misses(self, cache):
        parallelize(build_counted_loop(), profile_args={"r_n": 12})
        cache.stats.reset()
        parallelize(build_nested_loops(), technique="gremio")
        assert cache.stats.hits == 0

    def test_changed_config_misses_partition(self, cache):
        base = parallelize(build_counted_loop(), profile_args={"r_n": 12})
        changed = parallelize(
            build_counted_loop(), profile_args={"r_n": 12},
            config=dataclasses.replace(DEFAULT_CONFIG, comm_latency=9))
        # Profile and PDG don't depend on the machine config: shared.
        assert base.fingerprints["profile"] == changed.fingerprints["profile"]
        assert base.fingerprints["pdg"] == changed.fingerprints["pdg"]
        assert (base.fingerprints["partition"]
                != changed.fingerprints["partition"])

    def test_changed_alias_mode_misses_pdg(self, cache):
        base = parallelize(build_counted_loop(), profile_args={"r_n": 12})
        coarse = parallelize(build_counted_loop(),
                             profile_args={"r_n": 12}, alias_mode="none")
        assert base.fingerprints["pdg"] != coarse.fingerprints["pdg"]
        assert (base.fingerprints["partition"]
                != coarse.fingerprints["partition"])

    def test_corrupted_blobs_recompute_not_crash(self, cache):
        reference = parallelize(build_counted_loop(), technique="dswp",
                                profile_args={"r_n": 12})
        blobs = _blob_paths(cache)
        assert blobs
        for path in blobs:
            with open(path, "wb") as handle:
                handle.write(b"\x80corrupted, not a pickle")
        cache.drop_memory()  # a fresh process sees only the corrupted disk
        cache.stats.reset()
        recomputed = parallelize(build_counted_loop(), technique="dswp",
                                 profile_args={"r_n": 12})
        assert cache.stats.hits == 0
        assert cache.stats.invalidations == len(blobs)
        assert recomputed.fingerprints == reference.fingerprints
        assert (recomputed.partition.assignment
                == reference.partition.assignment)

    def test_truncated_blob_recomputes(self, cache):
        parallelize(build_counted_loop(), profile_args={"r_n": 12})
        for path in _blob_paths(cache):
            with open(path, "r+b") as handle:
                handle.truncate(3)
        cache.drop_memory()
        cache.stats.reset()
        result = parallelize(build_counted_loop(), profile_args={"r_n": 12})
        assert result.program is not None
        assert cache.stats.invalidations > 0

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        previous = get_cache()
        disabled = configure_cache(str(tmp_path / "off"), enabled=False)
        try:
            parallelize(build_counted_loop(), profile_args={"r_n": 12})
            assert not os.path.exists(disabled.directory)
            assert disabled.stats.as_dict() == {
                "hits": 0, "misses": 0, "invalidations": 0, "stores": 0,
                "memory_hits": 0}
        finally:
            configure_cache(previous.directory, previous.enabled)

    def test_memory_tier_serves_repeat_loads(self, cache):
        cache.store("pdg", "a" * 64, {"pdg": [1, 2, 3]})
        hit, payload = cache.load("pdg", "a" * 64)
        assert hit and payload == {"pdg": [1, 2, 3]}
        assert cache.stats.memory_hits == 1
        # Hits hand out fresh object graphs: mutating one result must not
        # leak into the next load (stages mutate payloads in place).
        payload["pdg"].append(99)
        hit, payload2 = cache.load("pdg", "a" * 64)
        assert hit and payload2 == {"pdg": [1, 2, 3]}
        assert cache.stats.memory_hits == 2

    def test_memory_tier_budget_evicts_lru(self, tmp_path):
        previous = get_cache()
        small = configure_cache(str(tmp_path / "small"), memory_budget=1)
        try:
            small.store("pdg", "b" * 64, {"pdg": "payload"})
            hit, payload = small.load("pdg", "b" * 64)  # blob > budget
            assert hit and payload == {"pdg": "payload"}
            assert small.stats.memory_hits == 0
        finally:
            configure_cache(previous.directory, previous.enabled)

    def test_zero_budget_disables_memory_tier(self, tmp_path):
        previous = get_cache()
        off = configure_cache(str(tmp_path / "zero"), memory_budget=0)
        try:
            off.store("pdg", "c" * 64, {"pdg": 1})
            hit, _payload = off.load("pdg", "c" * 64)
            assert hit and off.stats.memory_hits == 0 and not off._memory
        finally:
            configure_cache(previous.directory, previous.enabled)

    def test_wrong_stage_envelope_is_invalidated(self, cache):
        key = "0" * 64
        cache.store("pdg", key, {"pdg": None})
        # Simulate a blob landing in another stage's slot: the envelope's
        # stage tag must reject it.
        source = cache._path("pdg", key)
        target = cache._path("partition", key)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.replace(source, target)
        hit, _payload = cache.load("partition", key)
        assert not hit
        assert cache.stats.invalidations == 1
        # A well-formed blob under the right stage name loads fine.
        cache.store("partition", key, {"partition": "x"})
        hit, payload = cache.load("partition", key)
        assert hit and payload == {"partition": "x"}
