"""Cross-cell artifact reuse in the evaluation matrix.

A sweep whose cells share a workload recomputes the expensive front of
the pipeline (normalize, profile, PDG) only once: every later cell hits
the artifact cache.  With the in-process memory tier those hits don't
even touch the disk.  And reuse must be invisible in the results — a
warm sweep is bit-identical to evaluating each cell cold and serially.
"""

import pytest

from repro.api import configure_cache, get_cache, get_workload
from repro.check.differential_backend import diff_snapshots, \
    snapshot_result
from repro.pipeline.core import evaluate_workload
from repro.pipeline.matrix import build_cells, evaluate_matrix

#: One workload, four cells: two techniques x two thread counts.  Every
#: cell shares the normalize/profile/pdg front of the pipeline.
WORKLOAD = "ks"
TECHNIQUES = ("gremio", "dswp")
THREADS = (2, 4)


@pytest.fixture
def cache(tmp_path):
    previous = get_cache()
    active = configure_cache(str(tmp_path / "artifacts"))
    yield active
    configure_cache(previous.directory, previous.enabled)


def _sweep(jobs=1, backend="reference"):
    cells = build_cells(workloads=[WORKLOAD], techniques=TECHNIQUES,
                        n_threads=THREADS, scale="train",
                        backend=backend)
    assert len(cells) == 4
    return cells, evaluate_matrix(cells=cells, jobs=jobs, check=False)


def test_shared_workload_hits_profile_and_pdg_cache(cache):
    _cells, evaluations = _sweep()
    assert len(evaluations) == 4
    stats = cache.stats
    # Cell 1 misses and stores; cells 2-4 each hit profile and pdg
    # (>= 3 hits apiece across the sweep, 6 total; simulate-st adds
    # more where thread counts coincide).
    assert stats.hits >= 6, stats.as_dict()
    assert stats.stores > 0 and stats.misses > 0
    # Same process, so the memory tier served them — no disk reads.
    assert stats.memory_hits == stats.hits, stats.as_dict()


def test_warm_sweep_bit_identical_to_cold_serial(cache):
    cells, warm = _sweep()
    # Cold: fresh pipeline per cell, cache fully disabled, one at a
    # time — the reuse-free baseline.
    configure_cache(enabled=False)
    workload = get_workload(WORKLOAD)
    for cell, evaluation in zip(cells, warm):
        cold = evaluate_workload(workload, technique=cell.technique,
                                 n_threads=cell.n_threads, scale="train",
                                 check=False)
        assert cold.metrics() == evaluation.metrics()
        divergences = diff_snapshots(snapshot_result(cold.mt_result),
                                     snapshot_result(evaluation.mt_result))
        assert not divergences, "\n".join(divergences[:10])
        divergences = diff_snapshots(snapshot_result(cold.st_result),
                                     snapshot_result(evaluation.st_result))
        assert not divergences, "\n".join(divergences[:10])


def test_fresh_process_reuses_disk_artifacts(cache):
    """Drop the memory tier between sweeps (modelling a new process
    against a shared cache directory): the second sweep hits disk."""
    _sweep()
    first = cache.stats.as_dict()
    cache.drop_memory()
    cache.stats.reset()
    _cells, evaluations = _sweep()
    assert len(evaluations) == 4
    stats = cache.stats
    assert stats.stores == 0, stats.as_dict()  # everything reused
    assert stats.hits >= first["stores"]
    # First load of each artifact came from disk, not memory...
    assert stats.memory_hits < stats.hits
    # ...and repopulated the memory tier for the shared-stage hits.
    assert stats.memory_hits > 0, stats.as_dict()


def test_fast_backend_sweep_shares_the_same_cache(cache):
    """Backends share one cache namespace (fingerprints exclude the
    backend), so a fast sweep after a reference sweep recomputes
    nothing and the results are bit-identical."""
    _cells, reference = _sweep(backend="reference")
    cache.stats.reset()
    _cells, fast = _sweep(backend="fast")
    stats = cache.stats
    assert stats.stores == 0, stats.as_dict()
    assert stats.misses == 0, stats.as_dict()
    for ref_eval, fast_eval in zip(reference, fast):
        assert ref_eval.metrics() == fast_eval.metrics()
