"""Property tests for the IR instruction flyweight
(:mod:`repro.ir.interning`).

The contract: interned instructions are drop-in replacements for plain
ones (equal, same hash, mix freely in sets/dicts), structurally equal
instructions collapse to one canonical object per process — surviving
pickle round trips, including into *other* processes — and interning is
invisible to the content-addressed pipeline fingerprints.
"""

import copy
import pickle
import subprocess
import sys

import pytest

from repro.api import get_workload
from repro.ir import (InternedInstruction, intern_function,
                      intern_instruction, intern_program)
from repro.ir.instructions import Instruction, Opcode
from repro.ir.interning import intern_instruction_fields
from repro.pipeline.core import parallelize
from repro.pipeline.fingerprint import fingerprint_function


def _sample():
    return Instruction(Opcode.ADD, dest="sum", srcs=("a", "b"),
                       iid=7, region="loop")


def test_interned_equals_and_hashes_like_plain():
    plain = _sample()
    interned = intern_instruction(plain)
    assert type(interned) is InternedInstruction
    assert interned == plain and plain == interned
    assert hash(interned) == hash(plain)
    # Flyweights substitute transparently in hashed containers.
    assert interned in {plain}
    assert {plain: "x"}[interned] == "x"


def test_equal_instructions_intern_to_one_object():
    first = intern_instruction(_sample())
    second = intern_instruction(_sample())
    assert first is second
    # Interning an already-interned instruction is the identity.
    assert intern_instruction(first) is first


def test_imm_type_distinguishes_instructions():
    # 1 == 1.0 in Python, but ``movi 1`` and ``movi 1.0`` are different
    # programs — the intern key carries type(imm).
    as_int = intern_instruction(Instruction(Opcode.MOVI, dest="r",
                                            imm=1))
    as_float = intern_instruction(Instruction(Opcode.MOVI, dest="r",
                                              imm=1.0))
    assert as_int is not as_float
    assert type(as_int.imm) is int and type(as_float.imm) is float


def test_interned_is_immutable_but_copy_is_mutable():
    interned = intern_instruction(_sample())
    with pytest.raises(AttributeError):
        interned.dest = "other"
    with pytest.raises(AttributeError):
        del interned.dest
    mutable = interned.copy()
    assert type(mutable) is Instruction and mutable == interned
    mutable.dest = "other"  # downstream clone-and-edit keeps working
    assert interned.dest == "sum"


def test_annotations_are_part_of_the_intern_key_not_equality():
    # Instruction equality is *semantic* (iid/origin excluded), and the
    # flyweight preserves that — but the intern table must not collapse
    # instructions with different annotations, or MTCG iids would leak
    # between occurrences.
    base = intern_instruction(_sample())
    other_iid = intern_instruction(
        Instruction(Opcode.ADD, dest="sum", srcs=("a", "b"), iid=8,
                    region="loop"))
    assert base is not other_iid
    assert base == other_iid and hash(base) == hash(other_iid)
    assert (base.iid, other_iid.iid) == (7, 8)


def test_pickle_round_trips_through_the_intern_table():
    interned = intern_instruction(_sample())
    loaded = pickle.loads(pickle.dumps(interned))
    # Not merely equal: unpickling lands on the canonical object.
    assert loaded is interned
    # pickle's memo serializes each distinct instruction once, so a
    # program with N occurrences costs ~one instruction plus N refs.
    once = len(pickle.dumps([interned]))
    thrice = len(pickle.dumps([interned, interned, interned]))
    assert thrice - once < once


def test_pickle_round_trips_across_processes():
    payload = pickle.dumps([intern_instruction(_sample()),
                            intern_instruction(_sample())])
    script = (
        "import pickle, sys\n"
        "from repro.ir import InternedInstruction\n"
        "first, second = pickle.loads(sys.stdin.buffer.read())\n"
        "assert type(first) is InternedInstruction\n"
        "assert first is second, 'not canonical after unpickling'\n"
        "assert first.dest == 'sum' and first.srcs == ('a', 'b')\n"
        "assert first.iid == 7 and first.region == 'loop'\n"
        "print('ok')\n")
    proc = subprocess.run([sys.executable, "-c", script], input=payload,
                          capture_output=True, env={"PYTHONPATH": "src"},
                          cwd=None)
    assert proc.returncode == 0, proc.stderr.decode()
    assert proc.stdout.decode().strip() == "ok"


def test_reduce_preserves_every_field():
    interned = intern_instruction(
        Instruction(Opcode.PRODUCE, srcs=("v",), queue=3, iid=11,
                    region="r0", origin=42))
    rebuilt = intern_instruction_fields(*interned.__reduce__()[1])
    assert rebuilt is interned
    assert (rebuilt.queue, rebuilt.iid, rebuilt.region,
            rebuilt.origin) == (3, 11, "r0", 42)


def _parallelized(name="ks"):
    workload = get_workload(name)
    train = workload.make_inputs("train")
    return parallelize(workload.build(), technique="gremio", n_threads=2,
                       profile_args=train.args,
                       profile_memory=train.memory, cache=False)


def test_mtcg_output_is_interned():
    program = _parallelized().program
    for thread in program.threads:
        for block in thread.blocks:
            assert all(type(instruction) is InternedInstruction
                       for instruction in block.instructions)


@pytest.mark.parametrize("name", ["ks", "adpcmdec"])
def test_fingerprints_unchanged_by_interning(name):
    """Interning is invisible to the content-addressed cache: the
    textual-IR fingerprint of each interned MTCG thread equals that of
    a structurally identical uninterned clone."""
    program = _parallelized(name).program
    for thread in program.threads:
        uninterned = copy.deepcopy(thread)
        for block in uninterned.blocks:
            block.instructions[:] = [
                instruction.copy() for instruction in block.instructions]
        assert all(type(i) is Instruction
                   for block in uninterned.blocks
                   for i in block.instructions)
        assert (fingerprint_function(thread)
                == fingerprint_function(uninterned))
        # And re-interning the clone lands on the same flyweights.
        intern_function(uninterned)
        for ours, theirs in zip(thread.blocks, uninterned.blocks):
            assert all(a is b for a, b in zip(ours.instructions,
                                              theirs.instructions))


def test_intern_program_returns_same_program():
    built = _parallelized()
    assert intern_program(built.program) is built.program
