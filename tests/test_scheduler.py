"""Tests for the local instruction scheduler (the downstream pass the
companion paper discusses interacting with COCO)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.interp import run_function
from repro.ir import FunctionBuilder, Opcode, verify_function
from repro.machine import run_mt_program, simulate_single
from repro.opt.scheduler import (CommPriority, schedule_function,
                                 schedule_program)

from .helpers import build_counted_loop, build_nested_loops
from .mt_utils import make_mt, round_robin_partition
from .random_programs import program_sketches, render_program


class TestBlockScheduling:
    def test_hoists_long_latency_ops(self):
        """A multiply followed by independent adds: the scheduler starts
        the multiply first so its latency overlaps the adds."""
        b = FunctionBuilder("sched", params=["r_a", "r_b"],
                            live_outs=["r_z"])
        b.label("entry")
        b.add("r_t1", "r_b", 1)
        b.add("r_t2", "r_b", 2)
        b.add("r_t3", "r_b", 3)
        b.mul("r_m", "r_a", "r_a")       # long latency, independent
        b.add("r_z", "r_m", "r_t3")
        b.exit()
        f = b.build()
        baseline = simulate_single(f, {"r_a": 3, "r_b": 4})
        moved = schedule_function(f)
        verify_function(f)
        scheduled = simulate_single(f, {"r_a": 3, "r_b": 4})
        assert moved > 0
        assert f.entry.instructions[0].op is Opcode.MUL
        assert scheduled.cycles <= baseline.cycles
        assert scheduled.live_outs == baseline.live_outs

    def test_memory_order_preserved(self):
        b = FunctionBuilder("mem", params=["p_a"], live_outs=["r_y"])
        b.mem("obj", 8, ptr="p_a")
        b.label("entry")
        b.movi("r_x", 42)
        b.store("p_a", "r_x")
        b.load("r_y", "p_a")
        b.exit()
        f = b.build()
        schedule_function(f)
        ops = [i.op for i in f.entry.instructions]
        assert ops.index(Opcode.STORE) < ops.index(Opcode.LOAD)
        assert run_function(f).live_outs == {"r_y": 42}

    def test_anti_dependence_respected(self):
        b = FunctionBuilder("anti", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.add("r_z", "r_a", 1)    # reads r_a
        b.movi("r_a", 0)          # then clobbers it
        b.exit()
        f = b.build()
        reference = run_function(f, {"r_a": 10}).live_outs
        schedule_function(f)
        assert run_function(f, {"r_a": 10}).live_outs == reference

    def test_terminator_stays_last(self):
        f = build_counted_loop()
        schedule_function(f)
        verify_function(f)
        for block in f.blocks:
            assert block.instructions[-1].is_terminator()

    def test_comm_priority_orders_communication(self):
        b = FunctionBuilder("comm", params=["r_a"], live_outs=[])
        b.label("entry")
        b.add("r_t", "r_a", 1)
        b.produce(0, "r_a")       # independent of r_t
        b.exit()
        f = b.build(verify=False)
        early = [i.copy() for i in f.entry.instructions]
        schedule_function(f, comm_priority=CommPriority.EARLY)
        assert f.entry.instructions[0].op is Opcode.PRODUCE
        schedule_function(f, comm_priority=CommPriority.LATE)
        assert f.entry.instructions[0].op is not Opcode.PRODUCE


class TestSemanticsPreserved:
    @pytest.mark.parametrize("priority", [CommPriority.EARLY,
                                          CommPriority.LATE,
                                          CommPriority.NEUTRAL])
    def test_mt_program_scheduling(self, priority):
        """Scheduling every thread of generated MT code preserves results
        and deadlock-freedom, for all communication priorities."""
        f = build_nested_loops()
        p = round_robin_partition(f, 2)
        mt = make_mt(f, p)
        reference = run_mt_program(mt, {"r_n": 4, "r_m": 5})
        moved = schedule_program(mt, comm_priority=priority)
        result = run_mt_program(mt, {"r_n": 4, "r_m": 5})
        assert result.live_outs == reference.live_outs

    @given(sketch=program_sketches)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_equivalent(self, sketch):
        f = render_program(sketch)
        args = {"r_in0": 7, "r_in1": -3}
        reference = run_function(f, args)
        schedule_function(f)
        verify_function(f)
        result = run_function(f, args)
        assert result.live_outs == reference.live_outs
        assert result.memory.snapshot() == reference.memory.snapshot()

    @given(sketch=program_sketches)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_scheduling_never_slows_straightline_much(self, sketch):
        """The scheduler targets latency hiding; on the in-order model it
        must never catastrophically regress."""
        f = render_program(sketch)
        args = {"r_in0": 2, "r_in1": 5}
        before = simulate_single(f, args)
        schedule_function(f)
        after = simulate_single(f, args)
        # Relative bound with absolute slack: on programs of a handful of
        # cycles, a single port-conflict cycle is not a regression.
        assert after.cycles <= before.cycles * 1.20 + 4
        assert after.live_outs == before.live_outs
