"""Tests for the machine model: caches, queues, and the timing simulator."""

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import (DEFAULT_CONFIG, MemoryHierarchy,
                           config_table, simulate_program, simulate_single)
from repro.machine.timing import TimedQueues
from repro.mtcg import generate
from repro.partition import single_thread_partition
from repro.partition.dswp import DSWPPartitioner
from repro.partition.gremio import GremioPartitioner

from .helpers import (build_counted_loop, build_memory_loop,
                      build_nested_loops, build_paper_figure4,
                      build_straightline)
from .mt_utils import round_robin_partition


class TestCacheHierarchy:
    def test_first_access_misses_then_hits(self):
        h = MemoryHierarchy(DEFAULT_CONFIG)
        cold = h.access(0, 100, False)
        warm = h.access(0, 100, False)
        assert cold == DEFAULT_CONFIG.memory_latency
        assert warm == DEFAULT_CONFIG.l1d.hit_latency

    def test_spatial_locality_within_line(self):
        h = MemoryHierarchy(DEFAULT_CONFIG)
        h.access(0, 0, False)
        # Words 0..7 share a 64-byte line (8-byte words).
        assert h.access(0, 7, False) == DEFAULT_CONFIG.l1d.hit_latency
        # Word 8 is a different L1 line, but same 128B L2 line.
        assert h.access(0, 8, False) == DEFAULT_CONFIG.l2.hit_latency

    def test_write_invalidates_other_core(self):
        h = MemoryHierarchy(DEFAULT_CONFIG)
        h.access(0, 50, False)
        h.access(1, 50, False)
        assert h.access(0, 50, False) == DEFAULT_CONFIG.l1d.hit_latency
        h.access(1, 50, True)
        assert h.coherence_invalidations == 1
        # Core 0 lost its private copies; refetch hits the shared L3.
        latency = h.access(0, 50, False)
        assert latency >= DEFAULT_CONFIG.l3.hit_latency

    def test_capacity_eviction(self):
        h = MemoryHierarchy(DEFAULT_CONFIG)
        line_words = DEFAULT_CONFIG.l1d.line_bytes // DEFAULT_CONFIG.word_bytes
        n_lines = (DEFAULT_CONFIG.l1d.size_bytes
                   // DEFAULT_CONFIG.l1d.line_bytes)
        # Touch 2x the L1 capacity, then the first line must miss in L1.
        for i in range(2 * n_lines):
            h.access(0, i * line_words, False)
        assert h.access(0, 0, False) > DEFAULT_CONFIG.l1d.hit_latency

    def test_stats_accumulate(self):
        h = MemoryHierarchy(DEFAULT_CONFIG)
        h.access(0, 0, False)
        h.access(0, 0, False)
        stats = h.stats()
        assert stats["l1_hits"] == 1
        assert stats["l1_misses"] == 1


class TestTimedQueues:
    def test_backpressure_slot_free_time(self):
        q = TimedQueues(1, capacity=2)
        q.staged_push_time = 10.0
        assert q.try_push(0, "a")
        q.staged_push_time = 11.0
        assert q.try_push(0, "b")
        assert not q.try_push(0, "c")  # full
        ok, value = q.try_pop(0)
        assert ok and value == "a"
        assert q.last_popped_time == 10.0
        q.record_pop_completion(0, 20.0)
        # Third push's slot was freed by the first pop, at cycle 20.
        assert q.slot_free_time(0) == 20.0

    def test_timestamps_fifo(self):
        q = TimedQueues(2, capacity=4)
        for i in range(3):
            q.staged_push_time = float(i)
            q.try_push(1, i)
        for i in range(3):
            ok, value = q.try_pop(1)
            assert ok and value == i and q.last_popped_time == float(i)


class TestTimingSingleThread:
    def test_straightline_cycles_reflect_latencies(self):
        f = build_straightline()
        r = simulate_single(f, {"r_a": 2, "r_b": 3})
        # add(1) -> mul(3) -> sub(1) serial chain, plus exit.
        assert r.cycles >= 5
        assert r.cycles < 20
        assert r.live_outs == {"r_x": 13, "r_y": 15}

    def test_loop_cycles_scale_with_trip_count(self):
        f = build_counted_loop()
        short = simulate_single(f, {"r_n": 10})
        long = simulate_single(f, {"r_n": 100})
        assert long.cycles > short.cycles * 5

    def test_memory_latency_visible(self):
        f = build_memory_loop()
        data = list(range(64))
        r = simulate_single(f, {"r_n": 64}, {"arr_in": data})
        assert r.cache_stats["l1_misses"] > 0
        assert r.cache_stats["l1_hits"] > 0
        assert r.live_outs == {}

    def test_functional_result_matches_interpreter(self):
        f = build_nested_loops()
        timed = simulate_single(f, {"r_n": 5, "r_m": 6})
        ref = run_function(f, {"r_n": 5, "r_m": 6})
        assert timed.live_outs == ref.live_outs
        assert timed.dynamic_instructions == ref.dynamic_instructions

    def test_issue_width_limits_ipc(self):
        """With width 1, the same program takes more cycles."""
        import dataclasses
        narrow = dataclasses.replace(DEFAULT_CONFIG, issue_width=1,
                                     alu_ports=1, memory_ports=1,
                                     fp_ports=1, branch_ports=1)
        f = build_counted_loop()
        wide_r = simulate_single(f, {"r_n": 50})
        narrow_r = simulate_single(f, {"r_n": 50}, config=narrow)
        assert narrow_r.cycles > wide_r.cycles


def _mt(f, partition):
    return generate(f, build_pdg(f), partition)


class TestTimingMultiThread:
    def test_mt_functional_equivalence(self):
        f = build_nested_loops()
        p = round_robin_partition(f, 2)
        mt = _mt(f, p)
        timed = simulate_program(mt, {"r_n": 4, "r_m": 5})
        ref = run_function(f, {"r_n": 4, "r_m": 5})
        assert timed.live_outs == ref.live_outs

    def test_pipeline_speedup_on_pipelinable_loop(self):
        """A recurrence + work-chain loop pipelined by DSWP across 2 cores
        should beat single-threaded execution."""
        from ._pipeline_fixture import build_pipeline_loop
        f = build_pipeline_loop()
        args = {"r_n": 400}
        profile = run_function(f, args).profile
        pdg = build_pdg(f)
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        mt = generate(f, pdg, p, None)
        st = simulate_single(f, args)
        par = simulate_program(mt, args, config=DEFAULT_CONFIG.for_dswp())
        assert par.live_outs == st.live_outs
        assert par.cycles < st.cycles

    def test_figure4_baseline_mtcg_is_communication_bound(self):
        """Figure 4 of the companion text: the loops are serially dependent,
        so baseline MTCG (produce inside loop 1, every iteration) cannot
        beat single-threaded execution — the motivating case for COCO."""
        f = build_paper_figure4()
        args = {"r_n": 400, "r_m": 400}
        profile = run_function(f, args).profile
        pdg = build_pdg(f)
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        mt = generate(f, pdg, p, None)
        st = simulate_single(f, args)
        par = simulate_program(mt, args, config=DEFAULT_CONFIG.for_dswp())
        assert par.live_outs == st.live_outs
        assert par.cycles >= st.cycles * 0.95
        assert par.communication_instructions >= 400

    def test_round_robin_partition_is_slow(self):
        """An adversarial fine-grained partition communicates so much that
        it loses to single-threaded execution — communication matters."""
        f = build_counted_loop()
        args = {"r_n": 200}
        p = round_robin_partition(f, 2)
        mt = _mt(f, p)
        st = simulate_single(f, args)
        par = simulate_program(mt, args)
        assert par.cycles > st.cycles

    def test_comm_latency_monotonicity(self):
        """Raising the SA access latency never speeds things up."""
        import dataclasses
        f = build_paper_figure4()
        args = {"r_n": 100, "r_m": 100}
        profile = run_function(f, args).profile
        pdg = build_pdg(f)
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        mt = generate(f, pdg, p)
        fast = simulate_program(mt, args)
        slow_config = dataclasses.replace(DEFAULT_CONFIG,
                                          sa_access_latency=20)
        slow = simulate_program(mt, args, config=slow_config)
        assert slow.cycles >= fast.cycles

    def test_single_thread_partition_matches_single_core_model(self):
        """MTCG with one thread simulated on the MT path should cost about
        the same as the plain single-core simulation."""
        f = build_counted_loop()
        args = {"r_n": 60}
        p = single_thread_partition(f)
        mt = _mt(f, p)
        a = simulate_program(mt, args)
        b = simulate_single(f, args)
        # Identical except MTCG's entry/exit glue.
        assert abs(a.cycles - b.cycles) <= 10

    def test_gremio_partition_runs_timed(self):
        f = build_nested_loops()
        args = {"r_n": 6, "r_m": 8}
        profile = run_function(f, args).profile
        pdg = build_pdg(f)
        p = GremioPartitioner().partition(f, pdg, profile, 2)
        mt = generate(f, pdg, p)
        timed = simulate_program(mt, args)
        ref = run_function(f, args)
        assert timed.live_outs == ref.live_outs
        assert timed.cycles > 0


class TestConfig:
    def test_config_table_mentions_parameters(self):
        text = config_table()
        assert "16 KB" in text
        assert "141" in text
        assert "256 queues" in text

    def test_dswp_config_has_32_entry_queues(self):
        assert DEFAULT_CONFIG.for_dswp().sa_queue_size == 32
        assert DEFAULT_CONFIG.sa_queue_size == 1

    def test_port_classification(self):
        from repro.ir import Instruction, Opcode
        assert DEFAULT_CONFIG.port_kind(
            Instruction(Opcode.LOAD, "r", ["p"])) == "memory"
        assert DEFAULT_CONFIG.port_kind(
            Instruction(Opcode.PRODUCE, srcs=["r"], queue=0)) == "memory"
        assert DEFAULT_CONFIG.port_kind(
            Instruction(Opcode.FADD, "r", ["a", "b"])) == "fp"
