"""Tests for the bench-spec registry and the ``python -m repro bench``
CLI flows (list, run, baseline update, compare gate)."""

import json

import pytest

from repro.bench import (FULL, SMOKE, all_specs, get_spec,
                         register, run_bench, spec_ids)
from repro.cli import main
from repro.pipeline import MatrixCell

EXPECTED_SPECS = [
    "ablation_hierarchy",
    "ablation_machine",
    "branch_prediction",
    "compile_time",
    "ext_scaling",
    "fig1_breakdown",
    "fig6_setup",
    "fig7_comm_reduction",
    "fig8_speedup",
    "gremio_speedup",
    "gremio_vs_dswp",
    "memory_disambiguation",
    "overhead_breakdown",
    "profile_sensitivity",
    "region_selection",
    "scheduler_interaction",
    "synthetic_frontend",
    "topology_scaling",
    "trace_attribution",
    "tune_smoke",
]


class TestRegistry:
    def test_all_twenty_specs_registered(self):
        assert spec_ids() == EXPECTED_SPECS

    def test_every_spec_is_complete(self):
        for spec in all_specs():
            assert spec.title, spec.id
            assert spec.source.startswith("benchmarks/bench_"), spec.id
            assert callable(spec.collect), spec.id

    def test_unknown_spec_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="fig8_speedup"):
            get_spec("nonsense")

    def test_duplicate_registration_rejected(self):
        spec = get_spec("fig6_setup")
        with pytest.raises(ValueError, match="duplicate"):
            register(spec)

    def test_prewarm_cells_are_matrix_cells(self):
        cells = get_spec("fig8_speedup").prewarm_cells(SMOKE)
        assert cells
        assert all(isinstance(cell, MatrixCell) for cell in cells)
        assert all(cell.scale == SMOKE.scale for cell in cells)

    def test_modes(self):
        assert SMOKE.is_smoke and not FULL.is_smoke
        assert SMOKE.pick(["a", "b", "c"]) == ["a", "b"]
        assert FULL.pick(["a", "b", "c"]) == ["a", "b", "c"]
        assert SMOKE.pick(["a", "b", "c"], limit=1) == ["a"]

    def test_cheap_spec_collect(self):
        """fig6_setup is pure configuration — no simulation — and is
        the canary that collect() returns a well-formed MetricMap."""
        metrics = get_spec("fig6_setup").collect(SMOKE)
        assert metrics["workloads/count"].value == 11
        assert metrics["machine/sa_queues"].value == 256
        for metric in metrics.values():
            assert metric.tolerance == 0.0  # deterministic → exact


class TestRunBench:
    def test_single_spec_run(self):
        results = run_bench(SMOKE, spec_ids=["fig6_setup"])
        assert results.mode == "smoke"
        assert set(results.specs) == {"fig6_setup"}
        assert results.total_seconds >= 0.0
        assert results.host["python"]
        assert results.telemetry is not None

    def test_unknown_spec_id_raises(self):
        with pytest.raises(KeyError):
            run_bench(SMOKE, spec_ids=["nope"])


class TestBenchCli:
    def out(self, tmp_path):
        return str(tmp_path / "BENCH_RESULTS.json")

    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for spec_id in ("fig8_speedup", "compile_time", "ext_scaling"):
            assert spec_id in out

    def test_run_writes_schema_versioned_document(self, tmp_path,
                                                  capsys):
        out = self.out(tmp_path)
        assert main(["bench", "--smoke", "--spec", "fig6_setup",
                     "--out", out]) == 0
        document = json.loads(open(out).read())
        assert document["schema"] == "repro.bench/v1"
        assert document["mode"] == "smoke"
        assert "fig6_setup" in document["specs"]
        assert "1 specs" in capsys.readouterr().out

    def test_compare_clean_then_perturbed(self, tmp_path, capsys):
        out = self.out(tmp_path)
        baseline = str(tmp_path / "baselines" / "baseline.json")
        assert main(["bench", "--smoke", "--spec", "fig6_setup",
                     "--out", out, "--baseline", baseline,
                     "--update-baseline"]) == 0
        # Clean HEAD vs its own baseline: gate passes.
        assert main(["bench", "--smoke", "--spec", "fig6_setup",
                     "--out", out, "--compare", baseline]) == 0
        capsys.readouterr()
        # Perturb one exact-tolerance metric: gate fails, table names it.
        document = json.loads(open(baseline).read())
        document["specs"]["fig6_setup"]["metrics"][
            "workloads/count"]["value"] = 99
        with open(baseline, "w") as handle:
            json.dump(document, handle)
        summary = str(tmp_path / "summary.md")
        assert main(["bench", "--smoke", "--spec", "fig6_setup",
                     "--out", out, "--compare", baseline,
                     "--summary", summary]) == 1
        printed = capsys.readouterr().out
        assert "`workloads/count`" in printed
        assert "regression" in printed
        written = open(summary).read()
        assert "Benchmark regression gate" in written
        assert "`workloads/count`" in written

    def test_compare_missing_baseline(self, tmp_path, capsys):
        out = self.out(tmp_path)
        assert main(["bench", "--smoke", "--spec", "fig6_setup",
                     "--out", out,
                     "--compare", str(tmp_path / "absent.json")]) == 1
        assert "--update-baseline" in capsys.readouterr().out

    def test_compare_schema_mismatch(self, tmp_path, capsys):
        out = self.out(tmp_path)
        stale = str(tmp_path / "stale.json")
        with open(stale, "w") as handle:
            json.dump({"schema": "repro.bench/v0", "mode": "smoke"},
                      handle)
        assert main(["bench", "--smoke", "--spec", "fig6_setup",
                     "--out", out, "--compare", stale]) == 1
        assert "cannot compare" in capsys.readouterr().out

    def test_update_baseline_env_var(self, tmp_path, monkeypatch,
                                     capsys):
        monkeypatch.setenv("REPRO_UPDATE_BASELINE", "1")
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench", "--smoke", "--spec", "fig6_setup",
                     "--out", self.out(tmp_path),
                     "--baseline", baseline]) == 0
        assert "baseline updated" in capsys.readouterr().out
        assert json.loads(open(baseline).read())["mode"] == "smoke"
