"""Tests for the classical scalar optimizer."""

import pytest

from repro.interp import run_function
from repro.ir import FunctionBuilder, Opcode, verify_function
from repro.opt import (eliminate_dead_code, fold_constants,
                       optimize_function, propagate_copies,
                       remove_unreachable_blocks, thread_jumps)
from repro.workloads import all_workloads

from .helpers import (build_counted_loop, build_diamond,
                      build_nested_loops, build_paper_figure3)


class TestConstantFolding:
    def test_folds_constant_chain(self):
        b = FunctionBuilder("f", live_outs=["r_z"])
        b.label("entry")
        b.movi("r_a", 6)
        b.movi("r_b", 7)
        b.mul("r_z", "r_a", "r_b")
        b.exit()
        f = b.build()
        assert fold_constants(f) == 1
        mul = f.entry.instructions[2]
        assert mul.op is Opcode.MOVI and mul.imm == 42
        assert run_function(f).live_outs == {"r_z": 42}

    def test_does_not_fold_across_blocks(self):
        f = build_diamond()  # r_x defined in two arms; entry has params
        before = [i.op for i in f.instructions()]
        fold_constants(f)
        assert [i.op for i in f.instructions()] == before

    def test_division_left_alone(self):
        b = FunctionBuilder("f", live_outs=["r_z"])
        b.label("entry")
        b.movi("r_a", 6)
        b.movi("r_b", 0)
        b.idiv("r_z", "r_a", "r_b")  # would trap if executed
        b.exit()
        f = b.build()
        assert fold_constants(f) == 0

    def test_unary_and_immediate_forms(self):
        b = FunctionBuilder("f", live_outs=["r_y", "r_z"])
        b.label("entry")
        b.movi("r_a", -5)
        b.abs("r_y", "r_a")
        b.add("r_z", "r_a", 12)
        b.exit()
        f = b.build()
        assert fold_constants(f) == 2
        assert run_function(f).live_outs == {"r_y": 5, "r_z": 7}


class TestCopyPropagation:
    def test_local_copy_forwarded(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.mov("r_b", "r_a")
        b.add("r_z", "r_b", 1)
        b.exit()
        f = b.build()
        assert propagate_copies(f) == 1
        add = f.entry.instructions[1]
        assert add.srcs == ("r_a",)

    def test_copy_killed_by_redefinition(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.mov("r_b", "r_a")
        b.movi("r_a", 0)       # kills the copy relation
        b.add("r_z", "r_b", 1)
        b.exit()
        f = b.build()
        reference = run_function(f, {"r_a": 9}).live_outs
        propagate_copies(f)
        assert run_function(f, {"r_a": 9}).live_outs == reference
        add = f.entry.instructions[2]
        assert add.srcs == ("r_b",)  # must NOT have been forwarded


class TestDeadCode:
    def test_removes_unused_computation(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.mul("r_dead", "r_a", 100)
        b.add("r_z", "r_a", 1)
        b.exit()
        f = b.build()
        assert eliminate_dead_code(f) == 1
        assert f.instruction_count() == 2

    def test_keeps_stores_and_liveouts(self):
        from .helpers import build_memory_loop
        f = build_memory_loop()
        assert eliminate_dead_code(f) == 0

    def test_keeps_loop_carried_values(self):
        f = build_counted_loop()
        assert eliminate_dead_code(f) == 0


class TestCfgCleanup:
    def test_jump_threading_skips_trampoline(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=[])
        b.label("entry")
        b.cmpgt("r_c", "r_a", 0)
        b.br("r_c", "hop", "out")
        b.label("hop")
        b.jmp("out")
        b.label("out")
        b.exit()
        f = b.build()
        assert thread_jumps(f) == 1
        assert f.entry.terminator.labels == ("out", "out")
        assert remove_unreachable_blocks(f) == 1
        assert not f.has_block("hop")
        verify_function(f)

    def test_unreachable_diamond_arm(self):
        b = FunctionBuilder("f", live_outs=["r_z"])
        b.label("entry")
        b.movi("r_z", 1)
        b.jmp("live")
        b.label("dead")
        b.movi("r_z", 2)
        b.jmp("live")
        b.label("live")
        b.exit()
        f = b.build()
        assert remove_unreachable_blocks(f) == 1
        assert run_function(f).live_outs == {"r_z": 1}


class TestOptimizePipeline:
    def test_fixed_point_and_semantics(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.movi("r_c1", 10)
        b.movi("r_c2", 4)
        b.add("r_c3", "r_c1", "r_c2")   # foldable
        b.mov("r_copy", "r_c3")         # copy
        b.mul("r_dead", "r_copy", 3)    # dead after z computed from copy?
        b.add("r_z", "r_copy", "r_a")
        b.exit()
        f = b.build()
        reference = run_function(f, {"r_a": 5}).live_outs
        stats = optimize_function(f)
        verify_function(f)
        assert run_function(f, {"r_a": 5}).live_outs == reference
        assert stats["folded"] >= 1
        assert stats["dce"] >= 1
        assert f.instruction_count() < 7

    @pytest.mark.parametrize("factory,args", [
        (build_counted_loop, {"r_n": 9}),
        (build_nested_loops, {"r_n": 3, "r_m": 4}),
        (build_paper_figure3, {"r_n": 4}),
    ])
    def test_preserves_fixture_semantics(self, factory, args):
        f = factory()
        memory = ({"f3_in": [5, 260, 2, 9]}
                  if f.name == "figure3" else {})
        reference = run_function(f, args, memory)
        optimize_function(f)
        verify_function(f)
        result = run_function(f, args, memory)
        assert result.live_outs == reference.live_outs
        assert result.memory.snapshot() == reference.memory.snapshot()
        assert result.dynamic_instructions <= reference.dynamic_instructions

    def test_all_workloads_survive_optimization(self):
        for workload in all_workloads():
            f = workload.build()
            inputs = workload.make_inputs("train")
            reference = run_function(f, inputs.args, inputs.memory)
            optimize_function(f)
            verify_function(f)
            result = run_function(f, inputs.args, inputs.memory)
            assert result.live_outs == reference.live_outs, workload.name
            assert (result.memory.snapshot()
                    == reference.memory.snapshot()), workload.name

    def test_end_to_end_with_parallelization(self):
        """Optimized functions flow through the whole MT pipeline."""
        from repro.api import parallelize
        from repro.machine import run_mt_program
        f = build_nested_loops()
        reference = run_function(f, {"r_n": 4, "r_m": 5})
        result = parallelize(build_nested_loops(), technique="dswp",
                             n_threads=2,
                             profile_args={"r_n": 3, "r_m": 3})
        from repro.opt import optimize_function as opt
        g = build_nested_loops()
        opt(g)
        result = parallelize(g, technique="dswp", n_threads=2,
                             profile_args={"r_n": 3, "r_m": 3})
        mt = run_mt_program(result.program, {"r_n": 4, "r_m": 5})
        assert mt.live_outs == reference.live_outs
