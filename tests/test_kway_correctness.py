"""K-way correctness: the static MT validators and the differential
execution oracle must hold beyond the papers' two threads — at 3 and 4
threads, on flat and clustered machines alike.  (The 2-thread cases are
covered throughout the rest of the suite; these tests pin the k-way
generalization the topology-aware machine model depends on.)"""

import pytest

from repro.api import get_workload, parallelize
from repro.check import run_oracle, validate_program

WORKLOADS = ("ks", "adpcmdec")
THREAD_COUNTS = (3, 4)


def _program(name, technique, n_threads, topology=None):
    workload = get_workload(name)
    result = parallelize(workload.build(), technique=technique,
                         n_threads=n_threads, topology=topology)
    return workload, result.program


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("technique", ("gremio", "dswp"))
@pytest.mark.parametrize("n_threads", THREAD_COUNTS)
def test_validators_pass_kway(name, technique, n_threads):
    _, program = _program(name, technique, n_threads)
    report = validate_program(program, raise_on_failure=True)
    assert report.ok


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("technique", ("gremio", "dswp"))
@pytest.mark.parametrize("n_threads", THREAD_COUNTS)
def test_oracle_equivalent_kway(name, technique, n_threads):
    workload, program = _program(name, technique, n_threads)
    inputs = workload.make_inputs("train")
    result = run_oracle(workload.build(), program, args=inputs.args,
                        initial_memory=inputs.memory)
    assert result.ok, result.describe()


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("technique", ("gremio", "dswp"))
def test_oracle_equivalent_clustered(name, technique):
    """The clustered topology only changes *timing*; the generated
    program must stay functionally equivalent."""
    workload, program = _program(name, technique, 4,
                                 topology="quad-2x2")
    validate_program(program, raise_on_failure=True)
    inputs = workload.make_inputs("train")
    result = run_oracle(workload.build(), program, args=inputs.args,
                        initial_memory=inputs.memory)
    assert result.ok, result.describe()
