"""Tests for the end-to-end pipeline API, stats, and reporting helpers."""

import pytest

from repro import (TECHNIQUES, evaluate_workload, get_workload,
                   parallelize)
from repro.api import make_partitioner, technique_config
from repro.machine import DEFAULT_CONFIG, run_mt_program
from repro.report import bar_chart, grouped_bar_chart, table
from repro.stats import (arithmetic_mean, breakdown_rows, geomean,
                         relative_communication)

from .helpers import build_counted_loop, build_nested_loops


class TestParallelizeApi:
    def test_profile_from_args(self):
        result = parallelize(build_counted_loop(), technique="dswp",
                             profile_args={"r_n": 20})
        assert result.program.n_threads == 2
        mt = run_mt_program(result.program, {"r_n": 35})
        assert mt.live_outs == {"r_s": sum(range(35))}

    def test_static_profile_fallback(self):
        result = parallelize(build_nested_loops(), technique="gremio")
        assert result.profile is not None
        mt = run_mt_program(result.program, {"r_n": 3, "r_m": 4})
        expected = sum(i * j for i in range(3) for j in range(4))
        assert mt.live_outs["r_s"] == expected

    def test_coco_attaches_result(self):
        result = parallelize(build_counted_loop(), technique="dswp",
                             coco=True, profile_args={"r_n": 20})
        assert result.coco_result is not None
        assert result.coco_result.iterations >= 1

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError):
            parallelize(build_counted_loop(), technique="magic")
        with pytest.raises(ValueError):
            make_partitioner("magic", DEFAULT_CONFIG)

    def test_technique_config_queue_sizes(self):
        assert technique_config("dswp").sa_queue_size == 32
        assert technique_config("gremio").sa_queue_size == 1
        assert technique_config("gremio-flat").sa_queue_size == 1

    def test_all_techniques_listed(self):
        for technique in TECHNIQUES:
            assert make_partitioner(technique, DEFAULT_CONFIG) is not None

    def test_alias_mode_threads_through(self):
        precise = parallelize(build_counted_loop(), technique="dswp",
                              profile_args={"r_n": 10},
                              alias_mode="annotated")
        coarse = parallelize(build_counted_loop(), technique="dswp",
                             profile_args={"r_n": 10}, alias_mode="none")
        assert precise.pdg.alias.mode == "annotated"
        assert coarse.pdg.alias.mode == "none"


class TestEvaluateWorkload:
    def test_evaluation_fields(self):
        ev = evaluate_workload(get_workload("mpeg2enc"), technique="dswp",
                               scale="train")
        assert ev.st_result.cycles > 0
        assert ev.mt_result.cycles > 0
        assert 0 <= ev.communication_fraction < 1
        assert (ev.computation_instructions
                + ev.communication_instructions
                == ev.mt_result.dynamic_instructions)

    def test_check_catches_mismatch(self):
        """The built-in verification compares live-outs and memory; it
        passes on real runs (a failure would raise)."""
        ev = evaluate_workload(get_workload("ks"), technique="gremio",
                               scale="train", check=True)
        assert ev.speedup > 0


class TestStats:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([2.0, 0.0, 8.0]) == pytest.approx(4.0)  # zeros skipped

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_relative_communication(self):
        class Fake:
            def __init__(self, n):
                self.communication_instructions = n
        assert relative_communication(Fake(50), Fake(100)) == 50.0
        assert relative_communication(Fake(5), Fake(0)) == 100.0

    def test_breakdown_rows(self):
        ev = evaluate_workload(get_workload("ks"), technique="dswp",
                               scale="train")
        rows = breakdown_rows([ev])
        assert len(rows) == 1
        name, comp, comm = rows[0]
        assert name == "ks"
        assert comp + comm == pytest.approx(100.0)

    def test_queue_traffic(self):
        from repro.stats import queue_traffic
        ev = evaluate_workload(get_workload("ks"), technique="dswp",
                               scale="train")
        rows = queue_traffic(ev.parallelization.program, ev.mt_result)
        assert rows
        total = sum(messages for _, _, messages in rows)
        # Every message is one produce; produces + consumes = comm count.
        assert total * 2 == ev.communication_instructions
        assert all("T" in description for _, description, _ in rows)


class TestReport:
    def test_table_alignment(self):
        text = table(["a", "bb"], [("x", 1.5), ("long", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "1.50" in text
        assert "22" in text

    def test_bar_chart_scales_to_reference(self):
        text = bar_chart([("x", 50.0), ("y", 100.0)], reference=100.0,
                         width=10, unit="%")
        x_line, y_line = text.splitlines()
        assert x_line.count("#") == 5
        assert y_line.count("#") == 10

    def test_bar_chart_empty(self):
        assert bar_chart([], title="t") == "t"

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart([("k", [1.0, 2.0])], ["a", "b"])
        assert "k [a]" in text
        assert "k [b]" in text
