"""Shared machinery for multi-threaded correctness tests.

``assert_equivalent`` is the central oracle of this repository: for a given
function, inputs, and partition, MTCG's output simulated on the functional
machine must produce exactly the single-threaded interpreter's live-out
values and memory state, without deadlock.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.ir import Function
from repro.machine import run_mt_program
from repro.mtcg import generate
from repro.partition import Partition


def make_mt(function: Function, partition: Partition,
            data_channels=None):
    pdg = build_pdg(function)
    return generate(function, pdg, partition, data_channels=data_channels)


def assert_equivalent(function: Function, partition: Partition,
                      args: Mapping[str, object] = (),
                      initial_memory: Mapping[str, object] = (),
                      queue_capacity: int = 32,
                      mt_program=None):
    """Run single-threaded and multi-threaded; compare results."""
    if mt_program is None:
        mt_program = make_mt(function, partition)
    st = run_function(function, args, initial_memory)
    mt = run_mt_program(mt_program, args, initial_memory,
                        queue_capacity=queue_capacity)
    assert mt.live_outs == st.live_outs, (
        "live-outs differ: MT=%r ST=%r" % (mt.live_outs, st.live_outs))
    assert mt.memory.snapshot() == st.memory.snapshot(), "memory differs"
    assert mt.queues.all_empty(), "values left in queues"
    return st, mt


def build_crossed_deadlock() -> "MTProgram":
    """A hand-built two-thread program with *crossed* produce/consume
    order: each thread consumes from the other before producing for it,
    so both block forever on their first consume.  Channel balance and
    queue allocation are perfectly legal — only the intra-block ordering
    is wrong — which makes this the canonical input for the wait-for
    graph validator and the oracle's deadlock classifier."""
    from repro.analysis.pdg import DepKind
    from repro.ir import FunctionBuilder
    from repro.mtcg.channels import CommChannel, Point
    from repro.mtcg.program import MTProgram

    original_builder = FunctionBuilder("crossed", live_outs=["r0"])
    original_builder.label("entry")
    original_builder.movi("r0", 1)
    original_builder.exit()
    original = original_builder.build()
    assignment = {i.iid: 0 for i in original.instructions()}
    partition = Partition(original, 2, assignment)

    t0 = FunctionBuilder("crossed.t0", live_outs=["r0"])
    t0.label("entry")
    t0.movi("r_a", 1)
    t0.consume("r_b", 1)    # waits for thread 1's produce on q1 ...
    t0.produce(0, "r_a")    # ... which waits for this produce on q0.
    t0.add("r0", "r_a", "r_b")
    t0.exit()

    t1 = FunctionBuilder("crossed.t1")
    t1.label("entry")
    t1.movi("r_c", 2)
    t1.consume("r_d", 0)
    t1.produce(1, "r_c")
    t1.exit()

    channels = [
        CommChannel(DepKind.REGISTER, 0, 1, "r_a",
                    [Point("entry", 2)], [], queue=0),
        CommChannel(DepKind.REGISTER, 1, 0, "r_c",
                    [Point("entry", 2)], [], queue=1),
    ]
    return MTProgram(original, partition,
                     [t0.build(verify=False), t1.build(verify=False)],
                     channels, exit_thread=0)


def build_livelock_program() -> "MTProgram":
    """Two threads, no communication: thread 0 exits immediately, thread 1
    spins forever.  The MT run keeps making progress without terminating,
    so the oracle's watchdog must classify it as livelock, not deadlock."""
    from repro.ir import FunctionBuilder
    from repro.mtcg.program import MTProgram

    original_builder = FunctionBuilder("spinner", live_outs=["r0"])
    original_builder.label("entry")
    original_builder.movi("r0", 1)
    original_builder.exit()
    original = original_builder.build()
    assignment = {i.iid: 0 for i in original.instructions()}
    partition = Partition(original, 2, assignment)

    t0 = FunctionBuilder("spinner.t0", live_outs=["r0"])
    t0.label("entry")
    t0.movi("r0", 1)
    t0.exit()

    t1 = FunctionBuilder("spinner.t1")
    t1.label("entry")
    t1.jmp("spin")
    t1.label("spin")
    t1.jmp("spin")

    return MTProgram(original, partition,
                     [t0.build(verify=False), t1.build(verify=False)],
                     [], exit_thread=0)


def round_robin_partition(function: Function, n_threads: int,
                          stride: int = 1) -> Partition:
    """A deliberately adversarial partition: instructions dealt round-robin
    across threads (terminators pinned with the exit on thread 0)."""
    from repro.ir import Opcode
    assignment = {}
    counter = 0
    for instruction in function.instructions():
        if instruction.op is Opcode.EXIT:
            assignment[instruction.iid] = 0
        else:
            assignment[instruction.iid] = (counter // stride) % n_threads
            counter += 1
    return Partition(function, n_threads, assignment)


def block_level_partition(function: Function, n_threads: int) -> Partition:
    """Whole blocks dealt round-robin (exits pinned to thread 0)."""
    from repro.ir import Opcode
    assignment = {}
    for index, block in enumerate(function.blocks):
        thread = index % n_threads
        for instruction in block:
            if instruction.op is Opcode.EXIT:
                assignment[instruction.iid] = 0
            else:
                assignment[instruction.iid] = thread
    return Partition(function, n_threads, assignment)
