"""Shared machinery for multi-threaded correctness tests.

``assert_equivalent`` is the central oracle of this repository: for a given
function, inputs, and partition, MTCG's output simulated on the functional
machine must produce exactly the single-threaded interpreter's live-out
values and memory state, without deadlock.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.ir import Function
from repro.machine import run_mt_program
from repro.mtcg import generate
from repro.partition import Partition


def make_mt(function: Function, partition: Partition,
            data_channels=None):
    pdg = build_pdg(function)
    return generate(function, pdg, partition, data_channels=data_channels)


def assert_equivalent(function: Function, partition: Partition,
                      args: Mapping[str, object] = (),
                      initial_memory: Mapping[str, object] = (),
                      queue_capacity: int = 32,
                      mt_program=None):
    """Run single-threaded and multi-threaded; compare results."""
    if mt_program is None:
        mt_program = make_mt(function, partition)
    st = run_function(function, args, initial_memory)
    mt = run_mt_program(mt_program, args, initial_memory,
                        queue_capacity=queue_capacity)
    assert mt.live_outs == st.live_outs, (
        "live-outs differ: MT=%r ST=%r" % (mt.live_outs, st.live_outs))
    assert mt.memory.snapshot() == st.memory.snapshot(), "memory differs"
    assert mt.queues.all_empty(), "values left in queues"
    return st, mt


def round_robin_partition(function: Function, n_threads: int,
                          stride: int = 1) -> Partition:
    """A deliberately adversarial partition: instructions dealt round-robin
    across threads (terminators pinned with the exit on thread 0)."""
    from repro.ir import Opcode
    assignment = {}
    counter = 0
    for instruction in function.instructions():
        if instruction.op is Opcode.EXIT:
            assignment[instruction.iid] = 0
        else:
            assignment[instruction.iid] = (counter // stride) % n_threads
            counter += 1
    return Partition(function, n_threads, assignment)


def block_level_partition(function: Function, n_threads: int) -> Partition:
    """Whole blocks dealt round-robin (exits pinned to thread 0)."""
    from repro.ir import Opcode
    assignment = {}
    for index, block in enumerate(function.blocks):
        thread = index % n_threads
        for instruction in block:
            if instruction.op is Opcode.EXIT:
                assignment[instruction.iid] = 0
            else:
                assignment[instruction.iid] = thread
    return Partition(function, n_threads, assignment)
