"""Tests for CFG normalization transforms."""

from repro.interp import run_function
from repro.ir import FunctionBuilder, verify_function
from repro.ir.transforms import (has_critical_edges, renumber_iids,
                                 split_critical_edges)

from .helpers import (build_counted_loop, build_diamond,
                      build_paper_figure4)


class TestCriticalEdges:
    def test_loop_back_edge_split(self):
        f = build_paper_figure4()  # B2->B2 and B4->B4 are critical
        assert has_critical_edges(f)
        inserted = split_critical_edges(f)
        assert inserted
        assert not has_critical_edges(f)
        verify_function(f)

    def test_semantics_preserved(self):
        f = build_paper_figure4()
        reference = run_function(f, {"r_n": 6, "r_m": 3}).live_outs
        split_critical_edges(f)
        assert run_function(f, {"r_n": 6, "r_m": 3}).live_outs == reference

    def test_diamond_has_no_critical_edges(self):
        f = build_diamond()
        assert not has_critical_edges(f)
        assert split_critical_edges(f) == []

    def test_counted_loop_split(self):
        f = build_counted_loop()
        # header -> body is fine (body has 1 pred); body -> header is a
        # jmp (single successor): no critical edges here either.
        assert not has_critical_edges(f)

    def test_same_target_twice(self):
        b = FunctionBuilder("both", params=["r_c"], live_outs=["r_x"])
        b.label("entry")
        b.movi("r_x", 1)
        b.br("r_c", "t", "t")   # both arms to the same multi-pred block
        b.label("pre")
        b.jmp("t")
        b.label("t")
        b.exit()
        f = b.build()
        split_critical_edges(f)
        verify_function(f)
        assert run_function(f, {"r_c": 1}).live_outs == {"r_x": 1}


class TestRenumber:
    def test_program_order_after_insertions(self):
        f = build_paper_figure4()
        split_critical_edges(f)
        mapping = renumber_iids(f)
        iids = [i.iid for i in f.instructions()]
        assert iids == list(range(len(iids)))
        # Mapping covers all pre-existing instructions.
        assert len(mapping) == len(iids)

    def test_mapping_tracks_old_ids(self):
        f = build_counted_loop()
        old = {i.iid: repr(i.op) for i in f.instructions()}
        mapping = renumber_iids(f)
        for old_iid, new_iid in mapping.items():
            assert old_iid in old
