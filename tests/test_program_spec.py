"""The ProgramSpec program-input redesign: the registry/ir/source
union, request-key stability against pre-redesign goldens, the
completed removal of the one-release ``workload=`` shim, inline-program
materialization, and the registered ``synthetic`` frontend family."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.api import (EvaluateRequest, ProgramSpec,
                       RequestValidationError, evaluate, resolve_program)
from repro.workloads import get_workload, unknown_workload_message
from repro.workloads.synthetic import SYNTHETIC_NAMES

SAXPY = '''
def saxpy(a: int, x: "int[16]", y: "int[16]"):
    s = 0
    for i in range(16):
        y[i] = a * x[i] + y[i]
        s = s + y[i]
    return s
'''

#: Request keys recorded before ProgramSpec existed (PR 8), now
#: expressed through the canonical ``program=`` path.  They must stay
#: byte-identical forever (short of a schema bump), or the artifact
#: cache and serve memo invalidate.
GOLDEN_KEYS = [
    (dict(program=ProgramSpec.registry("ks")),
     "7aeadf595a8d78a35321500dd3389d83b1bc1fd529760ab99f4bf39fec5d6dc2"),
    (dict(program=ProgramSpec.registry("ks"), technique="gremio",
          n_threads=2, scale="train"),
     "8690542d997dac687cbe38c58244c300532a7a17ca747cc5316b8dac6a63c602"),
    (dict(program=ProgramSpec.registry("adpcmdec"), technique="dswp",
          coco=True, n_threads=4),
     "da3955f9953e17d4b787301276e4b90d43bcd0525462836aad035341bde0209f"),
    (dict(program=ProgramSpec.registry("mcf"), trace=True),
     "5d0ca4097d623d042d89d6e9744648e9524045ff802cbbf72f4298d9fef15dd0"),
    (dict(program=ProgramSpec.registry("ks"),
          overrides=(("machine.comm_latency", 2),)),
     "832769aa0eba80ecc2a605bc4bf4458a1204de792d2c5f0ca3681706acf9607d"),
]


class TestRequestKeyStability:
    def test_golden_keys_byte_identical(self):
        for kwargs, expected in GOLDEN_KEYS:
            assert EvaluateRequest(**kwargs).request_key() == expected, \
                kwargs

    def test_workload_field_derived_from_program(self):
        request = EvaluateRequest(program=ProgramSpec.registry("ks"),
                                  technique="dswp", coco=True)
        assert request.workload == "ks"

    def test_identical_inline_content_shares_keys(self):
        a = EvaluateRequest(program=ProgramSpec.source(SAXPY))
        b = EvaluateRequest(program=ProgramSpec.source(SAXPY))
        c = EvaluateRequest(program=ProgramSpec.source(SAXPY + "\n# x"))
        assert a.request_key() == b.request_key()
        assert a.request_key() != c.request_key()
        assert a.workload == b.workload
        assert a.workload.startswith("inline-py-")


class TestShimRemoval:
    def test_workload_kwarg_now_rejected(self):
        # The PR-9 one-release shim has expired: a workload=-only
        # construction is an error, with a migration hint.
        with pytest.raises(RequestValidationError) as info:
            EvaluateRequest(workload="ks")
        assert "program=ProgramSpec.registry('ks')" in str(info.value)

    def test_wire_dict_workload_only_rejected(self):
        with pytest.raises(RequestValidationError):
            EvaluateRequest.from_dict({"workload": "ks"})

    def test_as_dict_round_trip_still_carries_workload(self):
        # as_dict() emits both fields; the round-trip form (workload
        # consistent with program) stays valid on the wire forever.
        body = EvaluateRequest(
            program=ProgramSpec.registry("ks")).as_dict()
        assert body["workload"] == "ks"
        again = EvaluateRequest.from_dict(body)
        assert again.program == ProgramSpec.registry("ks")

    def test_round_trip_preserves_program(self):
        request = EvaluateRequest(program=ProgramSpec.source(SAXPY),
                                  technique="dswp", scale="train")
        again = EvaluateRequest.from_dict(request.as_dict())
        assert again == request
        assert again.request_key() == request.request_key()


class TestProgramSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestValidationError):
            ProgramSpec(kind="wasm", value="x").validate()

    def test_empty_value_rejected(self):
        with pytest.raises(RequestValidationError):
            ProgramSpec.inline_ir("   ").validate()

    def test_unknown_registry_name_suggests_close_match(self):
        with pytest.raises(RequestValidationError) as info:
            EvaluateRequest(program=ProgramSpec.registry("kss")).validate()
        assert "did you mean 'ks'" in str(info.value)

    def test_unknown_workload_message_fallback(self):
        message = unknown_workload_message("zzz-nothing-close")
        assert "repro list" in message

    def test_size_cap(self):
        with pytest.raises(RequestValidationError) as info:
            ProgramSpec.inline_ir("x" * 70000).validate()
        assert "too large" in str(info.value)

    def test_invalid_source_carries_diagnostic(self):
        with pytest.raises(RequestValidationError) as info:
            ProgramSpec.source("def f(:\n").validate()
        assert "invalid inline program" in str(info.value)
        assert "1:" in str(info.value)

    def test_invalid_ir_rejected(self):
        with pytest.raises(RequestValidationError):
            ProgramSpec.inline_ir("not ir at all").validate()

    def test_unknown_program_dict_field_rejected(self):
        with pytest.raises(RequestValidationError):
            ProgramSpec.from_dict({"kind": "ir", "value": "x",
                                   "bogus": 1})

    def test_workload_program_mismatch_rejected(self):
        with pytest.raises(RequestValidationError):
            EvaluateRequest(
                workload="ks",
                program=ProgramSpec.registry("adpcmdec")).validate()


class TestInlineMaterialization:
    def test_source_program_evaluates_and_checks(self):
        request = EvaluateRequest(program=ProgramSpec.source(SAXPY),
                                  technique="dswp", scale="train")
        result = evaluate(request)
        assert result.speedup > 0
        assert result.request.workload.startswith("inline-py-")

    def test_resolve_program_returns_session_workload(self):
        workload = resolve_program(ProgramSpec.source(SAXPY))
        assert workload is get_workload(workload.name)
        inputs = workload.make_inputs("train")
        reference = workload.reference(inputs)
        assert "__ret0" in reference
        assert "y" in reference

    def test_ir_program_round_trips_through_spec(self):
        from repro.ir.printer import format_function
        workload = resolve_program(ProgramSpec.source(SAXPY))
        text = format_function(workload.build())
        ir_workload = resolve_program(ProgramSpec.inline_ir(text))
        assert ir_workload.name.startswith("inline-ir-")
        inputs = ir_workload.make_inputs("train")
        assert ir_workload.reference(inputs)


class TestSyntheticFamily:
    def test_family_registered(self):
        for name in SYNTHETIC_NAMES:
            workload = get_workload(name)
            assert workload.suite == "synthetic"
            assert workload.build().blocks

    def test_reference_matches_interpreter(self):
        from repro.interp.interpreter import run_function
        for name in SYNTHETIC_NAMES:
            workload = get_workload(name)
            inputs = workload.make_inputs("train")
            expected = workload.reference(inputs)
            run = run_function(
                workload.build(), dict(inputs.args),
                initial_memory={k: list(v)
                                for k, v in inputs.memory.items()})
            observed = dict(run.live_outs)
            for obj in workload.output_objects:
                observed[obj] = run.mem_object(obj)
            assert observed == expected, name

    def test_one_kernel_through_full_pipeline(self):
        result = evaluate(EvaluateRequest(
            program=ProgramSpec.registry("syn.dotsat"),
            technique="dswp", scale="train"))
        assert result.speedup > 0


class TestServeInlinePrograms:
    @pytest.fixture
    def daemon(self, tmp_path):
        from repro.api import configure_cache
        from repro.service import ServiceConfig, ServiceDaemon
        previous = configure_cache(str(tmp_path / "artifacts"))
        instance = ServiceDaemon(ServiceConfig(
            host="127.0.0.1", port=0, workers=0, queue_limit=8,
            request_timeout=120.0, log_stream=io.StringIO()))
        instance.start()
        try:
            yield instance
        finally:
            instance.close()
            configure_cache(previous.directory, previous.enabled)

    def _post(self, daemon, body):
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            daemon.address + "/v1/evaluate", data=data,
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=120) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_inline_program_body(self, daemon):
        status, document = self._post(daemon, {
            "program": {"kind": "source", "value": SAXPY},
            "technique": "gremio", "scale": "train"})
        assert status == 200
        assert document["metrics"]["speedup"] > 0
        assert document["request"]["workload"].startswith("inline-py-")

    def test_oversized_program_is_400(self, daemon):
        status, document = self._post(daemon, {
            "program": {"kind": "ir", "value": "x" * 70000}})
        assert status == 400
        assert "too large" in document["error"]

    def test_uncompilable_program_is_400(self, daemon):
        status, document = self._post(daemon, {
            "program": {"kind": "source", "value": "def f(:"}})
        assert status == 400
        assert "invalid inline program" in document["error"]
