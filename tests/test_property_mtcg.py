"""Property-based tests: MTCG preserves semantics for *any* program and
*any* partition (the correctness theorem of the MTCG paper, checked
empirically), and the generated code is deadlock-free even with
single-element queues."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interp import run_function
from repro.ir import verify_function
from repro.machine import run_mt_program

from repro.check.generate import render_program
from repro.check.strategies import (program_sketches,
                                    random_partition_strategy)

from .mt_utils import make_mt

_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.data_too_large])


@st.composite
def program_and_partition(draw):
    sketch = draw(program_sketches)
    function = render_program(sketch)
    partition = draw(random_partition_strategy(function))
    return function, partition


@st.composite
def program_inputs(draw):
    return {
        "r_in0": draw(st.integers(-50, 50)),
        "r_in1": draw(st.integers(-50, 50)),
    }


@given(case=program_and_partition(), args=program_inputs(),
       capacity=st.sampled_from([1, 2, 32]))
@_SETTINGS
def test_mtcg_equivalence_random(case, args, capacity):
    function, partition = case
    st_result = run_function(function, args)
    mt = make_mt(function, partition)
    for thread_function in mt.threads:
        verify_function(thread_function, allow_comm=True)
    mt_result = run_mt_program(mt, args, queue_capacity=capacity)
    assert mt_result.live_outs == st_result.live_outs
    assert mt_result.memory.snapshot() == st_result.memory.snapshot()
    assert mt_result.queues.all_empty()


@given(case=program_and_partition(), args=program_inputs())
@_SETTINGS
def test_coco_equivalence_and_never_worse(case, args):
    """COCO-optimized code is semantically equivalent AND never executes
    more dynamic communication than baseline MTCG (the paper's headline
    safety claim)."""
    from repro.analysis import build_pdg
    from repro.coco import optimize
    from repro.ir.transforms import renumber_iids, split_critical_edges
    from repro.mtcg import generate
    from repro.partition import Partition

    function, partition = case
    # Normalize (the real pipeline splits critical edges before COCO).
    old_assignment = dict(partition.assignment)
    split_critical_edges(function)
    mapping = renumber_iids(function)
    assignment = {mapping[iid]: thread
                  for iid, thread in old_assignment.items()}
    for instruction in function.instructions():
        assignment.setdefault(instruction.iid, 0)
    partition = Partition(function, partition.n_threads, assignment)

    st_result = run_function(function, args)
    pdg = build_pdg(function)
    coco = optimize(function, pdg, partition, st_result.profile)
    mt = generate(function, pdg, partition,
                  data_channels=coco.data_channels,
                  condition_covered=coco.condition_covered)
    mt_result = run_mt_program(mt, args)
    assert mt_result.live_outs == st_result.live_outs
    assert mt_result.memory.snapshot() == st_result.memory.snapshot()

    baseline = run_mt_program(generate(function, pdg, partition), args)
    assert (mt_result.communication_instructions
            <= baseline.communication_instructions)


@given(sketch=program_sketches, args=program_inputs(),
       technique=st.sampled_from(["gremio", "dswp", "gremio-flat"]),
       n_threads=st.integers(2, 4))
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_partitioners_equivalent_on_random_programs(sketch, args,
                                                    technique, n_threads):
    """GREMIO and DSWP partitions of arbitrary structured programs run
    correctly through MTCG; DSWP's partitions additionally satisfy the
    pipeline property."""
    from repro.analysis import build_pdg
    from repro.interp import run_function as run_f
    from repro.ir.transforms import renumber_iids, split_critical_edges
    from repro.api import make_partitioner, technique_config

    function = render_program(sketch)
    split_critical_edges(function)
    renumber_iids(function)
    st_result = run_f(function, args)
    pdg = build_pdg(function)
    config = technique_config(technique).with_cores(n_threads)
    partition = make_partitioner(technique, config).partition(
        function, pdg, st_result.profile, n_threads)
    if technique == "dswp":
        for arc in pdg.arcs:
            assert (partition.thread_of(arc.source)
                    <= partition.thread_of(arc.target))
    from repro.mtcg import generate
    mt = generate(function, pdg, partition)
    mt_result = run_mt_program(mt, args,
                               queue_capacity=config.sa_queue_size)
    assert mt_result.live_outs == st_result.live_outs
    assert mt_result.memory.snapshot() == st_result.memory.snapshot()


@given(sketch=program_sketches, args=program_inputs())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_timed_simulation_matches_functional(sketch, args):
    """The timing co-simulation computes the same values as the purely
    functional one (timing must never perturb semantics)."""
    from repro.analysis import build_pdg
    from repro.machine import simulate_program
    from repro.mtcg import generate
    from repro.partition import Partition
    from repro.ir import Opcode

    function = render_program(sketch)
    st_result = run_function(function, args)
    assignment = {}
    for index, instruction in enumerate(function.instructions()):
        assignment[instruction.iid] = (
            0 if instruction.op is Opcode.EXIT else index % 2)
    partition = Partition(function, 2, assignment)
    pdg = build_pdg(function)
    mt = generate(function, pdg, partition)
    functional = run_mt_program(mt, args)
    timed = simulate_program(mt, args)
    assert timed.live_outs == functional.live_outs == st_result.live_outs
    assert timed.memory.snapshot() == st_result.memory.snapshot()
    assert timed.dynamic_instructions == functional.dynamic_instructions
    assert timed.cycles > 0


@given(case=program_and_partition())
@_SETTINGS
def test_mt_computation_preserved(case):
    """The multi-threaded run executes every original computation the
    single-threaded run executes (communication and control glue aside):
    per-opcode dynamic counts of non-communication, non-control opcodes
    must match."""
    from repro.ir import Opcode
    function, partition = case
    args = {"r_in0": 5, "r_in1": -9}
    st_result = run_function(function, args)
    mt = make_mt(function, partition)
    mt_result = run_mt_program(mt, args)
    glue = {Opcode.JMP, Opcode.BR, Opcode.EXIT, Opcode.PRODUCE,
            Opcode.CONSUME, Opcode.PRODUCE_SYNC, Opcode.CONSUME_SYNC}
    for opcode, count in st_result.opcode_counts.items():
        if opcode in glue:
            continue
        assert mt_result.opcode_counts[opcode] == count, opcode
