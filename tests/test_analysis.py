"""Unit tests for dominance, control dependence, loops, liveness, and
reaching definitions."""

from repro.analysis import (VIRTUAL_EXIT, control_dependence_graph,
                            dominator_tree, liveness, loop_nest_forest,
                            loop_trip_count_estimate, postdominator_tree,
                            reaching_definitions, register_dependences)
from repro.analysis.reaching_defs import PARAM_DEF
from repro.interp import run_function

from .helpers import (build_counted_loop, build_diamond,
                      build_nested_loops, build_paper_figure3,
                      build_paper_figure4)


class TestDominators:
    def test_diamond_dominators(self):
        f = build_diamond()
        dom = dominator_tree(f)
        assert dom.idom["then"] == "entry"
        assert dom.idom["else_"] == "entry"
        assert dom.idom["join"] == "entry"
        assert dom.dominates("entry", "join")
        assert not dom.dominates("then", "join")

    def test_loop_dominators(self):
        f = build_counted_loop()
        dom = dominator_tree(f)
        assert dom.idom["body"] == "header"
        assert dom.idom["done"] == "header"
        assert dom.dominates("header", "body")

    def test_postdominators_diamond(self):
        f = build_diamond()
        pdom = postdominator_tree(f)
        assert pdom.idom["then"] == "join"
        assert pdom.idom["else_"] == "join"
        assert pdom.idom["entry"] == "join"
        assert pdom.idom["join"] == VIRTUAL_EXIT

    def test_postdominators_loop(self):
        f = build_counted_loop()
        pdom = postdominator_tree(f)
        assert pdom.idom["body"] == "header"
        assert pdom.idom["header"] == "done"

    def test_walk_up_reaches_root(self):
        f = build_diamond()
        dom = dominator_tree(f)
        assert list(dom.walk_up("then")) == ["then", "entry"]


class TestControlDependence:
    def test_diamond_cdg(self):
        f = build_diamond()
        cdg = control_dependence_graph(f)
        assert cdg.deps_of("then") == {("entry", 0)}
        assert cdg.deps_of("else_") == {("entry", 1)}
        assert cdg.deps_of("join") == set()

    def test_loop_header_self_dependence(self):
        f = build_counted_loop()
        cdg = control_dependence_graph(f)
        # body depends on the header branch; the header re-executes under
        # its own control (loop-carried control dependence).
        assert ("header", 0) in cdg.deps_of("body")
        assert ("header", 0) in cdg.deps_of("header")
        assert cdg.deps_of("done") == set()

    def test_nested_loop_transitive_branches(self):
        f = build_nested_loops()
        cdg = control_dependence_graph(f)
        transitive = cdg.transitive_controlling_branches("inner_body")
        assert "inner" in transitive
        assert "outer" in transitive

    def test_dependents_of_branch(self):
        f = build_diamond()
        cdg = control_dependence_graph(f)
        assert cdg.dependents_of_branch("entry") == ["else_", "then"]


class TestLoops:
    def test_single_loop(self):
        f = build_counted_loop()
        forest = loop_nest_forest(f)
        assert len(forest.top_level) == 1
        loop = forest.top_level[0]
        assert loop.header == "header"
        assert loop.blocks == {"header", "body"}
        assert loop.back_edge_sources == {"body"}

    def test_nested_loops_forest(self):
        f = build_nested_loops()
        forest = loop_nest_forest(f)
        assert len(forest.top_level) == 1
        outer = forest.top_level[0]
        assert outer.header == "outer"
        assert len(outer.children) == 1
        inner = outer.children[0]
        assert inner.header == "inner"
        assert inner.depth == 2
        assert inner.blocks <= outer.blocks
        assert "inner_body" in inner.blocks

    def test_depth_by_block(self):
        f = build_nested_loops()
        depth = loop_nest_forest(f).depth_by_block()
        assert depth["entry"] == 0
        assert depth["outer_body"] == 1
        assert depth["inner_body"] == 2

    def test_no_loops_in_diamond(self):
        forest = loop_nest_forest(build_diamond())
        assert forest.top_level == []

    def test_trip_count_estimate_from_profile(self):
        f = build_counted_loop()
        result = run_function(f, {"r_n": 12})
        forest = loop_nest_forest(f)
        estimate = loop_trip_count_estimate(forest.top_level[0],
                                            result.profile)
        assert estimate == 13  # 12 body iterations + 1 exit test

    def test_figure4_two_sibling_loops(self):
        f = build_paper_figure4()
        forest = loop_nest_forest(f)
        headers = sorted(loop.header for loop in forest.top_level)
        assert headers == ["B2", "B4"]


class TestLiveness:
    def test_liveout_registers_live_at_exit(self):
        f = build_counted_loop()
        live = liveness(f)
        exit_ins = f.block("done").terminator
        assert "r_s" in live.live_in[exit_ins.iid]

    def test_dead_after_last_use(self):
        f = build_diamond()
        live = liveness(f)
        branch = f.block("entry").terminator
        assert "r_c" in live.live_in[branch.iid]
        assert "r_c" not in live.live_out[branch.iid]

    def test_loop_variable_live_around_backedge(self):
        f = build_counted_loop()
        live = liveness(f)
        assert "r_i" in live.block_live_in["header"]
        assert "r_s" in live.block_live_in["header"]

    def test_param_live_in_loop(self):
        f = build_counted_loop()
        live = liveness(f)
        assert "r_n" in live.block_live_in["header"]


class TestReachingDefs:
    def test_param_reaches_use(self):
        f = build_counted_loop()
        reaching = reaching_definitions(f)
        cmp_ins = f.block("header").instructions[0]
        assert PARAM_DEF in reaching.definitions_reaching(cmp_ins.iid, "r_n")

    def test_loop_carried_def_reaches_header(self):
        f = build_counted_loop()
        reaching = reaching_definitions(f)
        cmp_ins = f.block("header").instructions[0]
        add_i = f.block("body").instructions[1]
        assert add_i.dest == "r_i"
        assert add_i.iid in reaching.definitions_reaching(cmp_ins.iid, "r_i")

    def test_register_dependences_figure4(self):
        f = build_paper_figure4()
        arcs = register_dependences(f)
        # The r1 accumulation in B2 must reach the use in B4 (arc B->E of
        # the companion paper's Figure 4).
        add_r1 = f.block("B2").instructions[0]
        use_r1 = f.block("B4").instructions[0]
        assert (add_r1.iid, use_r1.iid, "r1") in arcs

    def test_both_diamond_defs_reach_join(self):
        f = build_diamond()
        arcs = register_dependences(f)
        join_add = f.block("join").instructions[0]
        sources = {src for src, dst, reg in arcs
                   if dst == join_add.iid and reg == "r_x"}
        then_def = f.block("then").instructions[0]
        else_def = f.block("else_").instructions[0]
        assert {then_def.iid, else_def.iid} <= sources

    def test_no_self_arcs(self):
        for factory in (build_counted_loop, build_nested_loops,
                        build_paper_figure3):
            for src, dst, _ in register_dependences(factory()):
                assert src != dst
