"""Gap-filling unit tests: run-time state errors, MTProgram helpers,
printer options, memory layout, and config helpers."""

import pytest

from repro.interp import Memory, MemoryError_, bind_params, make_memory
from repro.ir import FunctionBuilder, format_function
from repro.machine import DEFAULT_CONFIG

from .helpers import build_counted_loop, build_memory_loop
from .mt_utils import make_mt, round_robin_partition


class TestMemoryState:
    def test_bounds_checked(self):
        memory = Memory(4)
        memory.store(3, 42)
        assert memory.load(3) == 42
        with pytest.raises(MemoryError_):
            memory.load(4)
        with pytest.raises(MemoryError_):
            memory.store(-1, 0)

    def test_array_helpers(self):
        memory = Memory(8)
        memory.write_array(2, [10, 11, 12])
        assert memory.read_array(2, 3) == [10, 11, 12]
        assert memory.snapshot()[:2] == (0, 0)

    def test_make_memory_rejects_unknown_object(self):
        f = build_memory_loop()
        with pytest.raises(MemoryError_):
            make_memory(f, {"nope": [1, 2]})

    def test_make_memory_rejects_oversize_initializer(self):
        f = build_memory_loop()
        with pytest.raises(MemoryError_):
            make_memory(f, {"arr_in": [0] * 1000})

    def test_bind_params_missing_argument(self):
        f = build_counted_loop()
        with pytest.raises(MemoryError_):
            bind_params(f, {})

    def test_bind_params_unknown_argument(self):
        f = build_counted_loop()
        with pytest.raises(MemoryError_):
            bind_params(f, {"r_n": 1, "r_bogus": 2})

    def test_pointer_params_bound_to_bases(self):
        f = build_memory_loop()
        make_memory(f, {})
        regs = bind_params(f, {"r_n": 4})
        assert regs["p_in"] == f.mem_objects["arr_in"].base
        assert regs["p_out"] == f.mem_objects["arr_out"].base


class TestMTProgramHelpers:
    def test_static_instruction_counts(self):
        f = build_counted_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        counts = mt.static_instruction_counts()
        assert counts["communication"] > 0
        assert counts["computation"] > 0
        total = sum(len(list(t.instructions())) for t in mt.threads)
        assert counts["communication"] + counts["computation"] == total

    def test_channel_by_queue(self):
        f = build_counted_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        first = mt.channels[0]
        assert mt.channel_by_queue(first.queue) is first
        assert mt.channel_by_queue(10_000) is None


class TestPrinterOptions:
    def test_show_iids(self):
        f = build_counted_loop()
        text = format_function(f, show_iids=True)
        assert "; iid=0" in text

    def test_region_annotation_printed(self):
        b = FunctionBuilder("f", params=["p_a"])
        b.mem("obj", 4, ptr="p_a")
        b.label("entry")
        b.load("r_x", "p_a", 0, region="obj")
        b.exit()
        text = format_function(b.build())
        assert "!region(obj)" in text


class TestConfigHelpers:
    def test_with_cores(self):
        assert DEFAULT_CONFIG.with_cores(4).n_cores == 4
        assert DEFAULT_CONFIG.n_cores == 2  # frozen original untouched

    def test_with_threads_shim_removed(self):
        # The one-release with_threads() deprecation shim is gone;
        # with_cores() is the only sizing helper.
        assert not hasattr(DEFAULT_CONFIG, "with_threads")

    def test_latency_of_defaults(self):
        from repro.ir import Instruction, Opcode
        assert DEFAULT_CONFIG.latency_of(
            Instruction(Opcode.FSQRT, "r", ["a"])) == 30
        assert DEFAULT_CONFIG.latency_of(
            Instruction(Opcode.ADD, "r", ["a", "b"])) == 1

    def test_memory_layout_alignment(self):
        f = build_memory_loop()
        f.layout_memory(align=16)
        for obj in f.mem_objects.values():
            assert obj.base % 16 == 0
