"""Tests for the baseline comparator (:mod:`repro.bench.compare`):
tolerance bands, one-sided wall-time gating, missing/new metrics, and
schema/mode mismatch refusal."""

import pytest

from repro.bench import (BenchResults, Comparison, Metric, SchemaError,
                        SpecResult, compare)
from repro.bench.compare import INFO, MISSING, NEW, OK, REGRESSION, SAME


def make_doc(metrics, mode="smoke", spec_id="spec", schema=None):
    results = BenchResults(mode=mode)
    if schema is not None:
        results.schema = schema
    results.specs[spec_id] = SpecResult(
        spec_id=spec_id, title=spec_id, seconds=0.0,
        metrics=dict(metrics))
    return results


def one_delta(comparison):
    assert len(comparison.deltas) == 1
    return comparison.deltas[0]


class TestMetricVerdicts:
    def test_identical_values_pass(self):
        comparison = compare(make_doc({"m": Metric(1.5)}),
                             make_doc({"m": Metric(1.5)}))
        assert comparison.ok
        assert one_delta(comparison).status == SAME

    def test_exact_tolerance_flags_any_change(self):
        comparison = compare(make_doc({"m": Metric(100.0)}),
                             make_doc({"m": Metric(100.0001)}))
        assert not comparison.ok
        delta = one_delta(comparison)
        assert delta.status == REGRESSION
        assert delta.gates

    def test_within_band_passes(self):
        comparison = compare(
            make_doc({"m": Metric(100.0, tolerance=0.10)}),
            make_doc({"m": Metric(105.0, tolerance=0.10)}))
        assert comparison.ok
        assert one_delta(comparison).status == OK

    def test_outside_band_regresses(self):
        comparison = compare(
            make_doc({"m": Metric(100.0, tolerance=0.10)}),
            make_doc({"m": Metric(115.0, tolerance=0.10)}))
        assert not comparison.ok
        assert one_delta(comparison).status == REGRESSION

    def test_wall_time_gate_is_one_sided(self):
        """A unit="s" metric only regresses on slowdowns — a 10x
        speedup on a faster runner must never fail CI."""
        base = {"t": Metric(1.0, unit="s", tolerance=0.5)}
        faster = compare(make_doc(base),
                         make_doc({"t": Metric(0.1, unit="s",
                                               tolerance=0.5)}))
        assert faster.ok
        slower = compare(make_doc(base),
                         make_doc({"t": Metric(2.0, unit="s",
                                               tolerance=0.5)}))
        assert not slower.ok

    def test_host_strict_tightens_wall_time_bands(self):
        """--host-strict substitutes STRICT_TIME_BAND for looser
        wall-time tolerances: a slowdown that the default TIME_BAND
        jitter allowance absorbs gates on a quiet dedicated host."""
        from repro.bench import STRICT_TIME_BAND, TIME_BAND
        base = {"t": Metric(1.0, unit="s", tolerance=TIME_BAND)}
        slower = {"t": Metric(1.0 + STRICT_TIME_BAND + 0.5, unit="s",
                              tolerance=TIME_BAND)}
        assert compare(make_doc(base), make_doc(slower)).ok
        strict = compare(make_doc(base), make_doc(slower),
                         host_strict=True)
        assert not strict.ok
        delta = one_delta(strict)
        assert delta.status == REGRESSION
        assert delta.tolerance == STRICT_TIME_BAND

    def test_host_strict_stays_one_sided_and_scoped_to_seconds(self):
        from repro.bench import STRICT_TIME_BAND, TIME_BAND
        # Speedups under strict comparison still never gate...
        faster = compare(
            make_doc({"t": Metric(10.0, unit="s", tolerance=TIME_BAND)}),
            make_doc({"t": Metric(0.5, unit="s", tolerance=TIME_BAND)}),
            host_strict=True)
        assert faster.ok
        # ...non-wall-time metrics keep their own bands...
        counts = compare(
            make_doc({"n": Metric(100.0, unit="count", tolerance=3.0)}),
            make_doc({"n": Metric(300.0, unit="count", tolerance=3.0)}),
            host_strict=True)
        assert counts.ok
        # ...and already-tighter or informational tolerances are kept.
        tight = compare(
            make_doc({"t": Metric(1.0, unit="s", tolerance=0.1)}),
            make_doc({"t": Metric(1.05, unit="s", tolerance=0.1)}),
            host_strict=True)
        assert one_delta(tight).tolerance == 0.1
        info = compare(
            make_doc({"t": Metric(1.0, unit="s", tolerance=None)}),
            make_doc({"t": Metric(9.0, unit="s", tolerance=None)}),
            host_strict=True)
        assert info.ok
        assert one_delta(info).status == INFO
        assert STRICT_TIME_BAND < TIME_BAND

    def test_info_metrics_never_gate(self):
        comparison = compare(
            make_doc({"m": Metric(10.0, tolerance=None)}),
            make_doc({"m": Metric(99.0, tolerance=None)}))
        assert comparison.ok
        assert one_delta(comparison).status == INFO

    def test_missing_metric_is_a_regression(self):
        comparison = compare(make_doc({"gone": Metric(1.0)}),
                             make_doc({}))
        assert not comparison.ok
        delta = one_delta(comparison)
        assert delta.status == MISSING
        assert delta.current is None

    def test_new_metric_never_gates(self):
        comparison = compare(make_doc({}),
                             make_doc({"fresh": Metric(1.0)}))
        assert comparison.ok
        assert one_delta(comparison).status == NEW


class TestDocumentCompatibility:
    def test_schema_mismatch_refused(self):
        with pytest.raises(SchemaError, match="schema mismatch"):
            compare(make_doc({}, schema="repro.bench/v0"), make_doc({}))

    def test_mode_mismatch_refused(self):
        with pytest.raises(SchemaError, match="mode mismatch"):
            compare(make_doc({}, mode="full"), make_doc({}, mode="smoke"))


class TestRendering:
    def regression_comparison(self):
        return compare(
            make_doc({"speedup/gremio/ks": Metric(1.5, unit="x"),
                      "stable": Metric(2.0)}, spec_id="fig8_speedup"),
            make_doc({"speedup/gremio/ks": Metric(1.2, unit="x"),
                      "stable": Metric(2.0)}, spec_id="fig8_speedup"))

    def test_table_names_the_offending_metric(self):
        text = self.regression_comparison().markdown_table()
        assert "`speedup/gremio/ks`" in text
        assert "fig8_speedup" in text
        assert "regression" in text
        assert "stable" not in text  # unchanged rows elided by default

    def test_table_include_unchanged(self):
        text = self.regression_comparison().markdown_table(
            include_unchanged=True)
        assert "stable" in text

    def test_all_clear_table(self):
        comparison = compare(make_doc({"m": Metric(1.0)}),
                             make_doc({"m": Metric(1.0)}))
        assert "within tolerance" in comparison.markdown_table()

    def test_summary_counts(self):
        summary = self.regression_comparison().summary()
        assert "REGRESSION (1 metrics)" in summary
        assert "1 same" in summary

    def test_counts(self):
        assert self.regression_comparison().counts() == {
            SAME: 1, REGRESSION: 1}


class TestDeltaMath:
    def test_relative_delta_reported(self):
        comparison = compare(make_doc({"m": Metric(100.0)}),
                             make_doc({"m": Metric(150.0)}))
        assert one_delta(comparison).delta == pytest.approx(0.5)

    def test_empty_comparison_is_ok(self):
        comparison = compare(make_doc({}), make_doc({}))
        assert isinstance(comparison, Comparison)
        assert comparison.ok
        assert comparison.deltas == []
