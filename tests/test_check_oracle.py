"""Tests for the differential execution oracle
(:mod:`repro.check.oracle`) and the structured deadlock reporting in
:mod:`repro.debug` it is built on."""

import pytest

from repro.check.oracle import VERDICTS, run_oracle
from repro.debug import (DeadlockDetected, find_divergence,
                         find_divergence_truncating, trace_mt)
from repro.ir import Opcode

from .helpers import build_memory_loop
from .mt_utils import (build_crossed_deadlock, build_livelock_program,
                       make_mt, round_robin_partition)


def _memory_loop_case():
    f = build_memory_loop()
    mt = make_mt(f, round_robin_partition(f, 2))
    return f, mt, {"r_n": 12}, {"arr_in": list(range(12))}


class TestOracleVerdicts:
    def test_correct_program_is_ok(self):
        f, mt, args, memory = _memory_loop_case()
        result = run_oracle(f, mt, args, memory)
        assert result.ok and result.verdict == "ok"
        assert result.st_stores == result.mt_stores == 12
        assert result.st_liveouts == result.mt_liveouts
        assert "equivalent" in result.describe()

    def test_sabotaged_store_is_divergence(self):
        f, mt, args, memory = _memory_loop_case()
        for thread in mt.threads:
            for instruction in thread.instructions():
                if instruction.op is Opcode.STORE:
                    instruction.imm = (instruction.imm or 0) + 1
                    break
        result = run_oracle(f, mt, args, memory)
        assert result.verdict == "divergence"
        assert result.divergence is not None
        assert "first divergence" in result.describe()

    def test_crossed_program_is_deadlock(self):
        """The satellite case: two threads, each consuming from the other
        before producing for it.  The oracle must terminate, classify it
        as deadlock, and name the blocked threads and offending
        channels."""
        mt = build_crossed_deadlock()
        result = run_oracle(mt.original, mt)
        assert result.verdict == "deadlock"
        report = result.deadlock
        assert report is not None
        assert report.blocked_threads == [0, 1]
        assert report.blocking_queues == [0, 1]
        assert len(report.channels) == 2
        text = result.describe()
        assert "deadlock" in text and "blocked" in text

    def test_spinning_thread_is_livelock(self):
        """A thread that never stops making progress must be classified
        livelock, not deadlock — the watchdog distinguishes 'blocked on
        queues' from 'running past the step budget'."""
        mt = build_livelock_program()
        result = run_oracle(mt.original, mt, max_steps=5_000)
        assert result.verdict == "livelock"
        assert result.deadlock is None
        assert "still progressing" in result.detail

    def test_all_verdicts_declared(self):
        assert set(VERDICTS) >= {"ok", "deadlock", "livelock",
                                 "divergence", "liveout-mismatch",
                                 "store-count-mismatch", "queue-residue"}


class TestDeadlockReporting:
    def test_trace_mt_returns_structured_report(self):
        mt = build_crossed_deadlock()
        trace = trace_mt(mt, max_steps=10_000)
        assert trace.deadlock is not None
        assert not trace.exhausted
        report = trace.deadlock
        # Both threads sit on their first consume; nothing was produced,
        # so every blocking queue is empty.
        for blocked in report.blocked:
            assert blocked.instruction.op is Opcode.CONSUME
            assert report.occupancy.get(blocked.queue, 0) == 0
        assert "blocked" in report.describe()

    def test_find_divergence_raises_by_default(self):
        mt = build_crossed_deadlock()
        with pytest.raises(DeadlockDetected) as error:
            find_divergence(mt.original, mt, max_steps=10_000)
        assert error.value.report.blocking_queues == [0, 1]
        assert error.value.writes == []

    def test_find_divergence_truncating_keeps_old_behavior(self):
        # The crossed program performs no stores, so truncation sees two
        # identical (empty) write streams and reports no divergence —
        # exactly the silent-truncation blind spot the structured report
        # exists to close.
        mt = build_crossed_deadlock()
        assert find_divergence_truncating(mt.original, mt,
                                          max_steps=10_000) is None

    def test_find_divergence_rejects_bad_mode(self):
        mt = build_crossed_deadlock()
        with pytest.raises(ValueError):
            find_divergence(mt.original, mt, on_deadlock="ignore")
