"""Tests for COCO's flow-graph construction: node inclusion, arc costs,
safety/relevance infinities, control-flow penalties, and point mapping."""

import pytest

from repro.analysis import build_pdg
from repro.coco.flowgraph import (GfContext, S_NODE, T_NODE,
                                  build_memory_flow_graph,
                                  build_register_flow_graph, entry_node,
                                  instr_node)
from repro.graphs import INFINITY, min_cut
from repro.interp import run_function
from repro.ir.transforms import renumber_iids, split_critical_edges
from repro.mtcg import Point
from repro.mtcg.relevant import compute_relevance
from repro.partition import partition_from_threads

from .helpers import build_paper_figure4


def _figure4_setup():
    f = build_paper_figure4()
    split_critical_edges(f)
    renumber_iids(f)
    block_of = f.block_of()
    t0 = [i.iid for i in f.instructions()
          if block_of[i.iid] in ("B1", "B2") or
          block_of[i.iid].startswith("B2__")]
    t1 = [i.iid for i in f.instructions() if i.iid not in t0]
    partition = partition_from_threads(f, 2, [t0, t1])
    profile = run_function(f, {"r_n": 10, "r_m": 4}).profile
    pdg = build_pdg(f)
    context = GfContext(f, profile, pdg.cdg)
    relevance = compute_relevance(f, pdg, partition, [])
    return f, partition, profile, pdg, context, relevance


class TestRegisterGf:
    def test_nodes_limited_to_live_range(self):
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        defs = {i.iid for i in f.instructions()
                if i.dest == "r1" and partition.thread_of(i.iid) == 0}
        uses = {i.iid for i in f.instructions()
                if "r1" in i.srcs and partition.thread_of(i.iid) == 1}
        graph = build_register_flow_graph(
            context, partition, "r1", 0, 1, defs, uses,
            relevance.relevant_branches)
        # Nodes exist for the B2 definition and the B4 use...
        for iid in defs | uses:
            assert instr_node(iid) in graph
        # ...but not for instructions before r1 exists at all: the loop
        # counter init (movi r_i) precedes the first def in B1;
        # r1's movi is the def itself.
        movi_i = f.block("B1").instructions[1]
        assert movi_i.dest == "r_i"
        assert instr_node(movi_i.iid) not in graph

    def test_min_cut_prefers_loop_exit(self):
        """The headline Figure 4 result: the min cut sits after loop 1,
        not inside it."""
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        defs = {i.iid for i in f.instructions()
                if i.dest == "r1" and partition.thread_of(i.iid) == 0}
        uses = {i.iid for i in f.instructions()
                if "r1" in i.srcs and partition.thread_of(i.iid) == 1}
        graph = build_register_flow_graph(
            context, partition, "r1", 0, 1, defs, uses,
            relevance.relevant_branches)
        cut = min_cut(graph, S_NODE, T_NODE)
        assert cut.value <= 1.0 + 1e-9  # once per region entry
        for arc in cut.cut_arcs:
            point = context.arc_to_point(arc)
            assert point.block not in ("B2",), point

    def test_special_arcs_infinite(self):
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        defs = {i.iid for i in f.instructions()
                if i.dest == "r1" and partition.thread_of(i.iid) == 0}
        uses = {i.iid for i in f.instructions()
                if "r1" in i.srcs and partition.thread_of(i.iid) == 1}
        graph = build_register_flow_graph(
            context, partition, "r1", 0, 1, defs, uses,
            relevance.relevant_branches)
        for def_iid in defs:
            assert graph.arc_capacity(S_NODE,
                                      instr_node(def_iid)) == INFINITY
        for use_iid in uses:
            assert graph.arc_capacity(instr_node(use_iid),
                                      T_NODE) == INFINITY

    def test_unsafe_region_infinite(self):
        """After thread 1's own redefinition of the register, thread 0's
        copy is stale: those arcs must never be cut."""
        f = build_paper_figure4()
        split_critical_edges(f)
        renumber_iids(f)
        # Redefine r1 in thread 1's loop 2 to create staleness.
        # (Use the existing r2 accumulation as the t1 def of r2 instead:
        # communicate r2 from t1? Simpler: check SAFE through the API.)
        from repro.coco.thread_aware import safe_range_wrt_thread
        block_of = f.block_of()
        t0 = [i.iid for i in f.instructions()
              if block_of[i.iid] in ("B1", "B2")
              or block_of[i.iid].startswith("B2__")]
        t1 = [i.iid for i in f.instructions() if i.iid not in t0]
        partition = partition_from_threads(f, 2, [t0, t1])
        safe = safe_range_wrt_thread(f, "r2", partition, 0, set())
        # r2 is defined by thread 1 (B3/B4): thread 0 never holds a
        # current copy after those definitions.
        b4_add = f.block("B4").instructions[0]
        assert b4_add.dest == "r2"
        assert not safe.after[b4_add.iid]


class TestArcToPoint:
    def test_instruction_head(self):
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        instruction = f.block("B4").instructions[1]
        point = context.arc_to_point(
            (instr_node(f.block("B4").instructions[0].iid),
             instr_node(instruction.iid)))
        assert point == Point("B4", 1)

    def test_entry_head_single_pred(self):
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        # B3's single predecessor is B2 (via the split block after the
        # back edge was split).
        preds = f.predecessors_map()["B3"]
        assert len(preds) == 1
        terminator = f.block(preds[0]).terminator
        point = context.arc_to_point((instr_node(terminator.iid),
                                      entry_node("B3")))
        assert point.block in (preds[0], "B3")

    def test_bad_head_rejected(self):
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        with pytest.raises(ValueError):
            context.arc_to_point((instr_node(0), S_NODE))


class TestControlPenalty:
    def test_penalty_counts_irrelevant_branches(self):
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        # B4's controlling branch is B4's own loop branch.
        controllers = context.controllers("B4")
        assert controllers
        none_relevant = context.control_penalty("B4", set())
        all_relevant = context.control_penalty("B4", controllers)
        assert none_relevant > 0
        assert all_relevant == 0.0


class TestMemoryGf:
    def test_whole_region_nodes(self):
        f, partition, profile, pdg, context, relevance = _figure4_setup()
        graph = build_memory_flow_graph(context, partition, 0, 1,
                                        relevance.relevant_branches)
        for instruction in f.instructions():
            assert instr_node(instruction.iid) in graph
        for block in f.blocks:
            assert entry_node(block.label) in graph
