"""The Python-to-IR frontend: compilation, CPython-exact semantics,
precise diagnostics, the printer/parser round-trip over emitted IR,
and the fixed-seed differential fuzz loop."""

from __future__ import annotations

import math
import random

import pytest

from repro.check.generate import random_sketch
from repro.frontend import (FrontendError, compile_source,
                            python_callable, random_inputs,
                            run_frontend_fuzz, sketch_to_python)
from repro.frontend.fuzz import run_differential_case
from repro.interp.interpreter import run_function
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.ir.verify import verify_function


def _run_both(source, args, arrays=None, name=None):
    """Execute source on CPython and as compiled IR; return both
    (result, arrays) observables."""
    program = compile_source(source, name=name)
    fn = python_callable(source, name=program.name)
    py_arrays = {k: list(v) for k, v in (arrays or {}).items()}
    ordered = [py_arrays[p.name] if p.kind == "array" else args[p.name]
               for p in program.params]
    py_result = fn(*ordered)
    run = run_function(program.function, dict(args),
                       initial_memory={k: list(v)
                                       for k, v in (arrays or {}).items()})
    ir_result = tuple(run.live_outs["__ret%d" % i]
                      for i in range(program.n_returns))
    if program.n_returns == 1:
        ir_result = ir_result[0]
    ir_arrays = {k: run.mem_object(k) for k in (arrays or {})}
    return (py_result, py_arrays), (ir_result, ir_arrays)


def _assert_agree(source, args, arrays=None, name=None):
    (py_result, py_arrays), (ir_result, ir_arrays) = _run_both(
        source, args, arrays, name=name)
    assert py_result == ir_result
    assert py_arrays == ir_arrays


class TestCompilation:
    def test_verified_function_with_params_and_liveouts(self):
        program = compile_source(
            'def f(a: int, b: float, xs: "int[8]"):\n'
            '    return a + int(b)\n')
        verify_function(program.function)
        assert program.function.params == ["a", "b", "p__xs"]
        assert program.function.live_outs == ["__ret0"]
        assert [p.name for p in program.scalar_params] == ["a", "b"]
        assert [p.name for p in program.array_params] == ["xs"]
        assert program.n_returns == 1

    def test_second_function_selected_by_name(self):
        source = ("def first(a: int):\n    return a\n"
                  "def second(a: int):\n    return a + 1\n")
        assert compile_source(source).name == "first"
        assert compile_source(source, name="second").name == "second"

    def test_tuple_return_arity(self):
        program = compile_source(
            "def f(a: int):\n"
            "    if a > 0:\n        return a, a * 2\n"
            "    return 0, a\n")
        assert program.n_returns == 2
        assert program.function.live_outs == ["__ret0", "__ret1"]


class TestSemantics:
    def test_floor_division_and_modulo_all_sign_combos(self):
        source = ("def f(a: int, b: int):\n"
                  "    return a // b, a % b\n")
        for a in (-7, -1, 0, 1, 7, 13):
            for b in (-3, -1, 1, 3, 5):
                _assert_agree(source, {"a": a, "b": b})

    def test_negative_index_wraparound(self):
        source = ('def f(i: int, m: "int[8]"):\n'
                  "    m[i] = 99\n"
                  "    return m[i]\n")
        for i in range(-8, 8):
            _assert_agree(source, {"i": i},
                          {"m": [10, 20, 30, 40, 50, 60, 70, 80]})

    def test_for_range_variable_semantics_match_cpython(self):
        # The loop variable keeps its last bound value after the loop,
        # stays unbound... bound to its prior value on an empty range,
        # and body reassignment is overwritten next iteration.
        source = ("def f(n: int):\n"
                  "    i = -1\n"
                  "    total = 0\n"
                  "    for i in range(n):\n"
                  "        total = total + i\n"
                  "        i = 100\n"
                  "    return i, total\n")
        for n in (0, 1, 2, 5):
            _assert_agree(source, {"n": n})

    def test_range_with_step_and_bounds(self):
        source = ("def f(lo: int, hi: int):\n"
                  "    total = 0\n"
                  "    for i in range(lo, hi, -3):\n"
                  "        total = total + i\n"
                  "    return total\n")
        for lo, hi in ((10, -5), (0, 0), (-2, 4), (9, 1)):
            _assert_agree(source, {"lo": lo, "hi": hi})

    def test_while_break_continue(self):
        source = ("def f(n: int):\n"
                  "    total = 0\n"
                  "    i = 0\n"
                  "    while True:\n"
                  "        i = i + 1\n"
                  "        if i > n:\n            break\n"
                  "        if i % 2 == 0:\n            continue\n"
                  "        total = total + i\n"
                  "    return total, i\n")
        for n in (0, 1, 7, 10):
            _assert_agree(source, {"n": n})

    def test_short_circuit_values_and_chained_comparison(self):
        source = ("def f(a: int, b: int):\n"
                  "    x = a or b\n"
                  "    y = a and b\n"
                  "    z = 0 <= a < b\n"
                  "    return x, y, int(z)\n")
        for a in (-2, 0, 3):
            for b in (0, 1, 5):
                _assert_agree(source, {"a": a, "b": b})

    def test_float_intrinsics_are_exact(self):
        source = ("def f(a: int, b: float):\n"
                  "    c = float(a) * b + sqrt(abs(b) + 1.0)\n"
                  "    return int(c), min(c, b), max(c, 0.25)\n")
        rng = random.Random(7)
        for _ in range(50):
            _assert_agree(source, {"a": rng.randint(-40, 40),
                                   "b": rng.randint(-200, 200) / 16.0})

    def test_int_only_float_only_op_flavors(self):
        source = ("def f(a: int, b: int):\n"
                  "    x = (a << 2) ^ (b >> 1) | (a & b)\n"
                  "    y = float(a) / 4.0 - float(b) * 0.5\n"
                  "    return x, y\n")
        for a in (-9, 0, 17):
            for b in (1, 6, 31):
                _assert_agree(source, {"a": a, "b": b})

    def test_both_sides_trap_identically(self):
        program = compile_source("def f(a: int):\n    return 10 // a\n")
        fn = python_callable("def f(a: int):\n    return 10 // a\n")
        with pytest.raises(ZeroDivisionError):
            fn(0)
        with pytest.raises(Exception):
            run_function(program.function, {"a": 0})

    def test_compiled_against_reference_values(self):
        source = ('def dot(n: int, xs: "int[4]", ys: "int[4]"):\n'
                  "    acc = 0\n"
                  "    for i in range(n):\n"
                  "        acc = acc + xs[i] * ys[i]\n"
                  "    return acc\n")
        program = compile_source(source)
        run = run_function(program.function, {"n": 4},
                           initial_memory={"xs": [1, 2, 3, 4],
                                           "ys": [10, 20, 30, 40]})
        assert run.live_outs["__ret0"] == 300
        assert math.isfinite(run.live_outs["__ret0"])


class TestDiagnostics:
    def _error(self, source):
        with pytest.raises(FrontendError) as info:
            compile_source(source)
        return info.value

    def test_syntax_error_position(self):
        error = self._error("def f(a: int):\n    return a +\n")
        assert error.line == 2
        assert "invalid Python" in str(error)

    def test_missing_annotation(self):
        error = self._error("def f(a):\n    return a\n")
        assert "annotation" in error.message
        assert error.line == 1

    def test_unsupported_call_names_the_callee(self):
        error = self._error("def f(a: int):\n    print(a)\n    return a\n")
        assert "print" in error.message
        assert error.line == 2

    def test_undefined_variable(self):
        error = self._error("def f(a: int):\n    return a + ghost\n")
        assert "ghost" in error.message

    def test_reserved_prefix_rejected(self):
        error = self._error("def f(a: int):\n    __t1 = a\n    return a\n")
        assert "reserved" in error.message

    def test_error_renders_file_line_col(self):
        with pytest.raises(FrontendError) as info:
            compile_source("def f(a):\n    return a\n",
                           filename="bad.py")
        assert str(info.value).startswith("bad.py:1:")


class TestPrinterParserRoundTrip:
    def test_frontend_emitted_functions_round_trip(self):
        # Property: for frontend-emitted IR, parse(print(fn)) is
        # observationally identical — same structure fingerprint and
        # same behavior on random inputs.
        rng = random.Random(42)
        for iteration in range(25):
            sketch = random_sketch(rng, depth=2)
            source = sketch_to_python(sketch)
            try:
                program = compile_source(source, name="fuzz_program")
            except FrontendError:
                pytest.fail("generated source must compile:\n" + source)
            printed = format_function(program.function)
            reparsed = parse_function(printed)
            verify_function(reparsed)
            assert format_function(reparsed) == printed
            args = {"in0": rng.randint(-50, 50),
                    "in1": rng.randint(-50, 50)}
            memory = {"m": [rng.randint(-50, 50) for _ in range(32)]}
            original = run_function(
                program.function, dict(args),
                initial_memory={k: list(v) for k, v in memory.items()})
            again = run_function(
                reparsed, dict(args),
                initial_memory={k: list(v) for k, v in memory.items()})
            assert original.live_outs == again.live_outs
            assert original.mem_object("m") == again.mem_object("m")

    def test_float_immediates_round_trip(self):
        program = compile_source(
            "def f(a: float):\n    return a * 0.1 + 2.5e-3\n")
        printed = format_function(program.function)
        assert format_function(parse_function(printed)) == printed


class TestRandomInputs:
    def test_random_inputs_match_declared_shapes(self):
        program = compile_source(
            'def f(a: int, b: float, ok: bool, xs: "float[6]"):\n'
            "    return a\n")
        args, arrays = random_inputs(program, random.Random(3))
        assert set(args) == {"a", "b", "ok"}
        assert isinstance(args["a"], int)
        assert isinstance(args["b"], float)
        assert args["ok"] in (0, 1)
        assert set(arrays) == {"xs"}
        assert len(arrays["xs"]) == 6
        assert all(isinstance(v, float) for v in arrays["xs"])

    def test_random_inputs_deterministic_in_seed(self):
        program = compile_source(
            'def f(a: int, xs: "int[4]"):\n    return a\n')
        first = random_inputs(program, random.Random(9))
        second = random_inputs(program, random.Random(9))
        assert first == second


class TestFrontendFuzz:
    def test_fixed_seed_run_is_clean(self):
        report = run_frontend_fuzz(seed=0, iterations=25)
        assert report.ok, [f.detail for f in report.failures]
        assert report.programs_generated == 25
        assert report.counters.get("agreed") == 25

    def test_rendered_sketches_are_diverse_and_deterministic(self):
        rng = random.Random(11)
        sources = {sketch_to_python(random_sketch(rng, depth=2))
                   for _ in range(10)}
        assert len(sources) > 1
        rng_a, rng_b = random.Random(5), random.Random(5)
        assert (sketch_to_python(random_sketch(rng_a, depth=2))
                == sketch_to_python(random_sketch(rng_b, depth=2)))

    def test_differential_case_flags_real_divergence(self):
        # A deliberately wrong "compiled" program must be caught.
        good = "def f(in0: int, in1: int, m: \"int[32]\"):\n" \
               "    return in0 + in1\n"
        bad = "def f(in0: int, in1: int, m: \"int[32]\"):\n" \
              "    return in0 - in1\n"
        program = compile_source(bad)
        fn = python_callable(good)
        divergence = run_differential_case(
            program, fn,
            {"in0": 3, "in1": 2, "memory": [0] * 32})
        assert divergence is not None
        assert "mismatch" in divergence

    def test_failures_persist_to_corpus(self, tmp_path, monkeypatch):
        # Force a divergence by sabotaging the oracle comparison via a
        # patched evaluator, then check the corpus layout.
        import repro.frontend.fuzz as fuzz_mod
        real = fuzz_mod._evaluate_sketch
        calls = {"n": 0}

        def flaky(sketch, arg_sets):
            calls["n"] += 1
            if calls["n"] == 1:
                return "divergence", "synthetic failure for corpus test"
            return real(sketch, arg_sets)

        monkeypatch.setattr(fuzz_mod, "_evaluate_sketch", flaky)
        report = run_frontend_fuzz(seed=3, iterations=1,
                                   corpus_dir=str(tmp_path))
        assert not report.ok
        names = {path.name for path in tmp_path.iterdir()}
        assert "frontend-report.json" in names
        assert any(name.startswith("frontend-failure-")
                   and name.endswith(".json") for name in names)
        assert any(name.endswith(".py") for name in names)
