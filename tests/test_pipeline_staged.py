"""Equivalence and telemetry tests for the staged pipeline: caching
on/off, warm-cache replay, and multiprocess ``evaluate_matrix`` must all
produce bit-identical Evaluation metrics to plain serial execution."""

import pytest

from repro import evaluate_workload, get_workload
from repro.api import (MatrixCell, Telemetry, build_cells,
                       configure_cache, evaluate_matrix, get_cache)

WORKLOADS = ["ks", "adpcmdec", "mpeg2enc"]
TECHNIQUES = ["gremio", "dswp"]


@pytest.fixture
def cache(tmp_path):
    previous = get_cache()
    active = configure_cache(str(tmp_path / "artifacts"))
    yield active
    configure_cache(previous.directory, previous.enabled)


def metrics(evaluation):
    """The exact-comparison payload of one evaluation."""
    return (
        evaluation.workload.name,
        evaluation.technique,
        evaluation.st_result.cycles,
        evaluation.mt_result.cycles,
        evaluation.speedup,
        evaluation.communication_instructions,
        evaluation.computation_instructions,
        tuple(sorted(evaluation.mt_result.live_outs.items())),
        tuple(sorted(evaluation.st_result.live_outs.items())),
    )


class TestStagedEquivalence:
    def test_cache_on_off_and_warm_are_bit_identical(self, cache):
        for name in WORKLOADS:
            for technique in TECHNIQUES:
                uncached = evaluate_workload(
                    get_workload(name), technique=technique,
                    scale="train", cache=False)
                cold = evaluate_workload(
                    get_workload(name), technique=technique, scale="train")
                warm = evaluate_workload(
                    get_workload(name), technique=technique, scale="train")
                assert metrics(uncached) == metrics(cold) == metrics(warm)
        assert cache.stats.hits > 0

    def test_matrix_parallel_matches_serial(self, cache):
        cells = build_cells(workloads=WORKLOADS, techniques=TECHNIQUES,
                            scale="train")
        assert len(cells) == len(WORKLOADS) * len(TECHNIQUES)
        serial = evaluate_matrix(cells, jobs=1)
        parallel = evaluate_matrix(cells, jobs=2)
        assert ([metrics(ev) for ev in serial]
                == [metrics(ev) for ev in parallel])

    def test_matrix_parallel_cold_matches_uncached(self, cache):
        cells = [MatrixCell("ks", technique, coco, scale="train")
                 for technique in TECHNIQUES for coco in (False, True)]
        parallel = evaluate_matrix(cells, jobs=2)
        baseline = [evaluate_workload(get_workload(cell.workload),
                                      technique=cell.technique,
                                      coco=cell.coco, scale="train",
                                      cache=False)
                    for cell in cells]
        assert ([metrics(ev) for ev in parallel]
                == [metrics(ev) for ev in baseline])

    def test_matrix_preserves_cell_order(self, cache):
        cells = [MatrixCell(name, "gremio", scale="train")
                 for name in WORKLOADS]
        results = evaluate_matrix(cells, jobs=2)
        assert [ev.workload.name for ev in results] == WORKLOADS


class TestTelemetry:
    def test_stage_timings_and_counters(self, cache):
        telemetry = Telemetry()
        evaluate_workload(get_workload("ks"), technique="dswp",
                          scale="train", telemetry=telemetry)
        names = set(telemetry.stages)
        assert {"normalize", "profile", "pdg", "partition", "mtcg",
                "simulate-st", "simulate-mt"} <= names
        assert "coco" not in names  # not requested
        assert telemetry.counters["pdg_nodes"] > 0
        assert telemetry.counters["pdg_edges"] > 0
        assert telemetry.counters["channels_inserted"] > 0
        assert telemetry.counters["st_cycles"] > 0
        assert telemetry.counters["mt_cycles"] > 0
        rendered = telemetry.timings_table()
        assert "simulate-mt" in rendered and "stage" in rendered

    def test_warm_run_records_hits(self, cache):
        evaluate_workload(get_workload("ks"), scale="train")
        telemetry = Telemetry()
        evaluate_workload(get_workload("ks"), scale="train",
                          telemetry=telemetry)
        assert telemetry.cache_hits > 0
        assert telemetry.cache_misses == 0

    def test_coco_stage_recorded_when_enabled(self, cache):
        telemetry = Telemetry()
        evaluate_workload(get_workload("ks"), technique="dswp", coco=True,
                          scale="train", telemetry=telemetry)
        assert "coco" in telemetry.stages
        assert telemetry.counters.get("coco_iterations", 0) >= 1

    def test_evaluation_carries_run_telemetry(self, cache):
        ev = evaluate_workload(get_workload("ks"), scale="train")
        assert ev.telemetry is not None
        assert ev.fingerprints.get("simulate-mt")
        assert ev.parallelization.fingerprints.get("partition")
