"""Property tests pinning the data-flow analyses to their *definitions*,
checked by brute force on randomly generated programs:

* d dominates b  <=>  removing d disconnects b from the entry;
* d postdominates b  <=>  removing d disconnects b from every exit;
* r is live before I  <=>  some def-free path from I reaches a use of r;
* def D reaches I  <=>  some path from D to I has no other def of the
  register.
"""

from typing import Dict, List, Set, Tuple

from hypothesis import HealthCheck, given, settings

from repro.analysis import (dominator_tree, liveness, postdominator_tree,
                            reaching_definitions)
from repro.analysis.dataflow import instruction_uses
from repro.ir import Function

from repro.check.generate import render_program
from repro.check.strategies import program_sketches

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _reachable(function: Function, start: str,
               removed: str = None) -> Set[str]:
    seen: Set[str] = set()
    stack = [start] if start != removed else []
    while stack:
        label = stack.pop()
        if label in seen or label == removed:
            continue
        seen.add(label)
        stack.extend(function.block(label).successors())
    return seen


@given(sketch=program_sketches)
@_SETTINGS
def test_dominators_match_definition(sketch):
    function = render_program(sketch)
    dom = dominator_tree(function)
    entry = function.entry.label
    for d in function.blocks:
        without_d = _reachable(function, entry, removed=d.label)
        for b in function.blocks:
            if b.label == d.label or b.label == entry:
                continue
            should_dominate = b.label not in without_d
            assert dom.dominates(d.label, b.label) == should_dominate, \
                (d.label, b.label)


@given(sketch=program_sketches)
@_SETTINGS
def test_postdominators_match_definition(sketch):
    function = render_program(sketch)
    pdom = postdominator_tree(function)
    exits = set(function.exit_blocks())

    def reaches_exit(start: str, removed: str) -> bool:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            label = stack.pop()
            if label == removed or label in seen:
                continue
            seen.add(label)
            if label in exits:
                return True
            stack.extend(function.block(label).successors())
        return start != removed and start in exits

    for d in function.blocks:
        for b in function.blocks:
            if b.label == d.label or d.label in exits:
                continue
            should_postdominate = not reaches_exit(b.label, d.label)
            got = (pdom.contains(b.label)
                   and pdom.dominates(d.label, b.label))
            assert got == should_postdominate, (d.label, b.label)


def _instruction_graph(function: Function):
    """Instruction-level successor graph: (block, idx) positions."""
    successors: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    for block in function.blocks:
        n = len(block.instructions)
        for index in range(n):
            if index + 1 < n:
                successors[(block.label, index)] = [(block.label,
                                                     index + 1)]
            else:
                successors[(block.label, index)] = [
                    (target, 0) for target in block.successors()]
    return successors


@given(sketch=program_sketches)
@_SETTINGS
def test_liveness_matches_definition(sketch):
    function = render_program(sketch)
    live = liveness(function)
    successors = _instruction_graph(function)
    position_of = {}
    instruction_at = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            position_of[instruction.iid] = (block.label, index)
            instruction_at[(block.label, index)] = instruction

    registers = {register for instruction in function.instructions()
                 for register in (instruction.defined_registers()
                                  + tuple(instruction_uses(instruction,
                                                           function)))}

    def brute_force_live_before(position, register) -> bool:
        # BFS over positions: live iff we hit a use before any def.
        seen = set()
        stack = [position]
        while stack:
            where = stack.pop()
            if where in seen:
                continue
            seen.add(where)
            instruction = instruction_at[where]
            if register in instruction_uses(instruction, function):
                return True
            if register in instruction.defined_registers():
                continue
            stack.extend(successors[where])
        return False

    # Spot-check a deterministic subset (full cross product is O(n^2)).
    sample = sorted(position_of)[::3]
    sample_registers = sorted(registers)[:6]
    for iid in sample:
        for register in sample_registers:
            expected = brute_force_live_before(position_of[iid], register)
            got = register in live.live_in.get(iid, frozenset())
            assert got == expected, (iid, register)


@given(sketch=program_sketches)
@_SETTINGS
def test_reaching_defs_match_definition(sketch):
    function = render_program(sketch)
    reaching = reaching_definitions(function)
    successors = _instruction_graph(function)
    instruction_at = {}
    position_of = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            position_of[instruction.iid] = (block.label, index)
            instruction_at[(block.label, index)] = instruction

    def brute_force_reaches(def_iid: int, register: str,
                            target_iid: int) -> bool:
        # Path from just-after def to just-before target with no redefine.
        start = position_of[def_iid]
        goal = position_of[target_iid]
        seen = set()
        stack = list(successors[start])
        while stack:
            where = stack.pop()
            if where == goal:
                return True
            if where in seen:
                continue
            seen.add(where)
            if register in instruction_at[where].defined_registers():
                continue
            stack.extend(successors[where])
        return False

    defs = [(i.iid, register) for i in function.instructions()
            for register in i.defined_registers()]
    targets = sorted(position_of)[::4]
    for def_iid, register in defs[::3]:
        for target_iid in targets[:5]:
            expected = brute_force_reaches(def_iid, register, target_iid)
            got = def_iid in reaching.definitions_reaching(target_iid,
                                                           register)
            assert got == expected, (def_iid, register, target_iid)
