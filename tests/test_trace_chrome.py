"""Tests for the Chrome Trace Format export: the JSON object format
with per-core tracks, SA occupancy counter tracks, and required keys —
the shape Perfetto/`chrome://tracing` load."""

import json

import pytest

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.trace import (TRACE_SCHEMA_VERSION, TraceCollector,
                         chrome_trace, write_chrome_trace)

from ._pipeline_fixture import build_pipeline_loop


@pytest.fixture(scope="module")
def traced():
    f = build_pipeline_loop()
    args = {"r_n": 80}
    profile = run_function(f, args).profile
    pdg = build_pdg(f)
    p = DSWPPartitioner().partition(f, pdg, profile, 2)
    mt = generate(f, pdg, p, None)
    collector = TraceCollector()
    simulate_program(mt, args, config=DEFAULT_CONFIG.for_dswp(),
                     tracer=collector)
    return collector


@pytest.fixture(scope="module")
def document(traced):
    return chrome_trace(traced)


class TestChromeTrace:
    def test_object_format_top_level(self, document):
        assert isinstance(document, dict)
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"]
        other = document["otherData"]
        assert other["schema"] == TRACE_SCHEMA_VERSION

    def test_complete_events_have_required_keys(self, document, traced):
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(traced.events)
        for event in xs:
            for key in ("name", "ph", "ts", "dur", "pid", "tid", "cat"):
                assert key in event
            assert event["dur"] > 0          # Perfetto drops 0-width
            assert event["ts"] >= 0

    def test_one_named_track_per_core(self, document):
        names = {(e["pid"]): e["args"]["name"]
                 for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        x_pids = {e["pid"] for e in document["traceEvents"]
                  if e["ph"] == "X"}
        assert x_pids  # both cores issued work
        assert x_pids <= set(names)
        for pid in x_pids:
            assert "core" in names[pid]

    def test_sa_counter_track_on_dedicated_pid(self, document):
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert counters, "MT run must emit SA occupancy counters"
        x_pids = {e["pid"] for e in document["traceEvents"]
                  if e["ph"] == "X"}
        counter_pids = {e["pid"] for e in counters}
        # Counters live on their own process, above every core pid.
        assert counter_pids.isdisjoint(x_pids)
        for event in counters:
            assert "depth" in event["args"]
            assert event["args"]["depth"] >= 0

    def test_other_data_counts_match(self, document, traced):
        other = document["otherData"]
        assert other["events_recorded"] == len(traced.events)
        assert other["events_dropped"] == traced.events.dropped
        assert other["total_cycles"] == traced.total_cycles

    def test_write_is_valid_json(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["traceEvents"]

    def test_checker_tool_accepts_the_export(self, traced, tmp_path):
        """The CI trace-smoke validator passes on a real export."""
        import os
        import subprocess
        import sys
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced)
        tool = os.path.join(os.path.dirname(__file__), os.pardir,
                            "tools", "check_trace_smoke.py")
        proc = subprocess.run(
            [sys.executable, tool, str(path), "--expect-counters"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout
