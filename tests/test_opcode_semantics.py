"""Systematic per-opcode semantics tests: the interpreter's arithmetic is
checked against independent Python formulations over randomized operands
(hypothesis), including the C-semantics corners (truncating division,
arithmetic shifts, mixed int/float comparisons)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.interp import TrapError, run_function
from repro.ir import FunctionBuilder

INTS = st.integers(-10**6, 10**6)
SMALL_INTS = st.integers(-60, 60)
FLOATS = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
SHIFTS = st.integers(0, 20)


def _run_binop(op, a, b):
    builder = FunctionBuilder("op", params=["r_a", "r_b"],
                              live_outs=["r_z"])
    builder.label("entry")
    builder.alu(op, "r_z", "r_a", "r_b")
    builder.exit()
    return run_function(builder.build(),
                        {"r_a": a, "r_b": b}).live_outs["r_z"]


def _run_unop(op, a):
    builder = FunctionBuilder("op", params=["r_a"], live_outs=["r_z"])
    builder.label("entry")
    builder.alu(op, "r_z", "r_a")
    builder.exit()
    return run_function(builder.build(), {"r_a": a}).live_outs["r_z"]


class TestIntegerOps:
    @given(a=INTS, b=INTS)
    def test_add_sub_mul(self, a, b):
        assert _run_binop("add", a, b) == a + b
        assert _run_binop("sub", a, b) == a - b
        assert _run_binop("mul", a, b) == a * b

    @given(a=INTS, b=INTS.filter(lambda v: v != 0))
    def test_idiv_truncates_toward_zero(self, a, b):
        assert _run_binop("idiv", a, b) == int(a / b)

    @given(a=INTS, b=INTS.filter(lambda v: v != 0))
    def test_imod_matches_c(self, a, b):
        got = _run_binop("imod", a, b)
        assert got == a - int(a / b) * b
        # C guarantees: (a/b)*b + a%b == a
        assert _run_binop("idiv", a, b) * b + got == a

    @given(a=INTS, b=SHIFTS)
    def test_shifts(self, a, b):
        assert _run_binop("shl", a, b) == a << b
        assert _run_binop("shr", a, b) == a >> b  # arithmetic shift

    @given(a=INTS, b=INTS)
    def test_bitwise(self, a, b):
        assert _run_binop("and", a, b) == (a & b)
        assert _run_binop("or", a, b) == (a | b)
        assert _run_binop("xor", a, b) == (a ^ b)

    @given(a=INTS)
    def test_unaries(self, a):
        assert _run_unop("neg", a) == -a
        assert _run_unop("abs", a) == abs(a)
        assert _run_unop("not", a) == ~a

    @given(a=INTS, b=INTS)
    def test_min_max(self, a, b):
        assert _run_binop("min", a, b) == min(a, b)
        assert _run_binop("max", a, b) == max(a, b)


class TestComparisons:
    @given(a=SMALL_INTS, b=SMALL_INTS)
    def test_all_six(self, a, b):
        assert _run_binop("cmpeq", a, b) == int(a == b)
        assert _run_binop("cmpne", a, b) == int(a != b)
        assert _run_binop("cmplt", a, b) == int(a < b)
        assert _run_binop("cmple", a, b) == int(a <= b)
        assert _run_binop("cmpgt", a, b) == int(a > b)
        assert _run_binop("cmpge", a, b) == int(a >= b)


class TestFloatOps:
    @given(a=FLOATS, b=FLOATS)
    def test_fp_arith(self, a, b):
        assert _run_binop("fadd", a, b) == a + b
        assert _run_binop("fsub", a, b) == a - b
        assert _run_binop("fmul", a, b) == a * b
        assert _run_binop("fmin", a, b) == (a if a <= b else b)
        assert _run_binop("fmax", a, b) == (a if a >= b else b)

    @given(a=FLOATS, b=FLOATS.filter(lambda v: abs(v) > 1e-9))
    def test_fdiv(self, a, b):
        assert _run_binop("fdiv", a, b) == a / b

    @given(a=FLOATS.filter(lambda v: v >= 0))
    def test_fsqrt(self, a):
        assert _run_unop("fsqrt", a) == math.sqrt(a)

    @given(a=FLOATS)
    def test_conversions(self, a):
        assert _run_unop("ftoi", a) == math.trunc(a)

    @given(a=INTS)
    def test_itof(self, a):
        assert _run_unop("itof", a) == float(a)


class TestTraps:
    def test_integer_zero_division(self):
        with pytest.raises(TrapError):
            _run_binop("idiv", 5, 0)
        with pytest.raises(TrapError):
            _run_binop("imod", 5, 0)

    def test_float_zero_division(self):
        with pytest.raises(TrapError):
            _run_binop("fdiv", 5.0, 0.0)
