"""Tests for the branch-predictor models in the timing simulator."""

import dataclasses

from repro.machine import DEFAULT_CONFIG, simulate_single
from repro.machine.timing import CoreTiming, SAPortSchedule
from repro.ir import FunctionBuilder, Instruction, Opcode

from .helpers import build_counted_loop


def _config(mode, **kw):
    return dataclasses.replace(DEFAULT_CONFIG, branch_predictor=mode, **kw)


def _core(config):
    return CoreTiming(0, config, SAPortSchedule(config.sa_ports))


def _branch(iid=1):
    instruction = Instruction(Opcode.BR, srcs=["r_c"],
                              labels=["a", "b"], iid=iid)
    return instruction


class TestBimodalCounter:
    def test_warm_loop_branch_predicts_taken(self):
        core = _core(_config("bimodal"))
        branch = _branch()
        # Initialized weakly-taken: a taken stream never mispredicts.
        penalties = [core.branch_redirect(branch, True) for _ in range(10)]
        assert penalties == [0] * 10
        assert core.mispredictions == 0

    def test_loop_exit_mispredicts_once(self):
        core = _core(_config("bimodal"))
        branch = _branch()
        for _ in range(10):
            core.branch_redirect(branch, True)
        assert core.branch_redirect(branch, False) \
            == DEFAULT_CONFIG.mispredict_penalty
        assert core.mispredictions == 1

    def test_alternating_pattern_hurts(self):
        core = _core(_config("bimodal"))
        branch = _branch()
        outcomes = [True, False] * 20
        penalties = [core.branch_redirect(branch, taken)
                     for taken in outcomes]
        assert sum(1 for p in penalties if p) >= 10

    def test_counters_are_per_branch(self):
        core = _core(_config("bimodal"))
        a, b = _branch(1), _branch(2)
        for _ in range(5):
            core.branch_redirect(a, True)
            core.branch_redirect(b, False)
        # Each branch is biased to its own direction.
        assert core.branch_redirect(a, True) == 0
        assert core.branch_redirect(b, False) == 0


class TestModes:
    def test_perfect_never_penalizes(self):
        core = _core(_config("perfect"))
        branch = _branch()
        assert all(core.branch_redirect(branch, taken) == 0
                   for taken in (True, False, True, False))

    def test_static_charges_taken_only(self):
        core = _core(_config("static"))
        branch = _branch()
        assert core.branch_redirect(branch, True) \
            == DEFAULT_CONFIG.taken_branch_penalty
        assert core.branch_redirect(branch, False) == 0


class TestEndToEnd:
    def test_loop_faster_with_bimodal_than_static(self):
        """A hot counted loop's back edge is taken every iteration: the
        bimodal predictor learns it; the static model pays every time."""
        f = build_counted_loop()
        static = simulate_single(f, {"r_n": 200},
                                 config=_config("static"))
        bimodal = simulate_single(f, {"r_n": 200},
                                  config=_config("bimodal"))
        perfect = simulate_single(f, {"r_n": 200},
                                  config=_config("perfect"))
        assert bimodal.cycles < static.cycles
        assert perfect.cycles <= bimodal.cycles
        assert static.live_outs == bimodal.live_outs == perfect.live_outs

    def test_data_dependent_branches_cost_more_under_bimodal(self):
        """Random outcomes mispredict ~half the time: worse than the flat
        1-cycle static charge."""
        b = FunctionBuilder("noisy", params=["p_a", "r_n"],
                            live_outs=["r_s"])
        b.mem("bits", 256, ptr="p_a")
        b.label("entry")
        b.movi("r_s", 0)
        b.movi("r_i", 0)
        b.jmp("head")
        b.label("head")
        b.cmplt("r_c", "r_i", "r_n")
        b.br("r_c", "body", "done")
        b.label("body")
        b.add("r_p", "p_a", "r_i")
        b.load("r_bit", "r_p")
        b.br("r_bit", "one", "zero")
        b.label("one")
        b.add("r_s", "r_s", 3)
        b.jmp("latch")
        b.label("zero")
        b.add("r_s", "r_s", 1)
        b.jmp("latch")
        b.label("latch")
        b.add("r_i", "r_i", 1)
        b.jmp("head")
        b.label("done")
        b.exit()
        f = b.build()
        import random
        rng = random.Random(7)
        bits = [rng.randrange(2) for _ in range(256)]
        static = simulate_single(f, {"r_n": 200},
                                 initial_memory={"bits": bits},
                                 config=_config("static"))
        bimodal = simulate_single(f, {"r_n": 200},
                                  initial_memory={"bits": bits},
                                  config=_config("bimodal"))
        assert bimodal.cycles > static.cycles
