"""Cluster subsystem tests: rendezvous sharding, membership + health,
per-tenant fair queueing, the pluggable artifact store, and the
end-to-end guarantees of ``repro serve --role coordinator``:

* a cluster of 2 worker nodes answers **byte-identically** to a
  standalone daemon (request keys, metrics, fingerprints — everything
  but wall-clock telemetry);
* SIGKILLing a worker node mid-request fails the request over to
  another node, which completes it with ``stale: false`` and the same
  bytes;
* the HTTP artifact store read-through replicates coordinator blobs
  into fresh local tiers, with visible hit counters.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

import repro
from repro.api import (EvaluateRequest, HttpStore, LocalStore,
                       STORE_URL_ENV, ServiceClient, configure_cache,
                       evaluate, get_cache, make_store)
from repro.cluster import (CoordinatorDaemon, MonitoringChannel,
                           NodeRegistry, TenantFairQueue, WorkerNode,
                           rank_nodes, shard_node)
from repro.cluster.fairqueue import TenantQueueFullError
from repro.cluster.monitor import EventPublisher
from repro.service import RESULT_STAGE, ServiceConfig, ServiceDaemon

#: 4 distinct cells — small enough to keep the e2e test quick, varied
#: enough that rendezvous hashing splits them across both nodes.
CELLS = [
    dict(program={"kind": "registry", "value": "ks"},
         technique="gremio", n_threads=n, scale="train", coco=coco)
    for n in (1, 2) for coco in (False, True)
]


def _canonical(document) -> bytes:
    """A response document minus wall-clock telemetry, as stable bytes.

    Everything else — echoed request, metrics, fingerprints, service
    markers, schema — must be byte-identical between a cluster and a
    standalone daemon."""
    stripped = {k: v for k, v in document.items() if k != "telemetry"}
    return json.dumps(stripped, sort_keys=True).encode("utf-8")


def _request_key(body) -> str:
    return EvaluateRequest.from_dict(dict(body)).request_key()


@pytest.fixture
def clean_env(tmp_path):
    """Isolate the cache + store environment the cluster mutates
    (``WorkerNode`` exports ``REPRO_STORE_URL`` and rebuilds the
    process-wide cache) and restore it afterwards."""
    saved = {name: os.environ.get(name)
             for name in (STORE_URL_ENV, "REPRO_CACHE_DIR")}
    os.environ.pop(STORE_URL_ENV, None)
    previous = configure_cache(str(tmp_path / "baseline-cache"))
    try:
        yield tmp_path
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        configure_cache(previous.directory, previous.enabled)


def _coordinator(tmp_path, **overrides) -> CoordinatorDaemon:
    fields = dict(host="127.0.0.1", port=0, queue_limit=8,
                  request_timeout=120.0, role="coordinator",
                  heartbeat_interval=0.5, quiet=True)
    fields.update(overrides)
    return CoordinatorDaemon(
        ServiceConfig(**fields),
        store_directory=str(tmp_path / "coord-store")).start()


def _wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    assert predicate(), message


class TestRendezvousSharding:
    NODES = ["node-a", "node-b", "node-c"]

    def test_ranking_is_deterministic_and_total(self):
        first = rank_nodes("some-key", self.NODES)
        assert first == rank_nodes("some-key", list(reversed(self.NODES)))
        assert sorted(first) == sorted(self.NODES)
        assert shard_node("some-key", self.NODES) == first[0]

    def test_removal_remaps_only_the_lost_nodes_keys(self):
        keys = ["key-%d" % n for n in range(60)]
        before = {key: shard_node(key, self.NODES) for key in keys}
        survivors = [n for n in self.NODES if n != "node-b"]
        for key in keys:
            after = shard_node(key, survivors)
            if before[key] != "node-b":
                assert after == before[key]  # placement kept -> cache hot

    def test_failover_order_is_the_ranking_without_the_primary(self):
        ranking = rank_nodes("some-key", self.NODES)
        assert rank_nodes("some-key", ranking[1:]) == ranking[1:]

    def test_spreads_keys_across_nodes(self):
        owners = {shard_node("key-%d" % n, self.NODES)
                  for n in range(60)}
        assert owners == set(self.NODES)

    def test_empty_node_set_raises(self):
        with pytest.raises(ValueError):
            shard_node("some-key", [])


class TestNodeRegistry:
    def test_register_heartbeat_and_timeout(self):
        registry = NodeRegistry(heartbeat_timeout=0.05)
        registry.register("w0", "http://127.0.0.1:1/")
        assert registry.healthy() == ["w0"]
        assert registry.url_of("w0") == "http://127.0.0.1:1"
        time.sleep(0.1)
        assert registry.healthy() == []  # silent node sharded around
        assert registry.heartbeat("w0") is True
        assert registry.healthy() == ["w0"]
        assert registry.heartbeat("ghost") is False  # must re-register

    def test_dispatch_failures_mark_unhealthy_until_recovery(self):
        registry = NodeRegistry(heartbeat_timeout=60.0,
                                failure_threshold=3)
        registry.register("w0", "http://127.0.0.1:1")
        for _ in range(3):
            registry.mark_dispatch("w0", ok=False)
        assert registry.healthy() == []
        snapshot = registry.snapshot()["w0"]
        assert snapshot["failed"] == 3 and not snapshot["healthy"]
        # Re-registration (the node restarted) resets health.
        registry.register("w0", "http://127.0.0.1:1")
        assert registry.healthy() == ["w0"]
        registry.mark_dispatch("w0", ok=False)
        registry.mark_dispatch("w0", ok=True)  # success resets the run
        registry.mark_dispatch("w0", ok=False)
        registry.mark_dispatch("w0", ok=False)
        assert registry.healthy() == ["w0"]

    def test_gauge_updates_refresh_heartbeat(self):
        registry = NodeRegistry(heartbeat_timeout=0.05)
        registry.register("w0", "http://127.0.0.1:1")
        time.sleep(0.1)
        assert registry.update_gauges("w0", {"queue": {"depth": 0}})
        assert registry.healthy() == ["w0"]
        assert registry.snapshot()["w0"]["gauges"] == {
            "queue": {"depth": 0}}
        assert registry.update_gauges("ghost", {}) is False


class TestTenantFairQueue:
    def test_grants_immediately_under_capacity(self):
        queue = TenantFairQueue(slots=2, tenant_depth=4)
        first = queue.submit("alice")
        second = queue.submit("bob")
        assert first.wait(0) and second.wait(0)
        assert queue.stats()["in_flight"] == 2

    def test_round_robin_prevents_starvation(self):
        queue = TenantFairQueue(slots=1, tenant_depth=8)
        running = queue.submit("noisy")
        assert running.wait(0)
        backlog = [queue.submit("noisy") for _ in range(3)]
        quiet = queue.submit("quiet")
        # The quiet tenant arrived *after* three noisy waiters, but
        # round-robin serves it second, not fourth.
        queue.release(running)
        assert backlog[0].wait(0) and not quiet.wait(0)
        queue.release(backlog[0])
        assert quiet.wait(0)
        assert not backlog[1].wait(0)
        queue.release(quiet)
        assert backlog[1].wait(0)
        stats = queue.stats()
        assert stats["tenants"]["quiet"]["admitted"] == 1
        assert stats["tenants"]["noisy"]["admitted"] == 3

    def test_sheds_only_the_flooding_tenant(self):
        queue = TenantFairQueue(slots=1, tenant_depth=2)
        running = queue.submit("noisy")
        assert running.wait(0)
        queue.submit("noisy")
        queue.submit("noisy")  # depth now at the per-tenant bound
        with pytest.raises(TenantQueueFullError) as shed:
            queue.submit("noisy")
        assert shed.value.tenant == "noisy"
        other = queue.submit("quiet")  # unaffected by noisy's flood
        assert not other.wait(0)
        stats = queue.stats()
        assert stats["shed_total"] == 1
        assert stats["tenants"]["noisy"]["shed"] == 1
        assert stats["tenants"]["quiet"]["shed"] == 0
        assert queue.depths() == {"noisy": 2, "quiet": 1}

    def test_cancelled_tickets_are_never_granted(self):
        queue = TenantFairQueue(slots=1, tenant_depth=4)
        running = queue.submit("alice")
        abandoned = queue.submit("alice")
        follower = queue.submit("alice")
        queue.cancel(abandoned)
        queue.release(running)
        assert follower.wait(0) and not abandoned.wait(0)


class TestMonitoringChannel:
    def test_publish_and_recent_feed(self):
        channel = MonitoringChannel(buffer=3)
        accepted = channel.publish("w0", [{"kind": "gauges"},
                                          "not-a-dict",
                                          {"kind": "gauges"}])
        assert accepted == 2
        channel.publish("w1", [{"kind": "gauges"}] * 3)
        recent = channel.recent()
        assert len(recent) == 3  # bounded buffer dropped the oldest
        assert {event["node_id"] for event in recent} == {"w1"}
        assert channel.published_total == 5

    def test_event_publisher_counts_failures(self):
        posted = []
        publisher = EventPublisher(
            snapshot_fn=lambda: {"queue": {"depth": 0}},
            post_fn=posted.append, interval=60.0)
        assert publisher.publish_once()
        assert posted[0]["kind"] == "gauges"
        assert posted[0]["gauges"] == {"queue": {"depth": 0}}

        def explode(event):
            raise OSError("coordinator unreachable")

        failing = EventPublisher(snapshot_fn=dict, post_fn=explode,
                                 interval=60.0)
        assert not failing.publish_once()
        assert failing.failures == 1


class TestArtifactStores:
    def test_local_store_layout_and_roundtrip(self, tmp_path):
        store = LocalStore(str(tmp_path))
        key = "ab" + "c" * 62
        assert store.get("profile", key) is None
        store.put("profile", key, b"payload")
        assert store.get("profile", key) == b"payload"
        # The historical on-disk layout, byte-compatible with caches
        # written before the store interface existed.
        expected = tmp_path / "profile" / "ab" / (key + ".pkl")
        assert expected.read_bytes() == b"payload"
        store.delete("profile", key)
        assert store.get("profile", key) is None

    def test_make_store_selects_from_environment(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.delenv(STORE_URL_ENV, raising=False)
        assert make_store(str(tmp_path)).name == "local"
        monkeypatch.setenv(STORE_URL_ENV, "http://127.0.0.1:1/store")
        store = make_store(str(tmp_path))
        assert store.name == "http"
        assert store.directory == str(tmp_path)

    def test_http_store_degrades_without_a_remote(self, tmp_path):
        # Nothing listens on the remote URL: reads degrade to clean
        # misses and writes to local-only caching — never an exception.
        store = HttpStore("http://127.0.0.1:9/store",
                          LocalStore(str(tmp_path)), timeout=0.2)
        store.put("profile", "aa11", b"payload")
        assert (tmp_path / "profile" / "aa" / "aa11.pkl").exists()
        assert store.get("profile", "aa11") == b"payload"
        assert store.get("profile", "ffee") is None
        counters = store.counters()
        assert counters["remote_errors"] == 2  # failed PUT + failed GET
        assert counters["local_hits"] == 1
        assert counters["remote_stores"] == 0

    def test_read_through_replication_via_coordinator(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        try:
            remote = coordinator.address + "/store"
            writer = HttpStore(remote, LocalStore(str(tmp_path / "w")))
            writer.put("profile", "aa11", b"payload")
            assert writer.counters()["remote_stores"] == 1

            # A fresh node with an empty local tier reads through the
            # coordinator and replicates the blob locally.
            reader = HttpStore(remote, LocalStore(str(tmp_path / "r")))
            assert reader.get("profile", "aa11") == b"payload"
            assert (tmp_path / "r" / "profile" / "aa"
                    / "aa11.pkl").exists()
            assert reader.get("profile", "aa11") == b"payload"
            counters = reader.counters()
            assert counters["remote_hits"] == 1
            assert counters["replications"] == 1
            assert counters["local_hits"] == 1  # second read: no network
            assert reader.get("profile", "ffee") is None
            assert reader.counters()["remote_misses"] == 1

            cluster = coordinator.service.counters
            assert cluster["store_puts"] == 1
            assert cluster["store_gets"] == 1
            assert cluster["store_get_misses"] == 1
        finally:
            coordinator.close()


class TestCoordinatorEdges:
    def test_validation_and_empty_cluster_dispositions(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        try:
            client = ServiceClient(coordinator.address)
            assert client.schema()["role"] == "coordinator"
            assert client.health()["status"] == "degraded"  # no nodes

            status, document = client.evaluate_raw(
                {"program": {"kind": "registry",
                             "value": "no-such-workload"}})
            assert status == 400 and document["kind"] == "validation"

            status, document = client.evaluate_raw(CELLS[0])
            assert status == 503 and document["kind"] == "no-nodes"

            counters = client.metrics()["cluster"]["counters"]
            assert counters["validation_errors"] == 1
            assert counters["no_nodes_total"] == 1
        finally:
            coordinator.close()

    def test_dashboard_renders_html(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        try:
            coordinator.service.register_node("w0", "http://127.0.0.1:1")
            with urllib.request.urlopen(
                    coordinator.address + "/dashboard",
                    timeout=10) as reply:
                assert reply.status == 200
                assert "text/html" in reply.headers["Content-Type"]
                page = reply.read().decode("utf-8")
            assert "w0" in page and "repro cluster" in page
        finally:
            coordinator.close()


class TestClusterEndToEnd:
    def test_two_worker_cluster_matches_standalone_byte_for_byte(
            self, clean_env):
        tmp_path = clean_env

        # Phase 1: the standalone baseline, isolated local cache.
        standalone = ServiceDaemon(ServiceConfig(
            host="127.0.0.1", port=0, workers=0, queue_limit=32,
            request_timeout=120.0, quiet=True)).start()
        try:
            client = ServiceClient(standalone.address)
            baseline = [client.evaluate_raw(cell) for cell in CELLS]
        finally:
            standalone.close()
        assert [status for status, _ in baseline] == [200] * len(CELLS)

        # Phase 2: coordinator + 2 in-process worker nodes, sharing a
        # remote store served by the coordinator.
        coordinator = _coordinator(tmp_path, tenant_limit=4)
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path / "cluster-cache")
        nodes = []
        try:
            for node_id in ("w0", "w1"):
                nodes.append(WorkerNode(ServiceConfig(
                    host="127.0.0.1", port=0, workers=0, queue_limit=32,
                    request_timeout=120.0, role="worker",
                    coordinator_url=coordinator.address,
                    node_id=node_id, heartbeat_interval=0.5,
                    quiet=True)).start())
            registry = coordinator.service.registry
            _wait_until(lambda: registry.healthy() == ["w0", "w1"],
                        30.0, "worker nodes never registered")

            cluster = ServiceClient(coordinator.address, tenant="alice")
            clustered = [cluster.evaluate_raw(cell) for cell in CELLS]
            assert [status for status, _ in clustered] \
                == [200] * len(CELLS)

            # Determinism: a cluster of N workers answers exactly what
            # one standalone daemon answers — same request keys, same
            # metrics, same fingerprints, stale: false everywhere.
            for cell, (_, base), (_, document) in zip(CELLS, baseline,
                                                      clustered):
                assert _canonical(document) == _canonical(base)
                assert document["stale"] is False
                assert document["memoized"] is False
                key = _request_key(document["request"])
                assert key == _request_key(base["request"])
                assert key == _request_key(cell)

            # Routing matches the rendezvous prediction exactly.
            expected = {}
            for cell in CELLS:
                owner = shard_node(_request_key(cell), ["w0", "w1"])
                expected[owner] = expected.get(owner, 0) + 1
            document = cluster.metrics()["cluster"]
            assert document["shard_distribution"] == expected
            counters = document["counters"]
            assert counters["requests_total"] == len(CELLS)
            assert counters["routed_total"] == len(CELLS)
            assert counters["failovers_total"] == 0
            assert counters["store_puts"] > 0  # workers push artifacts
            assert counters["events_received"] >= 2
            assert document["recent_events"]
            admission = document["admission"]
            assert admission["tenants"]["alice"]["admitted"] \
                == len(CELLS)
            assert admission["tenants"]["alice"]["shed"] == 0

            # A repeat is routed to the same owner and memoized there.
            status, again = cluster.evaluate_raw(CELLS[0])
            assert status == 200 and again["memoized"] is True

            # The worker cache ran over the HTTP store: remote misses
            # on first compute, pushes on every artifact written.
            store_counters = get_cache().store_counters()
            assert store_counters["remote_misses"] > 0
            assert store_counters["remote_stores"] > 0
            node_metrics = ServiceClient(nodes[0].address).metrics()
            assert node_metrics["cache"]["store"] == store_counters

            # Cross-node replication: a brand-new node (empty local
            # tier) finds the memoized service result in the
            # coordinator store and replicates it on first touch.
            fresh = HttpStore(coordinator.address + "/store",
                              LocalStore(str(tmp_path / "fresh")))
            blob = fresh.get(RESULT_STAGE, _request_key(CELLS[0]))
            assert blob is not None
            assert fresh.counters()["remote_hits"] == 1
            assert fresh.counters()["replications"] == 1

            health = cluster.health()
            assert health["status"] == "ok"
            assert health["healthy_nodes"] == 2
        finally:
            for node in nodes:
                node.close()
            coordinator.close()


def _spawn_worker_process(coordinator_url: str, node_id: str,
                          cache_dir, delay: float = 0.0):
    """Launch ``repro serve --role worker`` as a real OS process (the
    failover test must SIGKILL it, which in-process threads cannot
    model)."""
    env = dict(os.environ)
    env.pop(STORE_URL_ENV, None)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    source_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = source_root + os.pathsep + env.get("PYTHONPATH",
                                                           "")
    if delay:
        env["REPRO_SERVE_TEST_DELAY"] = str(delay)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--role", "worker",
         "--coordinator", coordinator_url, "--node-id", node_id,
         "--port", "0", "--workers", "0",
         "--heartbeat-interval", "0.2"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)


class TestClusterFailover:
    def test_sigkill_mid_request_completes_on_another_node(
            self, clean_env):
        tmp_path = clean_env
        body = CELLS[1]
        expected = evaluate(EvaluateRequest.from_dict(dict(body)))

        coordinator = _coordinator(tmp_path, heartbeat_interval=0.2)
        key = _request_key(body)
        victim, survivor = rank_nodes(key, ["fa", "fb"])
        processes = {}
        try:
            # The shard owner sleeps 8s before evaluating (the test
            # seam), guaranteeing the SIGKILL lands mid-request; the
            # failover target evaluates immediately.
            processes[victim] = _spawn_worker_process(
                coordinator.address, victim,
                tmp_path / "victim-cache", delay=8.0)
            processes[survivor] = _spawn_worker_process(
                coordinator.address, survivor,
                tmp_path / "survivor-cache")
            registry = coordinator.service.registry
            _wait_until(
                lambda: registry.healthy() == sorted([victim, survivor]),
                60.0, "worker node processes never registered")

            results = {}

            def post():
                client = ServiceClient(coordinator.address,
                                       timeout=120.0)
                results["answer"] = client.evaluate_raw(dict(body))

            poster = threading.Thread(target=post)
            poster.start()
            time.sleep(1.5)  # the victim is asleep inside the request
            processes[victim].send_signal(signal.SIGKILL)
            processes[victim].wait(10)
            poster.join(120.0)
            assert "answer" in results, "request never completed"

            status, document = results["answer"]
            assert status == 200
            # The survivor computed the result live: not a stale
            # degradation, and byte-for-byte the single-node answer.
            assert document["stale"] is False
            assert _request_key(document["request"]) == key
            assert document["metrics"] == expected.metrics
            assert document["fingerprints"] == expected.fingerprints

            counters = coordinator.service.counters
            assert counters["failovers_total"] >= 1
            assert counters["routed_total"] == 1
            assert registry.snapshot()[victim]["failed"] >= 1
            _wait_until(lambda: registry.healthy() == [survivor],
                        10.0, "dead node never left the healthy set")
        finally:
            for process in processes.values():
                if process.poll() is None:
                    process.kill()
                    process.wait(10)
            coordinator.close()
