"""Tests for loop outlining (region extraction)."""

import pytest

from repro.interp import run_function
from repro.ir import FunctionBuilder
from repro.ir.outline import (EXIT_ID_REGISTER, OutlineError, extract_loop,
                              outline_hottest_loop)
from repro.machine import run_mt_program
from repro.api import parallelize

from .helpers import (build_counted_loop, build_memory_loop,
                      build_nested_loops, build_paper_figure4)


class TestInterface:
    def test_counted_loop_interface(self):
        extracted = extract_loop(build_counted_loop(), "header")
        f = extracted.function
        assert set(extracted.live_ins) == {"r_s", "r_i", "r_n"}
        assert f.live_outs == ["r_s"]  # only r_s is live at 'done'
        assert extracted.exit_register is None  # single exit target

    def test_memory_loop_shares_objects(self):
        extracted = extract_loop(build_memory_loop(), "header")
        f = extracted.function
        assert "arr_in" in f.mem_objects
        assert "p_in" in f.params
        assert "p_out" in f.params

    def test_unknown_header_rejected(self):
        with pytest.raises(OutlineError):
            extract_loop(build_counted_loop(), "done")

    def test_loopless_function_rejected(self):
        from .helpers import build_diamond
        f = build_diamond()
        from repro.interp import static_profile
        with pytest.raises(OutlineError):
            outline_hottest_loop(f, static_profile(f))


class TestSemantics:
    def test_counted_loop_behaviour(self):
        extracted = extract_loop(build_counted_loop(), "header")
        result = run_function(extracted.function,
                              {"r_s": 0, "r_i": 0, "r_n": 12})
        assert result.live_outs == {"r_s": sum(range(12))}

    def test_resumes_midway(self):
        """Outlined loops take the carried state as parameters — starting
        from i=5 computes the tail of the sum."""
        extracted = extract_loop(build_counted_loop(), "header")
        result = run_function(extracted.function,
                              {"r_s": 100, "r_i": 5, "r_n": 10})
        assert result.live_outs == {"r_s": 100 + sum(range(5, 10))}

    def test_memory_loop_effect(self):
        extracted = extract_loop(build_memory_loop(), "header")
        data = list(range(9))
        result = run_function(extracted.function, {"r_i": 0, "r_n": 9},
                              initial_memory={"arr_in": data})
        assert result.mem_object("arr_out")[:9] == [2 * v for v in data]

    def test_nested_loop_outlines_whole_nest(self):
        extracted = extract_loop(build_nested_loops(), "outer")
        assert extracted.function.has_block("inner")
        result = run_function(extracted.function,
                              {"r_s": 0, "r_i": 0, "r_n": 3, "r_m": 4})
        expected = sum(i * j for i in range(3) for j in range(4))
        assert result.live_outs["r_s"] == expected

    def test_hottest_loop_selection(self):
        f = build_paper_figure4()
        profile = run_function(f, {"r_n": 50, "r_m": 3}).profile
        extracted = outline_hottest_loop(f, profile)
        assert extracted.header == "B2"  # loop 1 runs 50 iterations


class TestMultiExit:
    def _two_exit_loop(self):
        b = FunctionBuilder("twoexit", params=["r_n", "r_lim"],
                            live_outs=["r_s", "r_i"])
        b.label("entry")
        b.movi("r_s", 0)
        b.movi("r_i", 0)
        b.jmp("head")
        b.label("head")
        b.cmplt("r_c", "r_i", "r_n")
        b.br("r_c", "body", "normal_exit")
        b.label("body")
        b.add("r_s", "r_s", "r_i")
        b.cmpgt("r_over", "r_s", "r_lim")
        b.br("r_over", "early_exit", "latch")
        b.label("latch")
        b.add("r_i", "r_i", 1)
        b.jmp("head")
        b.label("normal_exit")
        b.exit()
        b.label("early_exit")
        b.exit()
        return b.build()

    def test_exit_id_register(self):
        f = self._two_exit_loop()
        extracted = extract_loop(f, "head")
        assert extracted.exit_register == EXIT_ID_REGISTER
        assert len(extracted.exit_targets) == 2
        # Early exit taken: high limit not reached vs reached.
        normal = run_function(extracted.function,
                              {"r_s": 0, "r_i": 0, "r_n": 5,
                               "r_lim": 1000})
        early = run_function(extracted.function,
                             {"r_s": 0, "r_i": 0, "r_n": 50, "r_lim": 3})
        assert normal.live_outs[EXIT_ID_REGISTER] != \
            early.live_outs[EXIT_ID_REGISTER]


class TestPipelineIntegration:
    def test_outlined_loop_parallelizes(self):
        """An outlined loop flows through the full MT pipeline."""
        extracted = extract_loop(build_memory_loop(), "header")
        f = extracted.function
        data = list(range(16))
        reference = run_function(
            extracted.function, {"r_i": 0, "r_n": 16},
            initial_memory={"arr_in": data})
        result = parallelize(f, technique="dswp", n_threads=2,
                             profile_args={"r_i": 0, "r_n": 16},
                             profile_memory={"arr_in": data})
        mt = run_mt_program(result.program, {"r_i": 0, "r_n": 16},
                            initial_memory={"arr_in": data})
        assert mt.live_outs == reference.live_outs
        assert mt.memory.snapshot() == reference.memory.snapshot()
