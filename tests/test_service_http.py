"""End-to-end loopback test of ``repro serve``: boot the daemon on an
ephemeral port, fire concurrent evaluation requests over real HTTP, and
check the responses against an in-process ``evaluate_workload`` run."""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (API_SCHEMA_VERSION, configure_cache,
                       evaluate_workload, get_cache)
from repro.service import ServiceConfig, ServiceDaemon
from repro.workloads import get_workload

#: 8 distinct cells — the daemon must sustain these concurrently.
CELLS = [
    dict(program={"kind": "registry", "value": "ks"},
         technique="gremio", n_threads=n, scale="train", coco=coco)
    for n in (1, 2, 3, 4) for coco in (False, True)
]


@pytest.fixture
def isolated_cache(tmp_path):
    previous = configure_cache(str(tmp_path / "artifacts"))
    try:
        yield get_cache()
    finally:
        configure_cache(previous.directory, previous.enabled)


@pytest.fixture
def daemon(isolated_cache):
    log = io.StringIO()
    instance = ServiceDaemon(ServiceConfig(
        host="127.0.0.1", port=0, workers=2, queue_limit=32,
        request_timeout=60.0, log_stream=log))
    instance.start()
    try:
        yield instance
    finally:
        instance.close()


def _get(daemon, path):
    with urllib.request.urlopen(daemon.address + path, timeout=30) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


def _post(daemon, body, timeout=90):
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        daemon.address + "/v1/evaluate", data=data,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestServeEndToEnd:
    def test_concurrent_evaluations_match_in_process(self, daemon):
        responses = [None] * len(CELLS)

        def post(index):
            responses[index] = _post(daemon, CELLS[index])

        threads = [threading.Thread(target=post, args=(index,))
                   for index in range(len(CELLS))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120.0)

        assert all(response is not None for response in responses)
        assert [status for status, _ in responses] == [200] * len(CELLS)
        for cell, (_, document) in zip(CELLS, responses):
            assert document["schema_version"] == API_SCHEMA_VERSION
            assert (document["request"]["workload"]
                    == cell["program"]["value"])
            assert document["request"]["n_threads"] == cell["n_threads"]
            assert document["metrics"]["speedup"] > 0.0
            assert not document["stale"]

        # The daemon's answer equals running the pipeline in-process.
        direct = evaluate_workload(get_workload("ks"), technique="gremio",
                                   n_threads=2, scale="train")
        served = next(document for cell, (_, document)
                      in zip(CELLS, responses)
                      if cell["n_threads"] == 2 and not cell["coco"])
        assert served["metrics"]["speedup"] == pytest.approx(direct.speedup)

        # A repeat of any cell is memoized, not re-evaluated.
        status, again = _post(daemon, CELLS[0])
        assert status == 200 and again["memoized"] is True

        # Observability: non-zero counters, latency histograms, gauges.
        status, health = _get(daemon, "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["workers"] >= 1
        status, metrics = _get(daemon, "/metrics")
        assert status == 200
        counters = metrics["counters"]
        assert counters["requests_total"] >= len(CELLS) + 1
        assert counters["responses_ok"] >= len(CELLS) + 1
        assert counters["evaluations_completed"] >= len(CELLS)
        assert counters["memo_hits"] >= 1
        assert metrics["request_latency"]["count"] >= len(CELLS)
        assert metrics["queue"]["limit"] == 32
        assert metrics["stages"], "per-stage telemetry missing"
        for record in metrics["stages"].values():
            assert record["runs"] + record["cache_hits"] >= 0

    def test_error_paths_over_http(self, daemon):
        status, document = _post(daemon, {
            "program": {"kind": "registry", "value": "no-such-workload"}})
        assert status == 400 and document["kind"] == "validation"

        # The removed PR-9 wire shim: workload=-only bodies are 400 now.
        status, document = _post(daemon, {"workload": "ks"})
        assert status == 400 and document["kind"] == "validation"

        status, document = _post(daemon, {
            "program": {"kind": "registry", "value": "ks"}, "threds": 4})
        assert status == 400 and "threds" in document["error"]

        status, document = _get(daemon, "/v1/schema")
        assert status == 200
        assert document["schema"] == API_SCHEMA_VERSION

        request = urllib.request.Request(
            daemon.address + "/nowhere", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=10) as reply:
                status = reply.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 404

    def test_structured_request_log(self, daemon):
        _post(daemon, CELLS[0])
        # The log line lands just after the response body is flushed;
        # give the handler thread a beat.
        requests = []
        deadline = time.time() + 5.0
        while not requests and time.time() < deadline:
            lines = [json.loads(line) for line
                     in daemon.config.log_stream.getvalue().splitlines()]
            requests = [line for line in lines
                        if line.get("event") == "request"]
            if not requests:
                time.sleep(0.05)
        assert requests, "no structured request log emitted"
        record = requests[-1]
        assert record["method"] == "POST"
        assert record["path"] == "/v1/evaluate"
        assert record["status"] == 200
        assert record["request_key"]
        assert "queue_depth" in record and "in_flight" in record
