"""Tests for the queue-allocation pass (physical queue sharing)."""

import pytest

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.ir import FunctionBuilder
from repro.machine import run_mt_program
from repro.mtcg import (QueueAllocationError, allocate_queues,
                        build_data_channels, generate)
from repro.mtcg.channels import CommChannel, Point
from repro.analysis.pdg import DepKind
from repro.partition import partition_from_threads

from .helpers import build_paper_figure4
from .mt_utils import round_robin_partition


def _figure4_partition(f):
    block_of = f.block_of()
    loop1 = {b for b in block_of.values() if b in ("B1", "B2")}
    t0 = [i.iid for i in f.instructions() if block_of[i.iid] in loop1]
    t1 = [i.iid for i in f.instructions() if block_of[i.iid] not in loop1]
    return partition_from_threads(f, 2, [t0, t1])


class TestSharingRule:
    def _channels(self, f):
        pdg = build_pdg(f)
        partition = _figure4_partition(f)
        return build_data_channels(f, pdg, partition), partition

    def test_sequential_same_pair_can_share(self):
        """Two same-direction channels in strictly-ordered phases share a
        queue: pushes are producer-program-ordered, pops consumer-ordered,
        so the FIFO pairs them correctly."""
        f = build_paper_figure4()
        c1 = CommChannel(DepKind.REGISTER, 0, 1, "r1",
                         [Point("B2", 3)], [])
        c2 = CommChannel(DepKind.REGISTER, 0, 1, "r_i",
                         [Point("B5", 0)], [])
        allocation = allocate_queues([c1, c2], f)
        assert allocation.n_physical == 1
        assert c1.queue == c2.queue

    def test_reversed_direction_cannot_share(self):
        """T0->T1 (early) with T1->T0 (late) must NOT share: the late
        channel's consumer (T0) can race ahead of the early channel's
        consumer (T1) and steal its pending value from the shared FIFO —
        an observed deadlock (see module docstring)."""
        f = build_paper_figure4()
        c1 = CommChannel(DepKind.REGISTER, 0, 1, "r1",
                         [Point("B2", 3)], [])
        c2 = CommChannel(DepKind.REGISTER, 1, 0, "r2",
                         [Point("B5", 0)], [])
        allocation = allocate_queues([c1, c2], f)
        assert allocation.n_physical == 2

    def test_same_loop_cannot_share(self):
        f = build_paper_figure4()
        c1 = CommChannel(DepKind.REGISTER, 0, 1, "r1",
                         [Point("B2", 1)], [])
        c2 = CommChannel(DepKind.REGISTER, 1, 0, "r_i",
                         [Point("B2", 3)], [])
        allocation = allocate_queues([c1, c2], f)
        assert allocation.n_physical == 2

    def test_capacity_check(self):
        f = build_paper_figure4()
        channels = [CommChannel(DepKind.REGISTER, 0, 1, "r1",
                                [Point("B2", 1)], [])
                    for _ in range(5)]
        with pytest.raises(QueueAllocationError):
            allocate_queues(channels, f, max_queues=3)

    def test_disable_sharing_gives_dense_ids(self):
        f = build_paper_figure4()
        channels = [CommChannel(DepKind.REGISTER, 0, 1, "r1",
                                [Point("B2", 1)], []),
                    CommChannel(DepKind.REGISTER, 1, 0, "r2",
                                [Point("B5", 0)], [])]
        allocation = allocate_queues(channels, f, allow_sharing=False)
        assert allocation.n_physical == 2
        assert [c.queue for c in channels] == [0, 1]


class TestEndToEnd:
    def _two_phase_function(self):
        """Phase 1 sends values T0->T1; phase 2 sends a result T1->T0 —
        the canonical sharable pattern."""
        b = FunctionBuilder("two_phase", params=["r_n"],
                            live_outs=["r_out"])
        b.label("entry")
        b.movi("r_acc", 0)
        b.movi("r_i", 0)
        b.jmp("l1")
        b.label("l1")
        b.cmplt("r_c", "r_i", "r_n")
        b.br("r_c", "l1b", "mid")
        b.label("l1b")
        b.mul("r_v", "r_i", 3)          # T0 work
        b.add("r_acc", "r_acc", "r_v")  # T1 work (consumes r_v)
        b.add("r_i", "r_i", 1)
        b.jmp("l1")
        b.label("mid")
        b.mul("r_out", "r_acc", 2)      # T0 again (consumes r_acc)
        b.exit()
        return b.build()

    def test_shared_allocation_preserves_semantics(self):
        f = self._two_phase_function()
        pdg = build_pdg(f)
        from repro.ir import Opcode
        t1 = [i.iid for i in f.instructions()
              if i.dest == "r_acc" and i.op is not Opcode.MOVI]
        t0 = [i.iid for i in f.instructions() if i.iid not in t1]
        partition = partition_from_threads(f, 2, [t0, t1])

        dense = generate(f, pdg, partition, queue_allocation="dense")
        shared = generate(f, pdg, partition, queue_allocation="shared")
        st = run_function(f, {"r_n": 12})
        dense_run = run_mt_program(dense, {"r_n": 12})
        shared_run = run_mt_program(shared, {"r_n": 12})
        assert dense_run.live_outs == st.live_outs
        assert shared_run.live_outs == st.live_outs

    @pytest.mark.parametrize("factory_args", [
        ({"r_n": 10, "r_m": 4}),
    ])
    def test_figure4_shared_queues_equivalent(self, factory_args):
        f = build_paper_figure4()
        pdg = build_pdg(f)
        partition = round_robin_partition(f, 2)
        shared = generate(f, pdg, partition, queue_allocation="shared")
        st = run_function(f, factory_args)
        mt = run_mt_program(shared, factory_args, queue_capacity=1)
        assert mt.live_outs == st.live_outs

    def test_workload_queue_pressure_reported(self):
        """On a real workload the allocator reduces (or preserves) the
        physical queue count and stays within the 256-queue machine."""
        from repro.workloads import get_workload
        from repro.api import normalize
        from repro.partition.dswp import DSWPPartitioner
        from repro.machine import DEFAULT_CONFIG
        workload = get_workload("ks")
        f = normalize(workload.build())
        train = workload.make_inputs("train")
        profile = run_function(f, train.args, train.memory).profile
        pdg = build_pdg(f)
        partition = DSWPPartitioner(DEFAULT_CONFIG).partition(
            f, pdg, profile, 2)
        from repro.mtcg import (build_data_channels, compute_relevance,
                                control_channels)
        data = build_data_channels(f, pdg, partition)
        relevance = compute_relevance(f, pdg, partition, data)
        channels = data + control_channels(f, partition, relevance)
        allocation = allocate_queues(channels, f)
        assert allocation.n_physical <= allocation.n_channels <= 256
        # The generated program still runs correctly with the shared ids.
        program = generate(f, pdg, partition, queue_allocation="shared")
        ref = workload.make_inputs("train")
        st = run_function(f, ref.args, ref.memory)
        mt = run_mt_program(program, ref.args, ref.memory)
        assert mt.live_outs == st.live_outs
        assert mt.memory.snapshot() == st.memory.snapshot()
