"""End-to-end tests for the tracing surface: the ``repro trace`` CLI
(the acceptance command, including the ``adpcm`` family alias), the
``trace=True`` opt-in on the API facade, and the bit-identical
guarantee — enabling tracing must not move a single simulated cycle."""

import json

import pytest

from repro.api import (EvaluateRequest, EvaluateResult, ProgramSpec,
                       configure_cache, evaluate, evaluate_workload,
                       get_cache, get_workload)
from repro.cli import main
from repro.trace import STALL_CATEGORIES


@pytest.fixture()
def isolated_cache(tmp_path):
    previous = get_cache()
    configure_cache(str(tmp_path / "cache"), True)
    try:
        yield
    finally:
        configure_cache(previous.directory, previous.enabled)


class TestTraceCLI:
    def test_acceptance_command(self, isolated_cache, tmp_path, capsys):
        """python -m repro trace adpcm --partitioner gremio
        --out trace.json --report produces a loadable trace and the
        stall/critical-path report."""
        out = tmp_path / "trace.json"
        assert main(["trace", "adpcm", "--partitioner", "gremio",
                     "--scale", "train", "--out", str(out),
                     "--report"]) == 0
        printed = capsys.readouterr().out
        assert "critical path:" in printed
        assert "top stall:" in printed
        assert "Stall attribution" in printed or "stall" in printed
        with open(out) as handle:
            document = json.load(handle)
        assert document["traceEvents"]
        phases = {event["ph"] for event in document["traceEvents"]}
        assert {"X", "M"} <= phases

    def test_dswp_with_json_report(self, isolated_cache, tmp_path,
                                   capsys):
        out = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        assert main(["trace", "adpcm", "--partitioner", "dswp",
                     "--scale", "train", "--out", str(out),
                     "--report-json", str(report)]) == 0
        with open(report) as handle:
            document = json.load(handle)
        assert document["schema"] == "repro.trace/v1"
        assert document["top_stall_reason"] in STALL_CATEGORIES
        assert document["critical_path_cycles"] <= document["total_cycles"]
        # Per-core rows reconcile in the persisted report too.
        for row in document["cores"].values():
            attributed = row["execute"] + sum(row[c]
                                              for c in STALL_CATEGORIES)
            assert attributed == pytest.approx(row["finish"])

    def test_alias_resolves_to_registered_kernel(self):
        assert get_workload("adpcm").name == "adpcmdec"

    def test_ring_limit_flag(self, isolated_cache, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "ks", "--scale", "train", "--out",
                     str(out), "--limit", "128"]) == 0
        with open(out) as handle:
            document = json.load(handle)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 128
        assert document["otherData"]["events_dropped"] > 0


class TestTracingIsBitIdentical:
    def test_cycles_match_untraced_run(self, isolated_cache):
        """Acceptance criterion: with tracing enabled, simulated cycle
        counts are bit-identical to the untraced pipeline."""
        baseline = evaluate_workload(get_workload("ks"), technique="dswp",
                                     scale="train")
        configure_cache(None, False)  # no artifact reuse between runs
        traced = evaluate_workload(get_workload("ks"), technique="dswp",
                                   scale="train", trace=True)
        base_metrics = baseline.metrics()
        traced_metrics = traced.metrics()
        assert traced_metrics["mt_cycles"] == base_metrics["mt_cycles"]
        assert traced_metrics["st_cycles"] == base_metrics["st_cycles"]
        assert traced_metrics["speedup"] == base_metrics["speedup"]
        assert traced.trace is not None
        assert baseline.trace is None
        assert (traced.trace.total_cycles
                == base_metrics["mt_cycles"])

    def test_trace_metrics_surface(self, isolated_cache):
        ev = evaluate_workload(get_workload("ks"), technique="dswp", scale="train",
                               trace=True)
        metrics = ev.metrics()
        assert metrics["critical_path_cycles"] > 0
        assert metrics["critical_path_instructions"] >= 1
        # Satellite: cache hit/miss counters surface in metrics().
        assert any(key.startswith("cache_") for key in metrics)


class TestApiFacadeTrace:
    def test_request_roundtrip_and_key(self):
        request = EvaluateRequest(program=ProgramSpec.registry("ks"), technique="dswp",
                                  trace=True)
        clone = EvaluateRequest.from_dict(request.as_dict())
        assert clone.trace is True
        untraced = EvaluateRequest(program=ProgramSpec.registry("ks"), technique="dswp")
        assert request.request_key() != untraced.request_key()

    def test_trace_flag_must_be_bool(self):
        with pytest.raises((TypeError, ValueError)):
            EvaluateRequest(program=ProgramSpec.registry("ks"), trace="yes").validate()

    def test_evaluate_carries_summary(self, isolated_cache):
        result = evaluate(EvaluateRequest(program=ProgramSpec.registry("ks"),
                                          technique="dswp",
                                          scale="train", trace=True))
        assert result.trace is not None
        assert result.trace["schema"] == "repro.trace/v1"
        assert result.trace["top_stall_reason"] in STALL_CATEGORIES
        assert result.trace["critical_path_cycles"] > 0
        # And survives the wire format.
        clone = EvaluateResult.from_dict(result.as_dict())
        assert clone.trace == result.trace

    def test_untraced_result_has_no_summary(self, isolated_cache):
        result = evaluate(EvaluateRequest(program=ProgramSpec.registry("ks"),
                                          technique="dswp",
                                          scale="train"))
        assert result.trace is None
