"""Unit tests for the IR: builder, CFG structure, verifier, printing."""

import pytest

from repro.ir import (BuildError, FunctionBuilder, Opcode,
                      VerificationError, format_function, parse_function,
                      verify_function)

from .helpers import (build_counted_loop, build_diamond, build_memory_loop,
                      build_nested_loops, build_paper_figure3,
                      build_straightline)


class TestBuilder:
    def test_straightline_structure(self):
        f = build_straightline()
        assert [b.label for b in f.blocks] == ["entry"]
        assert f.instruction_count() == 4
        assert f.entry.terminator.op is Opcode.EXIT

    def test_iids_are_unique_and_ordered(self):
        f = build_nested_loops()
        iids = [i.iid for i in f.instructions()]
        assert iids == sorted(iids)
        assert len(set(iids)) == len(iids)

    def test_unterminated_block_rejected(self):
        b = FunctionBuilder("bad")
        b.label("entry")
        b.movi("r_x", 1)
        with pytest.raises(BuildError):
            b.label("next")

    def test_emit_after_terminator_rejected(self):
        b = FunctionBuilder("bad")
        b.label("entry")
        b.exit()
        with pytest.raises(BuildError):
            b.movi("r_x", 1)

    def test_immediate_operand_folds_into_instruction(self):
        b = FunctionBuilder("imm")
        b.label("entry")
        ins = b.add("r_x", "r_a", 5)
        b.exit()
        assert ins.srcs == ("r_a",)
        assert ins.imm == 5

    def test_duplicate_label_rejected(self):
        b = FunctionBuilder("dup")
        b.label("entry")
        b.exit()
        with pytest.raises(ValueError):
            b.label("entry")

    def test_mem_declares_pointer_param(self):
        f = build_memory_loop()
        assert f.pointer_params["p_in"] == "arr_in"
        assert f.mem_objects["arr_in"].size == 64


class TestCfg:
    def test_successors_of_branch(self):
        f = build_diamond()
        assert f.successors("entry") == ("then", "else_")
        assert f.successors("then") == ("join",)
        assert f.successors("join") == ()

    def test_predecessors_map(self):
        f = build_diamond()
        preds = f.predecessors_map()
        assert sorted(preds["join"]) == ["else_", "then"]
        assert preds["entry"] == []

    def test_loop_has_back_edge(self):
        f = build_counted_loop()
        assert "header" in f.successors("body")

    def test_exit_blocks(self):
        f = build_counted_loop()
        assert f.exit_blocks() == ["done"]

    def test_memory_layout_is_disjoint(self):
        f = build_memory_loop()
        total = f.layout_memory()
        a = f.mem_objects["arr_in"]
        b = f.mem_objects["arr_out"]
        assert a.base + a.size <= b.base or b.base + b.size <= a.base
        assert total >= a.size + b.size

    def test_block_of_and_position_of(self):
        f = build_diamond()
        block_of = f.block_of()
        pos = f.position_of()
        for block in f.blocks:
            for idx, ins in enumerate(block):
                assert block_of[ins.iid] == block.label
                assert pos[ins.iid][1] == idx


class TestVerifier:
    def test_accepts_all_fixtures(self):
        for f in (build_straightline(), build_diamond(),
                  build_counted_loop(), build_nested_loops(),
                  build_memory_loop(), build_paper_figure3()):
            verify_function(f)

    def test_rejects_branch_to_unknown_label(self):
        b = FunctionBuilder("bad")
        b.label("entry")
        b.movi("r_c", 1)
        b.br("r_c", "nowhere", "entry")
        with pytest.raises((VerificationError, BuildError)):
            b.build()

    def test_rejects_use_before_def(self):
        b = FunctionBuilder("bad")
        b.label("entry")
        b.add("r_x", "r_never_defined", 1)
        b.exit()
        with pytest.raises(VerificationError):
            b.build()

    def test_rejects_missing_exit(self):
        b = FunctionBuilder("noexit")
        b.label("entry")
        b.jmp("entry")
        with pytest.raises(VerificationError):
            b.build()

    def test_communication_requires_allow_flag(self):
        b = FunctionBuilder("comm")
        b.label("entry")
        b.produce(0, "r_x")  # r_x undefined too, so skip def-use check
        b.exit()
        with pytest.raises(VerificationError):
            b.build()


class TestPrinterParser:
    @pytest.mark.parametrize("factory", [
        build_straightline, build_diamond, build_counted_loop,
        build_nested_loops, build_memory_loop, build_paper_figure3,
    ])
    def test_round_trip(self, factory):
        f = factory()
        text = format_function(f)
        g = parse_function(text)
        assert format_function(g) == text
        assert [b.label for b in g.blocks] == [b.label for b in f.blocks]
        assert g.instruction_count() == f.instruction_count()
        for a, b in zip(f.instructions(), g.instructions()):
            assert a == b

    def test_parse_rejects_unknown_opcode(self):
        text = "func f() {\nentry:\n    frobnicate r_x\n    exit\n}"
        from repro.ir import ParseError
        with pytest.raises(ParseError):
            parse_function(text)

    def test_printer_shows_liveouts_and_mem(self):
        f = build_memory_loop()
        text = format_function(f)
        assert "mem arr_in[64] ptr(p_in)" in text
        assert text.startswith("func memory_loop(")
