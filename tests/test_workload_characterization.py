"""Characterization tests: each benchmark kernel has the structural
signature of the function it reproduces (loop shape, instruction mix,
branchiness).  These pin the *nature* of each workload so future edits
cannot quietly turn, say, the FP-heavy gromacs kernel into integer code.
"""

from collections import Counter

from repro.analysis import loop_nest_forest
from repro.interp import run_function
from repro.ir import OpKind
from repro.stats import overhead_breakdown
from repro.workloads import get_workload


def _dynamic_mix(name):
    workload = get_workload(name)
    inputs = workload.make_inputs("ref")
    result = run_function(workload.build(), inputs.args, inputs.memory)
    total = result.dynamic_instructions
    by_kind = Counter()
    f = workload.build()
    # Weight static kinds by dynamic opcode counts.
    for opcode, count in result.opcode_counts.items():
        from repro.ir import SIGNATURES
        by_kind[SIGNATURES[opcode].kind] += count
    return {kind: value / total for kind, value in by_kind.items()}, result


class TestLoopShapes:
    def test_adpcm_single_loop(self):
        for name in ("adpcmdec", "adpcmenc"):
            forest = loop_nest_forest(get_workload(name).build())
            assert len(forest.top_level) == 1
            assert forest.top_level[0].children == []

    def test_ks_two_level_search_plus_swap(self):
        forest = loop_nest_forest(get_workload("ks").build())
        headers = sorted(loop.header for loop in forest.top_level)
        assert headers == ["outer", "swap_loop"]
        outer = forest.by_header["outer"]
        assert len(outer.children) == 1  # the inner gain scan

    def test_mpeg2_doubly_nested(self):
        forest = loop_nest_forest(get_workload("mpeg2enc").build())
        assert len(forest.top_level) == 1
        assert len(forest.top_level[0].children) == 1

    def test_mcf_traversal_with_climb_loop(self):
        forest = loop_nest_forest(get_workload("181.mcf").build())
        assert "visit" in forest.by_header
        assert "climb" in forest.by_header
        assert forest.by_header["climb"].depth == 2

    def test_equake_csr_nest(self):
        forest = loop_nest_forest(get_workload("183.equake").build())
        assert len(forest.top_level) == 1
        assert len(forest.top_level[0].children) == 1


class TestInstructionMix:
    def test_fp_kernels_are_fp_heavy(self):
        for name in ("435.gromacs", "188.ammp", "183.equake"):
            mix, _ = _dynamic_mix(name)
            assert mix.get(OpKind.FP, 0) > 0.15, name

    def test_integer_kernels_have_no_fp(self):
        for name in ("adpcmdec", "adpcmenc", "ks", "mpeg2enc",
                     "300.twolf", "458.sjeng", "181.mcf"):
            mix, _ = _dynamic_mix(name)
            assert mix.get(OpKind.FP, 0) == 0, name

    def test_branchy_kernels(self):
        """sjeng and the adpcm coder branch far more than smvp."""
        sjeng, _ = _dynamic_mix("458.sjeng")
        equake, _ = _dynamic_mix("183.equake")
        assert sjeng[OpKind.BRANCH] > equake[OpKind.BRANCH] * 1.5

    def test_memory_intensity(self):
        """mcf's pointer chase is load-dominated."""
        mix, _ = _dynamic_mix("181.mcf")
        assert mix.get(OpKind.LOAD, 0) > 0.2

    def test_reference_inputs_exercise_both_branch_arms(self):
        """adpcm's sign branch must take both directions on ref inputs
        (a degenerate input would hide half the kernel)."""
        workload = get_workload("adpcmenc")
        inputs = workload.make_inputs("ref")
        result = run_function(workload.build(), inputs.args, inputs.memory)
        assert result.profile.block_weight("negdiff") > 10
        assert result.profile.block_weight("posdiff") > 10


class TestOverheadBreakdownHelper:
    def test_single_thread_partition_has_no_overhead(self):
        from repro.machine import run_mt_program
        from repro.partition import single_thread_partition
        from tests.mt_utils import make_mt
        workload = get_workload("mpeg2enc")
        inputs = workload.make_inputs("train")
        f = workload.build()
        mt = make_mt(f, single_thread_partition(f))
        run = run_mt_program(mt, inputs.args, inputs.memory,
                             count_per_instruction=True)
        classes = overhead_breakdown(mt, run)
        assert classes["communication"] == 0.0
        assert classes["replicated_control"] == 0.0
        assert classes["computation"] > 70.0

    def test_split_partition_shows_overheads(self):
        from repro.machine import run_mt_program
        from tests.helpers import build_paper_figure3
        from tests.mt_utils import make_mt, round_robin_partition
        f = build_paper_figure3()
        mt = make_mt(f, round_robin_partition(f, 2))
        run = run_mt_program(mt, {"r_n": 6},
                             {"f3_in": [1, 200, 3, 9, 150, 7]},
                             count_per_instruction=True)
        classes = overhead_breakdown(mt, run)
        assert classes["communication"] > 0
        assert classes["replicated_control"] > 0
        assert abs(sum(classes.values()) - 100.0) < 1e-9

    def test_requires_counting_flag(self):
        import pytest
        from repro.machine import run_mt_program
        from tests.helpers import build_counted_loop
        from tests.mt_utils import make_mt, round_robin_partition
        f = build_counted_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        run = run_mt_program(mt, {"r_n": 5})
        with pytest.raises(ValueError):
            overhead_breakdown(mt, run)
