"""The ``repro.api`` facade: typed requests, schema versioning,
idempotency keys, deprecation shims, and the layering covenant
(cli/bench/service import the pipeline only through the facade)."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
import repro.pipeline
from repro.api import (API_SCHEMA_VERSION, EvaluateRequest, EvaluateResult,
                       ProgramSpec, RequestValidationError,
                       configure_cache, evaluate, evaluate_workload)
from repro.workloads import get_workload


def _request(**overrides):
    fields = dict(program=ProgramSpec.registry("ks"),
                  technique="gremio", n_threads=2, scale="train")
    fields.update(overrides)
    return EvaluateRequest(**fields)


class TestEvaluateRequest:
    def test_round_trips_through_dict(self):
        request = _request(coco=True, alias_mode="provenance")
        again = EvaluateRequest.from_dict(request.as_dict())
        assert again == request
        assert again.schema_version == API_SCHEMA_VERSION

    def test_cell_round_trip(self):
        request = _request(local_schedule="late", mt_check=True)
        assert EvaluateRequest.from_cell(request.cell()) == request

    def test_from_dict_rejects_unknown_fields(self):
        body = _request().as_dict()
        body["threds"] = 4  # typo must 400, not silently default
        with pytest.raises(RequestValidationError, match="threds"):
            EvaluateRequest.from_dict(body)

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(RequestValidationError, match="JSON object"):
            EvaluateRequest.from_dict(["ks"])

    @pytest.mark.parametrize("overrides,fragment", [
        (dict(program=ProgramSpec.registry("no-such-workload")),
         "unknown workload"),
        (dict(technique="magic"), "unknown technique"),
        (dict(n_threads=0), "n_threads"),
        (dict(n_threads=True), "n_threads"),
        (dict(scale="huge"), "unknown scale"),
        (dict(alias_mode="psychic"), "unknown alias_mode"),
        (dict(local_schedule="sometime"), "local_schedule"),
        (dict(schema_version="repro.api/v999"), "schema mismatch"),
    ])
    def test_validate_rejects(self, overrides, fragment):
        with pytest.raises(RequestValidationError, match=fragment):
            _request(**overrides).validate()

    def test_request_key_is_stable_and_discriminating(self):
        base = _request()
        assert base.request_key() == _request().request_key()
        assert base.request_key() != _request(n_threads=4).request_key()
        assert base.request_key() != _request(coco=True).request_key()
        assert base.request_key() != _request(check=False).request_key()
        assert re.fullmatch(r"[0-9a-f]{16,}", base.request_key())


class TestEvaluateResult:
    def test_round_trips_through_dict(self):
        result = EvaluateResult(request=_request(),
                                metrics={"speedup": 1.25},
                                fingerprints={"pdg": "ab12"},
                                stale=True, stale_age_seconds=3.5)
        again = EvaluateResult.from_dict(result.as_dict())
        assert again == result
        assert again.speedup == 1.25

    def test_from_dict_rejects_schema_mismatch(self):
        document = EvaluateResult(request=_request()).as_dict()
        document["schema_version"] = "repro.api/v0"
        with pytest.raises(RequestValidationError, match="schema"):
            EvaluateResult.from_dict(document)

    def test_marked_copies_without_mutating(self):
        result = EvaluateResult(request=_request())
        marked = result.marked(stale=True, stale_age_seconds=7.0)
        assert marked.stale and marked.stale_age_seconds == 7.0
        assert not result.stale and result.stale_age_seconds is None


class TestFacadeEvaluate:
    def test_matches_evaluate_workload(self, tmp_path):
        previous = configure_cache(str(tmp_path / "artifacts"))
        try:
            result = evaluate(_request())
            direct = evaluate_workload(get_workload("ks"),
                                       technique="gremio", n_threads=2,
                                       scale="train")
        finally:
            configure_cache(previous.directory, previous.enabled)
        assert result.schema_version == API_SCHEMA_VERSION
        assert result.speedup == pytest.approx(direct.speedup)
        assert result.metrics["mt_cycles"] == float(direct.mt_result.cycles)
        assert result.fingerprints  # per-stage cache keys present

    def test_rejects_invalid_before_running(self):
        with pytest.raises(RequestValidationError):
            evaluate(_request(
                program=ProgramSpec.registry("no-such-workload")))


class TestDeprecationShims:
    def test_top_level_shims_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            shimmed = repro.configure_cache
        assert shimmed is configure_cache
        with pytest.warns(DeprecationWarning):
            assert repro.Telemetry is repro.api.Telemetry

    def test_pipeline_shims_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            shimmed = repro.pipeline.evaluate_workload
        assert shimmed is evaluate_workload
        with pytest.warns(DeprecationWarning):
            assert repro.pipeline.Evaluation is repro.api.Evaluation

    def test_unknown_attributes_still_raise(self):
        with pytest.raises(AttributeError):
            repro.no_such_symbol
        with pytest.raises(AttributeError):
            repro.pipeline.no_such_symbol

    def test_stable_surface_does_not_warn(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert callable(repro.evaluate_workload)
            assert callable(repro.pipeline.configure_cache)

    def test_dir_lists_shimmed_names(self):
        assert "configure_cache" in dir(repro)
        assert "evaluate_workload" in dir(repro.pipeline)


class TestLayeringCovenant:
    """cli, bench, service, and cluster must consume the pipeline only
    via the facade — a direct ``repro.pipeline`` import outside
    ``repro.api`` (and the pipeline itself) is a layering regression."""

    FORBIDDEN = re.compile(
        r"^\s*(from\s+(repro)?\.*pipeline[.\s]|import\s+repro\.pipeline)",
        re.MULTILINE)

    def _sources(self):
        package = Path(repro.__file__).parent
        yield package / "cli.py"
        for sub in ("bench", "service", "cluster"):
            yield from sorted((package / sub).rglob("*.py"))

    def test_no_direct_pipeline_imports(self):
        offenders = []
        for source in self._sources():
            if self.FORBIDDEN.search(source.read_text()):
                offenders.append(source.name)
        assert not offenders, (
            "direct repro.pipeline imports outside the facade: %s"
            % ", ".join(offenders))

    def test_facade_exports_the_classic_surface(self):
        for name in ("parallelize", "evaluate_workload", "evaluate_matrix",
                     "MatrixCell", "build_cells", "configure_cache",
                     "get_cache", "Telemetry", "global_telemetry",
                     "run_cell_payload", "pool_payload"):
            assert name in repro.api.__all__, name
            assert getattr(repro.api, name) is not None
