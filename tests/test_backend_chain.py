"""Integration: the complete toolchain composed end to end —

    scalar opts -> partition -> COCO -> MTCG (shared queues) ->
    local scheduling -> per-thread register allocation -> timed simulation

— preserves the reference semantics on real workloads, for both
partitioners.  This is the composition the papers' compiler actually runs;
each stage is unit-tested elsewhere, this pins their interaction.
"""

import pytest

from repro.analysis import build_pdg
from repro.coco.driver import optimize as coco_optimize
from repro.interp import run_function
from repro.machine import simulate_program, simulate_single
from repro.mtcg import generate
from repro.opt import (CommPriority, allocate_registers, optimize_function,
                       schedule_function, schedule_program)
from repro.api import make_partitioner, normalize, technique_config
from repro.workloads import get_workload


def _full_chain(name, technique, n_physical=24):
    workload = get_workload(name)
    function = workload.build()
    optimize_function(function)
    normalize(function, optimize=False)
    train = workload.make_inputs("train")
    measure = workload.make_inputs("train")  # keep the test fast
    config = technique_config(technique)

    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    partition = make_partitioner(technique, config).partition(
        function, pdg, profile, 2)
    coco = coco_optimize(function, pdg, partition, profile)
    program = generate(function, pdg, partition,
                       data_channels=coco.data_channels,
                       condition_covered=coco.condition_covered,
                       queue_allocation="shared")
    schedule_program(program, config, CommPriority.LATE)
    schedule_function(function, config, CommPriority.LATE)
    for thread in program.threads:
        allocate_registers(thread, n_physical=n_physical)

    st = simulate_single(function, measure.args, measure.memory,
                         config=config)
    mt = simulate_program(program, measure.args, measure.memory,
                          config=config)
    return workload, function, st, mt


@pytest.mark.parametrize("name", ["ks", "181.mcf", "435.gromacs",
                                  "adpcmdec"])
@pytest.mark.parametrize("technique", ["dswp", "gremio"])
def test_full_backend_chain_preserves_semantics(name, technique):
    workload, function, st, mt = _full_chain(name, technique)
    assert mt.live_outs == st.live_outs, (name, technique)
    # Output memory objects also match (the spill areas are per-function
    # private objects, so compare only the workload's declared outputs).
    for object_name in workload.output_objects:
        obj = function.mem_objects[object_name]
        assert (mt.memory.read_array(obj.base, obj.size)
                == st.memory.read_array(obj.base, obj.size)), \
            (name, technique, object_name)


def test_chain_under_register_pressure():
    """A brutally small register file forces spills in every thread; the
    composition still computes the right answer."""
    workload, function, st, mt = _full_chain("435.gromacs", "dswp",
                                             n_physical=10)
    assert mt.live_outs == st.live_outs
