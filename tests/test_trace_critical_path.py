"""Tests for dynamic critical-path extraction: handcrafted dependence
chains with known answers, the telescoping identity
``sum(edge_totals) + root_cycles + truncated_cycles == length``, and
communication edges showing up on real MT traces."""

import pytest

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.trace import InstructionEvent, TraceCollector, critical_path

from ._pipeline_fixture import build_pipeline_loop


def _event(seq, issue, complete, deps=(), core=0, op="add",
           op_class="alu"):
    return InstructionEvent(seq, core, core, seq, op, op_class,
                            issue, float(complete), deps=tuple(deps))


class TestHandcraftedChains:
    def test_empty_window(self):
        path = critical_path([])
        assert path.length == 0.0
        assert path.instructions == 0
        assert not path.truncated

    def test_single_event_is_its_own_path(self):
        path = critical_path([_event(0, 0, 5.0)])
        assert path.length == 5.0
        assert path.instructions == 1
        assert path.root_cycles == 5.0
        assert path.edge_totals == {}

    def test_linear_register_chain(self):
        events = [
            _event(0, 0, 3.0),
            _event(1, 3, 7.0, deps=[(0, "register", 3.0)]),
            _event(2, 7, 12.0, deps=[(1, "register", 7.0)]),
        ]
        path = critical_path(events)
        assert path.length == 12.0
        assert [e.seq for e in path.events] == [0, 1, 2]
        assert path.edge_totals == {"register": 9.0}
        assert path.root_cycles == 3.0

    def test_binding_edge_is_the_max_constraint(self):
        """The walk follows the edge that actually bound the issue
        cycle, not the first or the program-order edge."""
        events = [
            _event(0, 0, 2.0),                 # cheap producer
            _event(1, 0, 10.0, core=1),        # the slow producer
            _event(2, 10, 11.0, deps=[(0, "register", 2.0),
                                      (1, "communication", 10.0),
                                      (0, "order", 1.0)]),
        ]
        path = critical_path(events)
        assert [e.seq for e in path.events] == [1, 2]
        assert path.edge_kinds[-1] == "communication"
        assert path.edge_totals == {"communication": 1.0}

    def test_kind_rank_breaks_constraint_ties(self):
        events = [
            _event(0, 0, 5.0),
            _event(1, 0, 5.0, core=1),
            _event(2, 5, 9.0, deps=[(0, "order", 5.0),
                                    (1, "register", 5.0)]),
        ]
        path = critical_path(events)
        # register outranks order on equal constraints.
        assert path.edge_kinds[-1] == "register"

    def test_telescoping_identity_handcrafted(self):
        events = [
            _event(0, 0, 4.0),
            _event(1, 4, 6.0, deps=[(0, "register", 4.0)]),
            _event(2, 6, 6.5, deps=[(1, "memory", 6.0)]),
            _event(3, 7, 20.0, deps=[(2, "communication", 6.5)]),
        ]
        path = critical_path(events)
        total = (sum(path.edge_totals.values()) + path.root_cycles
                 + path.truncated_cycles)
        assert total == pytest.approx(path.length)

    def test_truncated_window_attributes_missing_prefix(self):
        """A dep pointing at an evicted seq truncates the walk and
        charges the unobserved prefix."""
        events = [
            _event(5, 10, 14.0, deps=[(4, "register", 10.0)]),
            _event(6, 14, 19.0, deps=[(5, "register", 14.0)]),
        ]
        path = critical_path(events)
        assert path.truncated
        assert path.truncated_cycles == 14.0
        total = (sum(path.edge_totals.values()) + path.root_cycles
                 + path.truncated_cycles)
        assert total == pytest.approx(path.length)

    def test_negative_edge_cost_clamped(self):
        events = [
            _event(0, 0, 9.0),
            # Completes *before* its producer (latency overlap): the
            # edge contributes zero, never negative.
            _event(1, 5, 7.0, deps=[(0, "register", 5.0)]),
        ]
        path = critical_path(events)
        assert path.length == 9.0  # seq 0 completes last -> is the tip
        assert all(cycles >= 0.0
                   for cycles in path.edge_totals.values())


class TestRealTraces:
    @pytest.fixture(scope="class")
    def analysis_parts(self):
        f = build_pipeline_loop()
        args = {"r_n": 150}
        profile = run_function(f, args).profile
        pdg = build_pdg(f)
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        mt = generate(f, pdg, p, None)
        collector = TraceCollector()
        result = simulate_program(mt, args,
                                  config=DEFAULT_CONFIG.for_dswp(),
                                  tracer=collector)
        return collector, result

    def test_path_length_is_total_cycles(self, analysis_parts):
        collector, result = analysis_parts
        path = critical_path(collector.events)
        assert path.length == result.cycles
        assert not path.truncated

    def test_telescoping_identity_real(self, analysis_parts):
        collector, _ = analysis_parts
        path = critical_path(collector.events)
        total = (sum(path.edge_totals.values()) + path.root_cycles
                 + path.truncated_cycles)
        assert total == pytest.approx(path.length)

    def test_communication_edges_on_mt_path(self, analysis_parts):
        """A DSWP-pipelined loop's critical path crosses the SA at
        least once (produce -> consume), so communication edges exist
        in the event graph and are eligible for the path."""
        collector, _ = analysis_parts
        comm_deps = [dep for event in collector.events
                     for dep in event.deps
                     if dep[1] == "communication"]
        assert comm_deps, "MT trace must carry communication edges"
        path = critical_path(collector.events)
        # The path walks *executed* dependences only.
        assert set(path.edge_totals) <= {"register", "memory", "control",
                                         "communication", "order"}

    def test_describe_renders(self, analysis_parts):
        collector, _ = analysis_parts
        text = critical_path(collector.events).describe()
        assert "critical path:" in text
        assert "issue" in text
