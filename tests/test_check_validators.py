"""Tests for the static MT validators (:mod:`repro.check.validators`).

Two directions: every validator must *pass* on legal MTCG output (no
false positives across techniques, random partitions, and COCO), and
every validator must *fail* when its invariant is broken by a seeded
mutation (deleted consume, deleted produce, merged queues, misplaced
live-outs, crossed produce/consume order)."""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.analysis import build_pdg
from repro.check.generate import (random_args, random_partition,
                                  random_sketch, render_program)
from repro.check.strategies import program_sketches
from repro.check.validators import (CONSUME_OPS, MTValidationError,
                                    validate_program)
from repro.interp import run_function
from repro.ir import Opcode
from repro.mtcg import generate
from repro.api import make_partitioner, normalize, technique_config

from .helpers import build_memory_loop
from .mt_utils import build_crossed_deadlock, make_mt, round_robin_partition

TECHNIQUES = ("gremio", "dswp", "gremio-flat")


def _memory_loop_mt():
    f = build_memory_loop()
    return f, make_mt(f, round_robin_partition(f, 2))


class TestValidatorsPassOnLegalOutput:
    def test_memory_loop_round_robin(self):
        _, mt = _memory_loop_mt()
        report = validate_program(mt)
        assert report.ok, report.describe()
        assert report.counters["channels_checked"] == len(mt.channels)
        assert report.counters["comm_ops_checked"] > 0

    def test_all_partitioners_on_200_random_programs(self):
        """The acceptance sweep: GREMIO, DSWP, GREMIO-flat, and a random
        partition over 200 random programs — every generated MT program
        must satisfy every static invariant."""
        validated = 0
        for index in range(200):
            rng = random.Random(index)
            function = render_program(random_sketch(rng))
            normalize(function)
            profile = run_function(function, random_args(rng)).profile
            pdg = build_pdg(function)
            n_threads = rng.randint(2, 3)
            partitions = []
            for technique in TECHNIQUES:
                config = technique_config(technique).with_cores(n_threads)
                partitions.append(make_partitioner(
                    technique, config).partition(function, pdg, profile,
                                                 n_threads))
            partitions.append(random_partition(rng, function,
                                               n_threads=n_threads))
            for partition in partitions:
                mt = generate(function, pdg, partition)
                report = validate_program(mt)
                assert report.ok, ("program %d: %s"
                                   % (index, report.describe()))
                validated += 1
        assert validated == 200 * (len(TECHNIQUES) + 1)

    def test_validate_program_raises_on_demand(self):
        _, mt = _memory_loop_mt()
        deleted = False
        for thread in mt.threads:
            for block in thread.blocks:
                for index, instruction in enumerate(block.instructions):
                    if instruction.op is Opcode.PRODUCE:
                        del block.instructions[index]
                        deleted = True
                        break
                if deleted:
                    break
            if deleted:
                break
        assert deleted
        with pytest.raises(MTValidationError) as error:
            validate_program(mt, context="memory_loop",
                             raise_on_failure=True)
        assert "memory_loop" in str(error.value)
        assert not error.value.report.ok


class TestSeededMutationsAreCaught:
    def _delete_first(self, mt, opcode):
        for thread in mt.threads:
            for block in thread.blocks:
                for index, instruction in enumerate(block.instructions):
                    if instruction.op is opcode:
                        del block.instructions[index]
                        return True
        return False

    def test_deleted_consume_rejected(self):
        """Removing one consume leaves a produce with no partner — the
        channel-balance rule must fire (IR verification of the consumer
        thread may fail too; balance is the load-bearing diagnosis)."""
        _, mt = _memory_loop_mt()
        assert self._delete_first(mt, Opcode.CONSUME)
        report = validate_program(mt)
        assert not report.ok
        assert "channel-balance" in report.rules_violated()

    def test_deleted_produce_rejected(self):
        _, mt = _memory_loop_mt()
        assert self._delete_first(mt, Opcode.PRODUCE)
        report = validate_program(mt)
        assert not report.ok
        assert "channel-balance" in report.rules_violated()
        violation = next(v for v in report.violations
                         if v.rule == "channel-balance")
        assert violation.queue is not None

    def test_merged_queues_with_different_endpoints_rejected(self):
        """Force two channels with different (source, target) pairs onto
        one physical queue — the sharing rule must reject it."""
        _, mt = _memory_loop_mt()
        by_endpoints = {}
        for channel in mt.channels:
            by_endpoints.setdefault(
                (channel.source_thread, channel.target_thread),
                channel)
        assert len(by_endpoints) >= 2, \
            "round-robin partition should communicate both ways"
        first, second = list(by_endpoints.values())[:2]
        old_queue = second.queue
        second.queue = first.queue
        for thread in mt.threads:
            for instruction in thread.instructions():
                if instruction.is_communication() \
                        and instruction.queue == old_queue:
                    instruction.queue = first.queue
        report = validate_program(mt)
        assert not report.ok
        assert "queue-conflict" in report.rules_violated()

    def test_liveouts_on_non_exit_thread_rejected(self):
        _, mt = _memory_loop_mt()
        rogue = (mt.exit_thread + 1) % mt.n_threads
        mt.threads[rogue].live_outs = ["r_i"]
        report = validate_program(mt)
        assert not report.ok
        assert "register-isolation" in report.rules_violated()

    def test_undefined_channel_register_rejected(self):
        _, mt = _memory_loop_mt()
        data = [c for c in mt.channels if c.register is not None]
        assert data, "memory loop must have at least one data channel"
        data[0].register = "r_never_defined"
        report = validate_program(mt)
        assert not report.ok
        assert "register-isolation" in report.rules_violated()

    def test_crossed_produce_consume_rejected_statically(self):
        """The hand-built crossed program is balanced and conflict-free,
        but its wait-for graph has a cycle — only the deadlock rule
        fires, naming the crossing queues."""
        mt = build_crossed_deadlock()
        report = validate_program(mt)
        assert not report.ok
        assert report.rules_violated() == ["deadlock"]
        violation = next(v for v in report.violations
                         if v.rule == "deadlock")
        assert violation.queue in (0, 1)
        assert "crossed" in violation.message

    def test_communication_on_unowned_queue_rejected(self):
        _, mt = _memory_loop_mt()
        for thread in mt.threads:
            for instruction in thread.instructions():
                if instruction.is_communication():
                    instruction.queue = 999
                    report = validate_program(mt)
                    assert not report.ok
                    assert "channel-balance" in report.rules_violated()
                    return
        raise AssertionError("no communication op found")


class TestValidatorProperties:
    """Hypothesis: over arbitrary programs and partitions, legal output
    always passes and a deleted consume never does."""

    @given(sketch=program_sketches)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_generated_output_always_validates(self, sketch):
        function = render_program(sketch)
        rng = random.Random(sketch_hash(sketch))
        partition = random_partition(rng, function)
        mt = make_mt(function, partition)
        report = validate_program(mt)
        assert report.ok, report.describe()

    @given(sketch=program_sketches)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_deleted_consume_never_validates(self, sketch):
        function = render_program(sketch)
        rng = random.Random(sketch_hash(sketch))
        partition = random_partition(rng, function)
        mt = make_mt(function, partition)
        deleted = False
        for thread in mt.threads:
            for block in thread.blocks:
                for index, instruction in enumerate(block.instructions):
                    if instruction.op in CONSUME_OPS:
                        del block.instructions[index]
                        deleted = True
                        break
                if deleted:
                    break
            if deleted:
                break
        assume(deleted)  # partitions may place everything on one thread
        report = validate_program(mt)
        assert not report.ok
        assert "channel-balance" in report.rules_violated()


def sketch_hash(sketch) -> int:
    """Deterministic partition seed derived from the sketch shape (no
    Python hash randomization)."""
    import json
    return sum(bytearray(json.dumps(sketch.statements).encode())) % 65537
