"""Tests for the COCO driver itself: convergence, idempotence, and the
thread-graph ordering."""

from repro.analysis import build_pdg
from repro.coco import optimize
from repro.coco.driver import _thread_pair_order
from repro.interp import run_function
from repro.ir.transforms import renumber_iids, split_critical_edges

from .helpers import build_paper_figure4
from .mt_utils import round_robin_partition
from .random_programs import render_program, _ProgramSketch


def _prepared(factory, args, mem=()):
    f = factory()
    split_critical_edges(f)
    renumber_iids(f)
    profile = run_function(f, args, mem).profile
    pdg = build_pdg(f)
    return f, profile, pdg


class TestConvergence:
    def test_fixed_point_is_idempotent(self):
        f, profile, pdg = _prepared(build_paper_figure4,
                                    {"r_n": 10, "r_m": 4})
        partition = round_robin_partition(f, 2)
        first = optimize(f, pdg, partition, profile)
        second = optimize(f, pdg, partition, profile)

        def signature(result):
            return sorted((c.kind.value, c.source_thread, c.target_thread,
                           c.register, tuple(sorted(c.points)))
                          for c in result.data_channels)
        assert signature(first) == signature(second)
        assert first.condition_covered == second.condition_covered

    def test_terminates_within_bound(self):
        f, profile, pdg = _prepared(build_paper_figure4,
                                    {"r_n": 10, "r_m": 4})
        partition = round_robin_partition(f, 3)
        result = optimize(f, pdg, partition, profile, max_iterations=10)
        assert 1 <= result.iterations <= 10

    def test_multi_iteration_case(self):
        """A three-thread chain where thread 2's relevant branches depend
        on where thread 1's input communication lands: the fixed point
        takes more than one iteration."""
        sketch = _ProgramSketch([
            ("loop", 4, [
                ("if", 0, [("alu", "add", 1, 1, 0)],
                 [("alu", "sub", 1, 1, 0)]),
                ("alu", "add", 2, 2, 1),
            ]),
        ])
        f = render_program(sketch)
        split_critical_edges(f)
        renumber_iids(f)
        profile = run_function(f, {"r_in0": 5, "r_in1": 2}).profile
        pdg = build_pdg(f)
        partition = round_robin_partition(f, 3)
        result = optimize(f, pdg, partition, profile)
        assert result.iterations >= 2


class TestThreadPairOrder:
    def test_pipeline_order(self):
        order = _thread_pair_order({(0, 1), (1, 2), (0, 2)}, 3)
        assert order.index((0, 1)) < order.index((1, 2))

    def test_cyclic_falls_back_to_sorted(self):
        order = _thread_pair_order({(0, 1), (1, 0)}, 2)
        assert order == [(0, 1), (1, 0)]

    def test_empty(self):
        assert _thread_pair_order(set(), 2) == []
