"""Differential equivalence of the fast simulator backend.

The contract under test (see ``docs/performance.md``): for every
program the fast backend (:mod:`repro.machine.fast_timing`) produces
results **bit-identical** to the reference
(:mod:`repro.machine.timing`) — cycles, per-core finish times, stall
attributions, queue internals, live-outs, memory images, and the
int-vs-float type of every number.  The grid is every registry workload
x {paper-dual, quad-2x2} x {GREMIO, DSWP} x {trace off, trace on},
plus the single-threaded simulator per workload, whole-pipeline
``Evaluation.metrics()`` parity, and seeded random programs from
:mod:`repro.check.generate`.
"""

import pytest

from repro.api import configure_cache, evaluate_workload, get_cache, \
    get_workload, workload_names
from repro.check.differential_backend import (diff_snapshots,
                                              run_fuzz_case,
                                              snapshot_result,
                                              snapshot_trace)
from repro.machine.backend import (simulate_program_fn,
                                   simulate_single_fn)
from repro.pipeline.core import parallelize

#: (topology preset, threads that fill it).
TOPOLOGIES = (("paper-dual", 2), ("quad-2x2", 4))
TECHNIQUES = ("gremio", "dswp")

_BUILDS = {}


def _built(name, technique, topology, n_threads):
    """One parallelization per grid point, shared by the trace-on and
    trace-off cases (the build side is backend-agnostic)."""
    key = (name, technique, topology, n_threads)
    if key not in _BUILDS:
        workload = get_workload(name)
        train = workload.make_inputs("train")
        _BUILDS[key] = parallelize(
            workload.build(), technique=technique, n_threads=n_threads,
            profile_args=train.args, profile_memory=train.memory,
            cache=False, topology=topology)
    return _BUILDS[key]


def _assert_identical(reference_snap, fast_snap, label):
    divergences = diff_snapshots(reference_snap, fast_snap)
    assert not divergences, "%s diverged:\n%s" % (
        label, "\n".join(divergences[:10]))


@pytest.mark.parametrize("name", workload_names())
def test_single_threaded_bit_identical(name):
    workload = get_workload(name)
    inputs = workload.make_inputs("train")
    reference = simulate_single_fn("reference")(
        workload.build(), inputs.args, inputs.memory)
    fast = simulate_single_fn("fast")(
        workload.build(), inputs.args, inputs.memory)
    _assert_identical(snapshot_result(reference), snapshot_result(fast),
                      "%s/st" % name)


@pytest.mark.parametrize("topology,n_threads", TOPOLOGIES)
@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("name", workload_names())
def test_multi_threaded_bit_identical(name, technique, topology,
                                      n_threads):
    built = _built(name, technique, topology, n_threads)
    inputs = get_workload(name).make_inputs("train")
    reference = simulate_program_fn("reference")(
        built.program, inputs.args, inputs.memory, config=built.config)
    fast = simulate_program_fn("fast")(
        built.program, inputs.args, inputs.memory, config=built.config)
    ref_snap = snapshot_result(reference)
    fast_snap = snapshot_result(fast)
    _assert_identical(ref_snap, fast_snap,
                      "%s/%s/%s" % (name, technique, topology))
    # Per-core stall attributions reconcile, not just the total cycles:
    # the snapshot covers comm_stats (SA port delays, backpressure,
    # operand waits), per-core finish times, and queue timestamps.
    for field in ("core_finish", "comm_stats", "queues", "cache_stats"):
        assert ref_snap[field] == fast_snap[field]


@pytest.mark.parametrize("topology,n_threads", TOPOLOGIES)
@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("name", workload_names())
def test_traced_runs_bit_identical(name, technique, topology, n_threads):
    """With a tracer attached the fast backend delegates to the
    reference, so event streams and stall tables are identical — this
    pins the delegation (a fast-path trace reimplementation would have
    to reproduce the whole stream to pass)."""
    from repro.trace import TraceCollector
    built = _built(name, technique, topology, n_threads)
    inputs = get_workload(name).make_inputs("train")
    snapshots = []
    for backend in ("reference", "fast"):
        collector = TraceCollector()
        result = simulate_program_fn(backend)(
            built.program, inputs.args, inputs.memory,
            config=built.config, tracer=collector)
        snapshots.append((snapshot_result(result),
                          snapshot_trace(collector)))
    _assert_identical(snapshots[0][0], snapshots[1][0],
                      "%s/%s/%s/trace-result" % (name, technique,
                                                 topology))
    _assert_identical(snapshots[0][1], snapshots[1][1],
                      "%s/%s/%s/trace-events" % (name, technique,
                                                 topology))


class TestEvaluationMetrics:
    """Whole-pipeline parity: evaluate_workload under both backends
    (cache disabled, so the fast run cannot replay reference artifacts)
    yields bit-identical Evaluation.metrics()."""

    @pytest.fixture(autouse=True)
    def _no_cache(self):
        previous = get_cache()
        configure_cache(enabled=False)
        yield
        configure_cache(previous.directory, previous.enabled)

    @pytest.mark.parametrize("name,technique,topology,n_threads", [
        ("ks", "gremio", "paper-dual", 2),
        ("adpcmdec", "dswp", "quad-2x2", 4),
        ("mpeg2enc", "gremio", None, 2),
    ])
    def test_metrics_bit_identical(self, name, technique, topology,
                                   n_threads):
        evaluations = [
            evaluate_workload(get_workload(name), technique=technique,
                              n_threads=n_threads, scale="train",
                              topology=topology, backend=backend)
            for backend in ("reference", "fast")]
        reference, fast = evaluations
        assert reference.metrics() == fast.metrics()
        # Bit-identity includes types: speedup reprs match exactly.
        assert repr(reference.speedup) == repr(fast.speedup)
        assert (reference.mt_result.cycles == fast.mt_result.cycles
                and type(reference.mt_result.cycles)
                is type(fast.mt_result.cycles))


@pytest.mark.parametrize("seed", range(25))
def test_fuzz_programs_bit_identical(seed):
    """Seeded random programs (repro.check.generate): single-threaded
    plus a random-partition MTCG program per seed, both backends —
    including identical trap type and message when the program traps."""
    case = run_fuzz_case(seed)
    assert case.ok, "fuzz seed %d diverged:\n%s" % (
        seed, "\n".join(case.divergences[:10]))
