"""Unit tests for the graph algorithm package."""

import pytest

from repro.graphs import (CycleError, FlowGraph, INFINITY, condense, min_cut,
                          multi_pair_min_cut, strongly_connected_components,
                          topological_sort)
from repro.graphs.mincut import InfiniteCutError


class TestScc:
    def test_dag_is_singletons(self):
        succ = {"a": ["b"], "b": ["c"], "c": []}
        comps = strongly_connected_components(["a", "b", "c"], succ)
        assert sorted(map(sorted, comps)) == [["a"], ["b"], ["c"]]

    def test_simple_cycle(self):
        succ = {"a": ["b"], "b": ["c"], "c": ["a"]}
        comps = strongly_connected_components(["a", "b", "c"], succ)
        assert len(comps) == 1
        assert sorted(comps[0]) == ["a", "b", "c"]

    def test_two_cycles_and_bridge(self):
        succ = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        comps, comp_of, dag = condense([1, 2, 3, 4], succ)
        assert len(comps) == 2
        assert comp_of[1] == comp_of[2]
        assert comp_of[3] == comp_of[4]
        # Condensation is topologically ordered: {1,2} before {3,4}.
        assert comp_of[1] < comp_of[3]
        assert dag[comp_of[1]] == {comp_of[3]}

    def test_self_loop(self):
        succ = {"x": ["x"]}
        comps = strongly_connected_components(["x"], succ)
        assert comps == [["x"]]

    def test_deep_chain_no_recursion_error(self):
        n = 20_000
        succ = {i: [i + 1] for i in range(n)}
        succ[n] = []
        comps = strongly_connected_components(range(n + 1), succ)
        assert len(comps) == n + 1

    def test_condensation_topological_property(self):
        succ = {0: [1], 1: [2, 0], 2: [3], 3: [2], 4: [0]}
        comps, comp_of, dag = condense(range(5), succ)
        for source, targets in dag.items():
            for target in targets:
                assert source < target


class TestTopo:
    def test_orders_respect_edges(self):
        succ = {"a": ["c"], "b": ["c"], "c": ["d"], "d": []}
        order = topological_sort(["a", "b", "c", "d"], succ)
        assert order.index("a") < order.index("c")
        assert order.index("b") < order.index("c")
        assert order.index("c") < order.index("d")

    def test_cycle_raises(self):
        with pytest.raises(CycleError):
            topological_sort([1, 2], {1: [2], 2: [1]})

    def test_priority_breaks_ties(self):
        succ = {"a": [], "b": [], "c": []}
        order = topological_sort(["a", "b", "c"], succ,
                                 priority={"a": 3, "b": 1, "c": 2})
        assert order == ["b", "c", "a"]

    def test_deterministic_without_priority(self):
        succ = {2: [], 1: [], 3: []}
        assert topological_sort([2, 1, 3], succ) == [2, 1, 3]


def _classic_flow_graph():
    # CLRS-style example with max flow 23.
    g = FlowGraph()
    g.add_arc("s", "v1", 16)
    g.add_arc("s", "v2", 13)
    g.add_arc("v1", "v3", 12)
    g.add_arc("v2", "v1", 4)
    g.add_arc("v2", "v4", 14)
    g.add_arc("v3", "v2", 9)
    g.add_arc("v3", "t", 20)
    g.add_arc("v4", "v3", 7)
    g.add_arc("v4", "t", 4)
    return g


class TestMinCut:
    def test_classic_example_value(self):
        result = min_cut(_classic_flow_graph(), "s", "t")
        assert result.value == 23

    def test_cut_disconnects(self):
        g = _classic_flow_graph()
        result = min_cut(g, "s", "t")
        for u, v in result.cut_arcs:
            g.remove_arc(u, v)
        assert min_cut(g, "s", "t").value == 0

    def test_single_edge(self):
        g = FlowGraph()
        g.add_arc("s", "t", 5)
        result = min_cut(g, "s", "t")
        assert result.value == 5
        assert result.cut_arcs == [("s", "t")]

    def test_disconnected_is_zero(self):
        g = FlowGraph()
        g.add_arc("s", "a", 5)
        g.add_node("t")
        result = min_cut(g, "s", "t")
        assert result.value == 0
        assert result.cut_arcs == []

    def test_infinite_arcs_never_cut(self):
        g = FlowGraph()
        g.add_arc("s", "a", INFINITY)
        g.add_arc("a", "b", 3)
        g.add_arc("b", "t", INFINITY)
        result = min_cut(g, "s", "t")
        assert result.cut_arcs == [("a", "b")]
        assert result.value == 3

    def test_all_infinite_raises(self):
        g = FlowGraph()
        g.add_arc("s", "t", INFINITY)
        with pytest.raises(InfiniteCutError):
            min_cut(g, "s", "t")

    def test_parallel_arcs_merge(self):
        g = FlowGraph()
        g.add_arc("s", "t", 2)
        g.add_arc("s", "t", 3)
        assert min_cut(g, "s", "t").value == 5

    def test_min_cut_prefers_cheap_side(self):
        g = FlowGraph()
        g.add_arc("s", "a", 10)
        g.add_arc("a", "b", 1)
        g.add_arc("b", "t", 10)
        result = min_cut(g, "s", "t")
        assert result.cut_arcs == [("a", "b")]
        assert result.source_side == {"s", "a"}


class TestMultiPairMinCut:
    def test_shared_arc_cut_once(self):
        # Two pairs whose only connection is a shared middle arc: the
        # heuristic should cut it once and pay once.
        g = FlowGraph()
        g.add_arc("s1", "m", 10)
        g.add_arc("s2", "m", 10)
        g.add_arc("m", "n", 1)
        g.add_arc("n", "t1", 10)
        g.add_arc("n", "t2", 10)
        result = multi_pair_min_cut(g, [("s1", "t1"), ("s2", "t2")])
        assert result.cut_arcs == [("m", "n")]
        assert result.value == 1

    def test_independent_pairs(self):
        g = FlowGraph()
        g.add_arc("s1", "t1", 2)
        g.add_arc("s2", "t2", 3)
        result = multi_pair_min_cut(g, [("s1", "t1"), ("s2", "t2")])
        assert sorted(result.cut_arcs) == [("s1", "t1"), ("s2", "t2")]
        assert result.value == 5

    def test_pair_not_connected_costs_nothing(self):
        g = FlowGraph()
        g.add_arc("s1", "t1", 2)
        g.add_node("s2")
        g.add_node("t2")
        result = multi_pair_min_cut(g, [("s2", "t2"), ("s1", "t1")])
        assert result.cut_arcs == [("s1", "t1")]

    def test_missing_nodes_ignored(self):
        g = FlowGraph()
        g.add_arc("s", "t", 1)
        result = multi_pair_min_cut(g, [("nope", "t"), ("s", "t")])
        assert result.cut_arcs == [("s", "t")]
