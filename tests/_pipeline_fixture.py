"""A pipeline-friendly loop: a multiply recurrence feeding an independent
body chain.  Splitting recurrence from body overlaps their serial latency
chains — the classic DSWP win on in-order cores."""

from repro.ir import Function, FunctionBuilder


def build_pipeline_loop() -> Function:
    b = FunctionBuilder("pipeline_loop", params=["r_n"], live_outs=["r_s"])
    b.label("entry")
    b.movi("r_x", 7)
    b.movi("r_s", 0)
    b.movi("r_i", 0)
    b.jmp("header")
    b.label("header")
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "body", "done")
    b.label("body")
    # Stage-0 material: the x recurrence (3-cycle multiply chain).
    b.mul("r_x", "r_x", 3)
    b.and_("r_x", "r_x", 1023)
    b.add("r_x", "r_x", 1)
    # Stage-1 material: a dependent work chain on x.
    b.mul("r_t1", "r_x", "r_x")
    b.mul("r_t2", "r_t1", "r_x")
    b.add("r_t3", "r_t2", "r_t1")
    b.add("r_s", "r_s", "r_t3")
    b.add("r_i", "r_i", 1)
    b.jmp("header")
    b.label("done")
    b.exit()
    return b.build()
