"""Tests for the Graphviz exporters (structure of the emitted dot)."""

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.viz import (cfg_to_dot, pdg_to_dot, program_to_dot,
                       thread_graph_to_dot)

from .helpers import build_counted_loop, build_diamond
from .mt_utils import make_mt, round_robin_partition


class TestCfgDot:
    def test_blocks_and_edges_present(self):
        f = build_diamond()
        dot = cfg_to_dot(f)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for label in ("entry", "then", "else_", "join"):
            assert '"%s"' % label in dot
        assert '"entry" -> "then"' in dot
        assert '"entry" -> "else_"' in dot

    def test_profile_weights_on_edges(self):
        f = build_counted_loop()
        profile = run_function(f, {"r_n": 7}).profile
        dot = cfg_to_dot(f, profile)
        assert '[label="7"]' in dot  # the back edge ran 7 times

    def test_quotes_escaped(self):
        f = build_diamond()
        dot = cfg_to_dot(f)
        # No naked quote inside labels (all escaped or structural).
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0


class TestPdgDot:
    def test_arcs_styled_by_kind(self):
        f = build_counted_loop()
        pdg = build_pdg(f)
        dot = pdg_to_dot(pdg)
        assert 'style=dotted' in dot       # control arcs
        assert 'color="black"' in dot      # register arcs

    def test_partition_colors_nodes(self):
        f = build_counted_loop()
        pdg = build_pdg(f)
        partition = round_robin_partition(f, 2)
        dot = pdg_to_dot(pdg, partition)
        assert 'fillcolor="lightblue"' in dot
        assert 'fillcolor="lightyellow"' in dot


class TestThreadAndProgramDot:
    def test_thread_graph_arcs(self):
        f = build_counted_loop()
        pdg = build_pdg(f)
        partition = round_robin_partition(f, 2)
        dot = thread_graph_to_dot(pdg, partition)
        assert "t0" in dot and "t1" in dot
        assert "->" in dot

    def test_program_dot_has_clusters_and_channels(self):
        f = build_counted_loop()
        partition = round_robin_partition(f, 2)
        program = make_mt(f, partition)
        dot = program_to_dot(program)
        assert "cluster_t0" in dot
        assert "cluster_t1" in dot
        assert 'color="purple"' in dot  # at least one channel edge
        assert dot.count("subgraph") == 2
