"""Tests for the DSWP and GREMIO partitioners: structural properties and
end-to-end semantic equivalence of the partitions they produce."""

import pytest

from repro.analysis import build_pdg
from repro.interp import run_function, static_profile
from repro.ir import Opcode
from repro.partition.dswp import DSWPPartitioner
from repro.partition.gremio import GremioPartitioner

from .helpers import (build_counted_loop, build_diamond, build_memory_loop,
                      build_nested_loops, build_paper_figure3,
                      build_paper_figure4, build_straightline)
from .mt_utils import assert_equivalent

FIXTURES = [
    (build_straightline, {"r_a": 2, "r_b": 3}, {}),
    (build_diamond, {"r_a": -4}, {}),
    (build_counted_loop, {"r_n": 15}, {}),
    (build_nested_loops, {"r_n": 4, "r_m": 6}, {}),
    (build_memory_loop, {"r_n": 20}, {"arr_in": list(range(20))}),
    (build_paper_figure3, {"r_n": 8},
     {"f3_in": [3, 7, 250, 9, 0, 11, 42, 5]}),
    (build_paper_figure4, {"r_n": 10, "r_m": 4}, {}),
]


def _profiled(factory, args, mem):
    f = factory()
    result = run_function(f, args, mem)
    return f, build_pdg(f), result.profile


class TestDSWP:
    @pytest.mark.parametrize("factory,args,mem", FIXTURES)
    @pytest.mark.parametrize("n_threads", [2, 3])
    def test_pipeline_property(self, factory, args, mem, n_threads):
        """All cross-thread dependences flow forward (lower stage to
        higher stage) — the defining DSWP invariant."""
        f, pdg, profile = _profiled(factory, args, mem)
        p = DSWPPartitioner().partition(f, pdg, profile, n_threads)
        for arc in pdg.arcs:
            assert (p.thread_of(arc.source) <= p.thread_of(arc.target)), \
                "backward arc %r" % arc

    @pytest.mark.parametrize("factory,args,mem", FIXTURES)
    def test_equivalence(self, factory, args, mem):
        f, pdg, profile = _profiled(factory, args, mem)
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        assert_equivalent(f, p, args, initial_memory=mem)

    def test_uses_multiple_threads_when_profitable(self):
        """Figure 4's two sequential loops should pipeline into 2 stages."""
        f, pdg, profile = _profiled(build_paper_figure4,
                                    {"r_n": 50, "r_m": 50}, {})
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        assert len(set(p.assignment.values())) == 2

    def test_balance_roughly_even(self):
        f, pdg, profile = _profiled(build_paper_figure4,
                                    {"r_n": 50, "r_m": 50}, {})
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        # Each of the two hot loops is its own SCC cluster; the stage
        # weights should not be wildly lopsided.
        block_of = f.block_of()
        loop_threads = {
            p.thread_of(i.iid)
            for i in f.instructions()
            if block_of[i.iid] in ("B2", "B4") and i.op is not Opcode.JMP}
        assert loop_threads == {0, 1}

    def test_static_profile_works_too(self):
        f = build_nested_loops()
        pdg = build_pdg(f)
        p = DSWPPartitioner().partition(f, pdg, static_profile(f), 2)
        assert_equivalent(f, p, {"r_n": 4, "r_m": 5})


class TestGremio:
    @pytest.mark.parametrize("factory,args,mem", FIXTURES)
    @pytest.mark.parametrize("n_threads", [2, 3])
    def test_equivalence(self, factory, args, mem, n_threads):
        f, pdg, profile = _profiled(factory, args, mem)
        p = GremioPartitioner().partition(f, pdg, profile, n_threads)
        assert_equivalent(f, p, args, initial_memory=mem)

    @pytest.mark.parametrize("factory,args,mem", FIXTURES)
    def test_flat_ablation_equivalence(self, factory, args, mem):
        f, pdg, profile = _profiled(factory, args, mem)
        p = GremioPartitioner(hierarchical=False).partition(
            f, pdg, profile, 2)
        assert_equivalent(f, p, args, initial_memory=mem)

    def test_parallelizes_independent_work(self):
        """Two independent hot loops should land on different threads."""
        from repro.ir import FunctionBuilder
        b = FunctionBuilder("indep", params=["r_n"],
                            live_outs=["r_s1", "r_s2"])
        b.label("entry")
        b.movi("r_s1", 0)
        b.movi("r_s2", 0)
        b.movi("r_i", 0)
        b.jmp("h1")
        b.label("h1")
        b.cmplt("r_c1", "r_i", "r_n")
        b.br("r_c1", "b1", "mid")
        b.label("b1")
        b.mul("r_t1", "r_i", "r_i")
        b.add("r_s1", "r_s1", "r_t1")
        b.add("r_i", "r_i", 1)
        b.jmp("h1")
        b.label("mid")
        b.movi("r_j", 0)
        b.jmp("h2")
        b.label("h2")
        b.cmplt("r_c2", "r_j", "r_n")
        b.br("r_c2", "b2", "done")
        b.label("b2")
        b.mul("r_t2", "r_j", 3)
        b.add("r_s2", "r_s2", "r_t2")
        b.add("r_j", "r_j", 1)
        b.jmp("h2")
        b.label("done")
        b.exit()
        f = b.build()
        result = run_function(f, {"r_n": 40})
        pdg = build_pdg(f)
        p = GremioPartitioner().partition(f, pdg, result.profile, 2)
        block_of = f.block_of()
        threads_loop1 = {p.thread_of(i.iid) for i in f.instructions()
                         if block_of[i.iid] == "b1"}
        threads_loop2 = {p.thread_of(i.iid) for i in f.instructions()
                         if block_of[i.iid] == "b2"}
        assert threads_loop1 != threads_loop2
        assert_equivalent(f, p, {"r_n": 40})

    def test_keeps_dependence_cycle_together(self):
        """The accumulation cycle of a counted loop must stay on one
        thread (SCCs are indivisible units)."""
        f, pdg, profile = _profiled(build_counted_loop, {"r_n": 30}, {})
        p = GremioPartitioner().partition(f, pdg, profile, 2)
        body = f.block("body")
        add_s, add_i = body.instructions[0], body.instructions[1]
        header_cmp = f.block("header").instructions[0]
        # r_i's increment and the loop test form a cycle.
        assert p.thread_of(add_i.iid) == p.thread_of(header_cmp.iid)

    def test_deterministic(self):
        f, pdg, profile = _profiled(build_nested_loops,
                                    {"r_n": 5, "r_m": 7}, {})
        p1 = GremioPartitioner().partition(f, pdg, profile, 2)
        p2 = GremioPartitioner().partition(f, pdg, profile, 2)
        assert p1.assignment == p2.assignment

    def test_single_thread_degenerates(self):
        f, pdg, profile = _profiled(build_counted_loop, {"r_n": 5}, {})
        p = GremioPartitioner().partition(f, pdg, profile, 1)
        assert set(p.assignment.values()) == {0}
