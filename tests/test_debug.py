"""Tests for the divergence debugger."""

import pytest

from repro.debug import (DeadlockDetected, find_divergence,
                         find_divergence_truncating)
from repro.ir import Opcode

from .helpers import build_memory_loop
from .mt_utils import make_mt, round_robin_partition


class TestFindDivergence:
    def test_correct_program_has_none(self):
        f = build_memory_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        divergence = find_divergence(
            f, mt, {"r_n": 12}, {"arr_in": list(range(12))})
        assert divergence is None

    def test_corrupted_store_detected(self):
        """Sabotage the generated code (flip a store offset) and check the
        debugger pinpoints the damaged address."""
        f = build_memory_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        sabotaged = None
        for thread in mt.threads:
            for instruction in thread.instructions():
                if instruction.op is Opcode.STORE and sabotaged is None:
                    instruction.imm = (instruction.imm or 0) + 1
                    sabotaged = instruction
        assert sabotaged is not None
        divergence = find_divergence(
            f, mt, {"r_n": 12}, {"arr_in": list(range(12))})
        assert divergence is not None
        text = divergence.describe()
        assert "first divergence" in text
        # Either the original address misses a write or the shifted one
        # gains an unexpected write.
        assert divergence.expected is None or divergence.actual is None \
            or divergence.expected.value != divergence.actual.value

    def test_dropped_produce_detected_without_hanging(self):
        """Remove a produce: the MT run deadlocks; the debugger still
        terminates, and by default surfaces a structured report naming
        the starved queue instead of silently truncating the trace."""
        f = build_memory_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        for thread in mt.threads:
            for block in thread.blocks:
                new = [i for i in block.instructions
                       if i.op is not Opcode.PRODUCE]
                if len(new) != len(block.instructions):
                    block.instructions = new
                    break
            else:
                continue
            break
        args = {"r_n": 12}
        memory = {"arr_in": list(range(12))}
        with pytest.raises(DeadlockDetected) as error:
            find_divergence(f, mt, args, memory, max_steps=50_000)
        report = error.value.report
        assert report.blocked_threads
        assert report.blocking_queues
        assert "blocked" in report.describe()
        # The historical truncating mode still diffs whatever writes
        # happened before the wedge and reports the missing ones.
        divergence = find_divergence_truncating(f, mt, args, memory,
                                                max_steps=50_000)
        assert divergence is not None


class TestDeadlockRecentEvents:
    def test_report_carries_functional_step_tail(self):
        """A deadlock report includes the last functional steps before
        progress stopped — the context that makes a crossed
        produce/consume immediately legible."""
        from repro.debug import trace_mt
        from .mt_utils import build_crossed_deadlock
        mt_trace = trace_mt(build_crossed_deadlock(), max_steps=10_000)
        report = mt_trace.deadlock
        assert report is not None
        assert report.recent_events
        # Both threads got to run their movi before wedging on consume.
        threads_seen = {event.thread for event in report.recent_events}
        assert threads_seen == {0, 1}
        text = report.describe()
        assert "before the stall" in text
        assert "step" in text

    def test_recent_events_window_is_bounded(self):
        from repro.debug import RECENT_EVENT_CAPACITY, trace_mt
        from .helpers import build_memory_loop
        from .mt_utils import make_mt, round_robin_partition
        from repro.ir import Opcode
        f = build_memory_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        for thread in mt.threads:
            for block in thread.blocks:
                new = [i for i in block.instructions
                       if i.op is not Opcode.PRODUCE]
                if len(new) != len(block.instructions):
                    block.instructions = new
                    break
            else:
                continue
            break
        mt_trace = trace_mt(mt, {"r_n": 12},
                            {"arr_in": list(range(12))},
                            max_steps=100_000)
        report = mt_trace.deadlock
        assert report is not None
        assert 0 < len(report.recent_events) <= RECENT_EVENT_CAPACITY
        # describe() shows only the tail, not the whole window.
        tail_lines = [line for line in report.describe().splitlines()
                      if line.startswith("    ")]
        assert len(tail_lines) <= 8
