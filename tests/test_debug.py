"""Tests for the divergence debugger."""

from repro.analysis import build_pdg
from repro.debug import find_divergence
from repro.ir import Opcode
from repro.mtcg import generate

from .helpers import build_memory_loop
from .mt_utils import make_mt, round_robin_partition


class TestFindDivergence:
    def test_correct_program_has_none(self):
        f = build_memory_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        divergence = find_divergence(
            f, mt, {"r_n": 12}, {"arr_in": list(range(12))})
        assert divergence is None

    def test_corrupted_store_detected(self):
        """Sabotage the generated code (flip a store offset) and check the
        debugger pinpoints the damaged address."""
        f = build_memory_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        sabotaged = None
        for thread in mt.threads:
            for instruction in thread.instructions():
                if instruction.op is Opcode.STORE and sabotaged is None:
                    instruction.imm = (instruction.imm or 0) + 1
                    sabotaged = instruction
        assert sabotaged is not None
        divergence = find_divergence(
            f, mt, {"r_n": 12}, {"arr_in": list(range(12))})
        assert divergence is not None
        text = divergence.describe()
        assert "first divergence" in text
        # Either the original address misses a write or the shifted one
        # gains an unexpected write.
        assert divergence.expected is None or divergence.actual is None \
            or divergence.expected.value != divergence.actual.value

    def test_dropped_produce_detected_without_hanging(self):
        """Remove a produce: the MT run deadlocks; the debugger still
        terminates and reports missing writes."""
        f = build_memory_loop()
        mt = make_mt(f, round_robin_partition(f, 2))
        for thread in mt.threads:
            for block in thread.blocks:
                new = [i for i in block.instructions
                       if i.op is not Opcode.PRODUCE]
                if len(new) != len(block.instructions):
                    block.instructions = new
                    break
            else:
                continue
            break
        divergence = find_divergence(
            f, mt, {"r_n": 12}, {"arr_in": list(range(12))},
            max_steps=50_000)
        assert divergence is not None
