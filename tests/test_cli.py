"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "ks"])
        assert args.technique == "gremio"
        assert args.threads == 2
        assert not args.coco

    def test_shared_flags_are_consistent_across_subcommands(self):
        # --timings/--no-cache come from one shared parent parser.
        for command in (["run", "ks"], ["sweep"], ["report"], ["bench"],
                        ["serve"]):
            args = build_parser().parse_args(
                command + ["--timings", "--no-cache"])
            assert args.timings and args.no_cache, command
        # --jobs comes from another, shared by the fan-out commands.
        for command in (["sweep"], ["bench"]):
            args = build_parser().parse_args(command + ["--jobs", "3"])
            assert args.jobs == 3, command

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.workers >= 0
        assert args.queue_limit >= 1
        assert args.request_timeout > 0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FindMaxGpAndSwap" in out
        assert "adpcm_decoder" in out

    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "L1D" in out
        assert "141" in out

    def test_run_train_scale(self, capsys):
        assert main(["run", "ks", "--technique", "dswp", "--coco",
                     "--scale", "train"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "verified vs single-threaded" in out

    def test_dump_ir(self, capsys):
        assert main(["dump", "mpeg2enc"]) == 0
        out = capsys.readouterr().out
        assert "func dist1(" in out

    def test_dump_threads(self, capsys):
        assert main(["dump", "ks", "--technique", "dswp",
                     "--threads-code"]) == 0
        out = capsys.readouterr().out
        assert "; ===== thread 0 =====" in out
        assert "; ===== thread 1 =====" in out
        assert "produce" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", "not-a-workload", "--scale", "train"])

    def test_unknown_workload_suggests_close_match(self):
        with pytest.raises(SystemExit, match="did you mean 'ks'"):
            main(["run", "kss", "--scale", "train"])

    def test_dot_cfg(self, capsys):
        assert main(["dot", "mpeg2enc"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_dot_threads(self, capsys):
        assert main(["dot", "ks", "--what", "threads",
                     "--technique", "dswp"]) == 0
        out = capsys.readouterr().out
        assert "t0 -> t1" in out

    def test_report_markdown_shape(self, capsys):
        assert main(["report", "--scale", "train"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| benchmark |")
        assert "geomean" in out
        # One row per workload plus header/rule/geomean.
        from repro.workloads import workload_names
        assert out.count("\n") == len(workload_names()) + 3

    def test_run_with_local_schedule(self, capsys):
        assert main(["run", "ks", "--technique", "dswp", "--coco",
                     "--scale", "train", "--schedule", "late"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_run_timings_table(self, capsys):
        assert main(["run", "ks", "--scale", "train", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "per-stage timings" in out
        assert "simulate-mt" in out
        assert "artifact cache:" in out

    def test_sweep_prints_summary_and_telemetry(self, capsys):
        from repro.pipeline import configure_cache, get_cache
        previous = get_cache()
        try:
            assert main(["sweep", "--scale", "train", "--no-cache"]) == 0
        finally:
            configure_cache(previous.directory, previous.enabled)
        out = capsys.readouterr().out
        assert "geomean" in out
        assert "per-stage timings" in out
        assert "artifact cache:" in out

    def test_top_level_sweep_alias(self, capsys, tmp_path):
        from repro.pipeline import configure_cache, get_cache
        previous = get_cache()
        configure_cache(str(tmp_path / "cache"))
        try:
            assert main(["--sweep", "--scale", "train"]) == 0
            first = capsys.readouterr().out
            assert main(["--sweep", "--scale", "train"]) == 0
            second = capsys.readouterr().out
        finally:
            configure_cache(previous.directory, previous.enabled)
        # All three techniques swept, warm run hits the artifact cache.
        for technique in ("gremio", "gremio-flat", "dswp"):
            assert technique in first

        import re

        def cache_counts(text):
            match = re.search(r"artifact cache: (\d+) hits, (\d+) misses",
                              text)
            assert match, "no cache summary printed"
            return int(match.group(1)), int(match.group(2))

        _cold_hits, cold_misses = cache_counts(first)
        warm_hits, warm_misses = cache_counts(second)
        assert cold_misses > 0
        assert warm_hits > 0 and warm_misses == 0
