"""Tests for the builder's structured control-flow helpers."""

from repro.interp import run_function
from repro.ir import FunctionBuilder, verify_function
from repro.machine import run_mt_program
from repro.api import parallelize


class TestIfHelpers:
    def test_if_then(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=["r_x"])
        b.label("entry")
        b.movi("r_x", 1)
        b.cmpgt("r_c", "r_a", 0)
        b.if_then("r_c", lambda: b.movi("r_x", 2))
        b.exit()
        f = b.build()
        assert run_function(f, {"r_a": 5}).live_outs == {"r_x": 2}
        assert run_function(f, {"r_a": -5}).live_outs == {"r_x": 1}

    def test_if_then_else(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=["r_x"])
        b.label("entry")
        b.cmpgt("r_c", "r_a", 0)
        b.if_then_else("r_c",
                       lambda: b.mov("r_x", "r_a"),
                       lambda: b.neg("r_x", "r_a"))
        b.add("r_x", "r_x", 100)
        b.exit()
        f = b.build()
        assert run_function(f, {"r_a": 5}).live_outs == {"r_x": 105}
        assert run_function(f, {"r_a": -5}).live_outs == {"r_x": 105}

    def test_nested_hammocks_unique_labels(self):
        b = FunctionBuilder("f", params=["r_a"], live_outs=["r_x"])
        b.label("entry")
        b.movi("r_x", 0)
        b.cmpgt("r_c1", "r_a", 0)

        def outer_then():
            b.cmpgt("r_c2", "r_a", 10)
            b.if_then("r_c2", lambda: b.add("r_x", "r_x", 100))
            b.add("r_x", "r_x", 10)

        b.if_then("r_c1", outer_then)
        b.add("r_x", "r_x", 1)
        b.exit()
        f = b.build()
        verify_function(f)
        assert run_function(f, {"r_a": 20}).live_outs == {"r_x": 111}
        assert run_function(f, {"r_a": 5}).live_outs == {"r_x": 11}
        assert run_function(f, {"r_a": -5}).live_outs == {"r_x": 1}


class TestForRange:
    def test_simple_sum(self):
        b = FunctionBuilder("f", params=["r_n"], live_outs=["r_s"])
        b.label("entry")
        b.movi("r_s", 0)
        b.for_range("r_i", 0, "r_n",
                    lambda: b.add("r_s", "r_s", "r_i"))
        b.exit()
        f = b.build()
        assert run_function(f, {"r_n": 10}).live_outs == \
            {"r_s": sum(range(10))}

    def test_nested_loops(self):
        b = FunctionBuilder("f", params=["r_n"], live_outs=["r_s"])
        b.label("entry")
        b.movi("r_s", 0)

        def outer_body():
            def inner_body():
                b.mul("r_t", "r_i", "r_j")
                b.add("r_s", "r_s", "r_t")
            b.for_range("r_j", 0, "r_n", inner_body)

        b.for_range("r_i", 0, "r_n", outer_body)
        b.exit()
        f = b.build()
        expected = sum(i * j for i in range(4) for j in range(4))
        assert run_function(f, {"r_n": 4}).live_outs == {"r_s": expected}

    def test_register_bound_start(self):
        b = FunctionBuilder("f", params=["r_lo", "r_hi"],
                            live_outs=["r_s"])
        b.label("entry")
        b.movi("r_s", 0)
        b.for_range("r_i", "r_lo", "r_hi",
                    lambda: b.add("r_s", "r_s", 1))
        b.exit()
        f = b.build()
        assert run_function(f, {"r_lo": 3, "r_hi": 9}).live_outs == \
            {"r_s": 6}

    def test_structured_function_parallelizes(self):
        b = FunctionBuilder("f", params=["r_n"], live_outs=["r_s"])
        b.label("entry")
        b.movi("r_s", 0)

        def body():
            b.mul("r_sq", "r_i", "r_i")
            b.add("r_s", "r_s", "r_sq")

        b.for_range("r_i", 0, "r_n", body)
        b.exit()
        f = b.build()
        reference = run_function(f, {"r_n": 20}).live_outs
        result = parallelize(f, technique="dswp",
                             profile_args={"r_n": 20})
        mt = run_mt_program(result.program, {"r_n": 20})
        assert mt.live_outs == reference
