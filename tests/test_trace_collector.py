"""Tests for the trace event collector: ring-buffer bounds, the stall
attribution tables, and the reconciliation invariant (per core,
``execute + sum(stalls) == finish`` exactly)."""

import pytest

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program, simulate_single
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.trace import (EXECUTE, STALL_CATEGORIES, RingBuffer,
                         TraceCollector, analyze)

from ._pipeline_fixture import build_pipeline_loop


class TestRingBuffer:
    def test_keeps_everything_under_capacity(self):
        ring = RingBuffer(10)
        for value in range(7):
            ring.append(value)
        assert ring.snapshot() == list(range(7))
        assert ring.appended == 7
        assert ring.dropped == 0

    def test_drops_oldest_beyond_capacity(self):
        ring = RingBuffer(4)
        for value in range(10):
            ring.append(value)
        assert ring.snapshot() == [6, 7, 8, 9]
        assert ring.appended == 10
        assert ring.dropped == 6

    def test_len_and_iteration(self):
        ring = RingBuffer(3)
        ring.append("a")
        ring.append("b")
        assert len(ring) == 2
        assert list(ring) == ["a", "b"]


def _traced_dswp_run(n=120):
    f = build_pipeline_loop()
    args = {"r_n": n}
    profile = run_function(f, args).profile
    pdg = build_pdg(f)
    p = DSWPPartitioner().partition(f, pdg, profile, 2)
    mt = generate(f, pdg, p, None)
    collector = TraceCollector()
    result = simulate_program(mt, args, config=DEFAULT_CONFIG.for_dswp(),
                              tracer=collector)
    return collector, result


class TestCollectorOnRealRun:
    @pytest.fixture(scope="class")
    def traced(self):
        return _traced_dswp_run()

    def test_events_recorded(self, traced):
        collector, result = traced
        assert collector.events.appended > 0
        assert collector.events.dropped == 0
        assert collector.total_cycles == result.cycles

    def test_reconciliation_invariant_exact(self, traced):
        collector, _ = traced
        # verify() raises on any per-core mismatch; call it directly
        # and also re-check by hand so a regression names the core.
        collector.verify()
        for core, row in collector.core_table().items():
            attributed = row[EXECUTE] + sum(row[c]
                                            for c in STALL_CATEGORIES)
            assert attributed == pytest.approx(
                collector.core_finish[core], abs=1e-9), core

    def test_stall_categories_are_canonical(self, traced):
        collector, _ = traced
        totals = collector.stall_totals()
        assert set(totals) <= set(STALL_CATEGORIES)
        # A pipelined loop on in-order cores always waits on operands
        # or communication somewhere.
        assert sum(totals.values()) > 0

    def test_top_stall_is_the_argmax(self, traced):
        collector, _ = traced
        reason, cycles = collector.top_stall()
        totals = collector.stall_totals()
        assert reason in STALL_CATEGORIES
        assert cycles == max(totals.values())

    def test_queue_samples_bounded_and_nonnegative(self, traced):
        collector, _ = traced
        samples = collector.queue_samples.snapshot()
        assert samples, "an MT run must sample SA queue depths"
        assert all(s.depth >= 0 for s in samples)

    def test_analyze_summary_shape(self, traced):
        collector, result = traced
        analysis = analyze(collector)
        summary = analysis.summary()
        assert summary["schema"] == "repro.trace/v1"
        assert summary["total_cycles"] == result.cycles
        assert summary["top_stall_reason"] in STALL_CATEGORIES
        assert summary["critical_path_cycles"] <= result.cycles

    def test_report_json_roundtrips(self, traced):
        import json
        collector, _ = traced
        from repro.trace import stall_report_json, stall_report_markdown
        analysis = analyze(collector)
        document = json.loads(stall_report_json(analysis))
        assert document["schema"] == "repro.trace/v1"
        assert document["cores"]
        markdown = stall_report_markdown(analysis)
        assert "critical path" in markdown.lower()

    def test_ring_overflow_keeps_aggregates(self):
        """A tiny ring drops events but the per-core accounts (kept
        outside the ring) still reconcile exactly."""
        f = build_pipeline_loop()
        args = {"r_n": 120}
        profile = run_function(f, args).profile
        pdg = build_pdg(f)
        p = DSWPPartitioner().partition(f, pdg, profile, 2)
        mt = generate(f, pdg, p, None)
        collector = TraceCollector(limit=64)
        result = simulate_program(mt, args,
                                  config=DEFAULT_CONFIG.for_dswp(),
                                  tracer=collector)
        assert collector.events.dropped > 0
        assert len(collector.events) == 64
        collector.verify()
        assert collector.total_cycles == result.cycles


class TestSingleThreadedTrace:
    def test_single_core_reconciles(self):
        f = build_pipeline_loop()
        collector = TraceCollector()
        result = simulate_single(f, {"r_n": 60}, tracer=collector)
        collector.verify()
        assert collector.total_cycles == result.cycles
        totals = collector.stall_totals()
        # No synchronization array in play on one core.
        assert totals.get("sa_queue_full", 0) == 0
        assert totals.get("sa_queue_empty", 0) == 0
