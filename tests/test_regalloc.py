"""Tests for the linear-scan register allocator."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.interp import run_function
from repro.ir import FunctionBuilder, Opcode, verify_function
from repro.machine import run_mt_program
from repro.opt.regalloc import RegAllocError, allocate_registers

from .helpers import build_counted_loop, build_nested_loops
from .mt_utils import make_mt, round_robin_partition
from .random_programs import program_sketches, render_program


def _many_live_values(n: int):
    """n simultaneously-live values, then a sum over all of them."""
    b = FunctionBuilder("pressure", params=["r_a"], live_outs=["r_sum"])
    b.label("entry")
    for i in range(n):
        b.add("r_v%d" % i, "r_a", i)
    b.movi("r_sum", 0)
    for i in range(n):
        b.add("r_sum", "r_sum", "r_v%d" % i)
    b.exit()
    return b.build()


class TestAllocation:
    def test_no_spills_with_enough_registers(self):
        f = _many_live_values(10)
        result = allocate_registers(f, n_physical=64)
        assert result.spill_count == 0
        assert result.max_pressure_before >= 10
        # Every register got a physical home.
        registers = {r for i in f.instructions()
                     for r in (i.defined_registers() + i.srcs)}
        assert registers <= set(result.assignment)

    def test_assignment_respects_interference(self):
        """Simultaneously live registers never share a physical id."""
        f = _many_live_values(12)
        result = allocate_registers(f, n_physical=64)
        from repro.analysis import liveness
        live = liveness(f)
        for iid, live_set in live.live_in.items():
            homes = [result.assignment[r] for r in live_set
                     if r in result.assignment]
            assert len(homes) == len(set(homes))

    def test_spills_under_pressure(self):
        f = _many_live_values(20)
        reference = run_function(f, {"r_a": 3})
        result = allocate_registers(f, n_physical=8)
        verify_function(f)
        assert result.spill_count > 0
        assert result.spill_loads > 0 and result.spill_stores > 0
        after = run_function(f, {"r_a": 3})
        assert after.live_outs == reference.live_outs

    def test_spilled_liveout_reloaded(self):
        f = _many_live_values(20)
        reference = run_function(f, {"r_a": 7}).live_outs
        result = allocate_registers(f, n_physical=8)
        if "r_sum" in result.spilled:
            pass  # the reload path is definitely exercised
        assert run_function(f, {"r_a": 7}).live_outs == reference

    def test_spilled_params_parked_at_entry(self):
        """Parameters may spill; their incoming value is stored to the
        spill area at function entry, so every later reload sees it."""
        f = _many_live_values(20)
        reference = run_function(f, {"r_a": 13}).live_outs
        result = allocate_registers(f, n_physical=6)
        if "r_a" in result.spilled:
            first = f.entry.instructions[0]
            assert first.op is Opcode.STORE
            assert "r_a" in first.srcs
        assert run_function(f, {"r_a": 13}).live_outs == reference

    def test_too_few_registers_rejected(self):
        with pytest.raises(RegAllocError):
            allocate_registers(_many_live_values(4), n_physical=3)

    def test_spill_area_binds_automatically(self):
        """The spill pointer is a pointer parameter: callers pass nothing
        new."""
        f = _many_live_values(20)
        allocate_registers(f, n_physical=8)
        assert any(p.startswith("p__spill") for p in f.params)
        result = run_function(f, {"r_a": 1})  # no extra args needed
        assert "r_sum" in result.live_outs


class TestLoops:
    def test_loop_carried_values_survive_spilling(self):
        f = build_counted_loop()
        reference = run_function(f, {"r_n": 17}).live_outs
        allocate_registers(f, n_physical=5)
        verify_function(f)
        assert run_function(f, {"r_n": 17}).live_outs == reference

    def test_nested_loops_with_tiny_file(self):
        f = build_nested_loops()
        reference = run_function(f, {"r_n": 4, "r_m": 5}).live_outs
        result = allocate_registers(f, n_physical=5)
        assert run_function(f, {"r_n": 4, "r_m": 5}).live_outs == reference


class TestMTIntegration:
    def test_per_thread_allocation(self):
        """Each generated thread is allocated independently, as in the
        papers' toolchain; results are unchanged."""
        f = build_nested_loops()
        partition = round_robin_partition(f, 2)
        mt = make_mt(f, partition)
        reference = run_mt_program(mt, {"r_n": 4, "r_m": 5})
        for thread_function in mt.threads:
            allocate_registers(thread_function, n_physical=8)
            verify_function(thread_function, allow_comm=True)
        result = run_mt_program(mt, {"r_n": 4, "r_m": 5})
        assert result.live_outs == reference.live_outs


class TestPropertyBased:
    @given(sketch=program_sketches)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_with_tiny_register_file(self, sketch):
        f = render_program(sketch)
        args = {"r_in0": 9, "r_in1": -2}
        reference = run_function(f, args)
        allocate_registers(f, n_physical=6)
        verify_function(f)
        result = run_function(f, args)
        assert result.live_outs == reference.live_outs
        assert result.memory.snapshot()[:32] == \
            reference.memory.snapshot()[:32]
