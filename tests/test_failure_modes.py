"""Failure-injection tests: the machinery must *detect* broken inputs —
deadlocks, malformed partitions, corrupted MT code — not silently
mis-execute."""

import pytest

from repro.analysis import build_pdg
from repro.ir import (FunctionBuilder, Opcode,
                      VerificationError, verify_function)
from repro.machine import DeadlockError, run_mt_program
from repro.machine.functional import MTExecutionLimitExceeded
from repro.mtcg import generate
from repro.mtcg.codegen import CodegenError
from repro.partition import Partition, PartitionError

from .helpers import build_counted_loop, build_diamond
from .mt_utils import make_mt, round_robin_partition


class TestPartitionValidation:
    def test_missing_instruction_rejected(self):
        f = build_diamond()
        iids = [i.iid for i in f.instructions()]
        with pytest.raises(PartitionError):
            Partition(f, 2, {iid: 0 for iid in iids[:-1]})

    def test_unknown_iid_rejected(self):
        f = build_diamond()
        assignment = {i.iid: 0 for i in f.instructions()}
        assignment[9999] = 1
        with pytest.raises(PartitionError):
            Partition(f, 2, assignment)

    def test_out_of_range_thread_rejected(self):
        f = build_diamond()
        assignment = {i.iid: 0 for i in f.instructions()}
        assignment[next(iter(assignment))] = 5
        with pytest.raises(PartitionError):
            Partition(f, 2, assignment)


class TestCodegenValidation:
    def test_split_exits_rejected(self):
        b = FunctionBuilder("twoexits", params=["r_c"], live_outs=[])
        b.label("entry")
        b.br("r_c", "e1", "e2")
        b.label("e1")
        b.exit()
        b.label("e2")
        b.exit()
        f = b.build()
        pdg = build_pdg(f)
        exits = [i.iid for i in f.instructions() if i.op is Opcode.EXIT]
        assignment = {i.iid: 0 for i in f.instructions()}
        assignment[exits[1]] = 1
        partition = Partition(f, 2, assignment)
        with pytest.raises(CodegenError):
            generate(f, pdg, partition)

    def test_unknown_queue_allocation_rejected(self):
        f = build_counted_loop()
        pdg = build_pdg(f)
        partition = round_robin_partition(f, 2)
        with pytest.raises(CodegenError):
            generate(f, pdg, partition, queue_allocation="???")


class TestDeadlockDetection:
    def test_mutual_wait_detected(self):
        """Hand-built MT code with crossed consumes deadlocks; the
        functional simulator must say so rather than hang."""
        def thread(name, produce_queue, consume_queue):
            b = FunctionBuilder(name, params=[], live_outs=[])
            b.label("entry")
            b.consume("r_x", consume_queue)     # wait first: deadlock
            b.produce(produce_queue, "r_x")
            b.exit()
            return b.build(verify=False)

        t0 = thread("t0", 0, 1)
        t1 = thread("t1", 1, 0)

        class FakeProgram:
            original = t0
            threads = [t0, t1]
            n_threads = 2
            n_queues = 2
            exit_thread = 0
            channels = []
        FakeProgram.original = t0
        with pytest.raises(DeadlockError):
            run_mt_program(FakeProgram(), {})

    def test_generated_code_never_deadlocks_even_tiny_queues(self):
        f = build_counted_loop()
        partition = round_robin_partition(f, 3)
        mt = make_mt(f, partition)
        result = run_mt_program(mt, {"r_n": 30}, queue_capacity=1)
        assert result.live_outs == {"r_s": sum(range(30))}

    def test_step_limit_triggers(self):
        f = build_counted_loop()
        partition = round_robin_partition(f, 2)
        mt = make_mt(f, partition)
        with pytest.raises(MTExecutionLimitExceeded):
            run_mt_program(mt, {"r_n": 1000}, max_steps=50)


class TestVerifierCatchesCorruption:
    def test_dangling_branch_after_corruption(self):
        f = build_counted_loop()
        partition = round_robin_partition(f, 2)
        mt = make_mt(f, partition)
        thread = mt.threads[0]
        # Corrupt: retarget some branch to a nonexistent block.
        for block in thread.blocks:
            terminator = block.terminator
            if terminator is not None and terminator.labels:
                terminator.labels = ("nowhere",) * len(terminator.labels)
                break
        with pytest.raises(VerificationError):
            verify_function(thread, allow_comm=True)

    def test_dropped_consume_detected(self):
        """Removing a consume whose value feeds a computation leaves that
        register undefined in the thread: the defined-before-use check
        notices."""
        f = build_counted_loop()
        body_add = f.block("body").instructions[0]   # r_s += r_i
        others = [i.iid for i in f.instructions()
                  if i.iid != body_add.iid]
        from repro.partition import partition_from_threads
        partition = partition_from_threads(f, 2, [others, [body_add.iid]])
        mt = make_mt(f, partition)
        consumer = mt.threads[1]
        # Drop every consume of r_i: the add's only sources of r_i are
        # the communication channels, so no definition may reach it.
        dropped = 0
        for block in consumer.blocks:
            kept = []
            for instruction in block:
                if instruction.op is Opcode.CONSUME \
                        and instruction.dest == "r_i":
                    dropped += 1
                    continue
                kept.append(instruction)
            block.instructions = kept
        assert dropped >= 1
        with pytest.raises(VerificationError):
            verify_function(consumer, allow_comm=True)
