"""Fine-grained tests of the core timing model: issue slots, ports,
stall-on-use, fences, and the SA port schedule."""

import dataclasses

from repro.ir import Opcode
from repro.machine import DEFAULT_CONFIG, simulate_single
from repro.machine.timing import CoreTiming, SAPortSchedule
from repro.ir import FunctionBuilder


def _core(config=DEFAULT_CONFIG):
    return CoreTiming(0, config, SAPortSchedule(config.sa_ports))


class TestIssueSlots:
    def test_issue_width_enforced(self):
        config = dataclasses.replace(DEFAULT_CONFIG, issue_width=2,
                                     alu_ports=6)
        core = _core(config)
        cycles = [core.find_issue_slot(0.0, "alu", False)
                  for _ in range(5)]
        # 2 per cycle: 0,0,1,1,2
        assert cycles == [0, 0, 1, 1, 2]

    def test_port_limit_enforced(self):
        config = dataclasses.replace(DEFAULT_CONFIG, issue_width=6,
                                     fp_ports=2)
        core = _core(config)
        cycles = [core.find_issue_slot(0.0, "fp", False) for _ in range(5)]
        assert cycles == [0, 0, 1, 1, 2]

    def test_in_order_issue_monotonic(self):
        core = _core()
        first = core.find_issue_slot(10.0, "alu", False)
        second = core.find_issue_slot(0.0, "alu", False)  # earlier ready
        assert second >= first

    def test_fractional_ready_rounds_up(self):
        core = _core()
        assert core.find_issue_slot(3.2, "alu", False) == 4

    def test_ready_time_scoreboard(self):
        core = _core()
        core.reg_ready["r_a"] = 7.0
        assert core.ready_time(("r_a", "r_b")) == 7.0
        assert core.ready_time(("r_b",)) == 0.0


class TestSAPorts:
    def test_ports_shared_per_cycle(self):
        schedule = SAPortSchedule(2)
        assert schedule.next_free(5) == 5
        schedule.book(5)
        schedule.book(5)
        assert schedule.next_free(5) == 6

    def test_comm_ops_respect_sa_ports(self):
        config = dataclasses.replace(DEFAULT_CONFIG, sa_ports=1,
                                     memory_ports=4)
        core = _core(config)
        a = core.find_issue_slot(0.0, "memory", True)
        b = core.find_issue_slot(0.0, "memory", True)
        assert b > a  # one SA port: second comm op slips a cycle


class TestStallOnUse:
    def _chain_function(self, use_result):
        b = FunctionBuilder("chain", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.mul("r_m", "r_a", "r_a")     # 3-cycle latency
        if use_result:
            b.add("r_z", "r_m", 1)     # stalls on the multiply
        else:
            b.add("r_z", "r_a", 1)     # independent
        b.exit()
        return b.build()

    def test_dependent_use_stalls(self):
        dependent = simulate_single(self._chain_function(True), {"r_a": 3})
        independent = simulate_single(self._chain_function(False),
                                      {"r_a": 3})
        assert dependent.cycles > independent.cycles

    def test_memory_fence_orders_after_consume_sync(self):
        """consume.sync has acquire semantics: later memory operations
        wait for the token."""
        core = _core()
        core.mem_fence = 50.0
        # A load's earliest issue respects the fence (exercised via the
        # plain-instruction path in simulate_threads; here check the
        # scoreboard interaction directly).
        slot = core.find_issue_slot(max(0.0, core.mem_fence), "memory",
                                    False)
        assert slot >= 50


class TestLatencies:
    def test_fp_ops_slower_than_int(self):
        b = FunctionBuilder("intchain", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.mov("r_z", "r_a")
        for _ in range(10):
            b.add("r_z", "r_z", 1)
        b.exit()
        int_result = simulate_single(b.build(), {"r_a": 1})

        b = FunctionBuilder("fpchain", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.itof("r_z", "r_a")
        for _ in range(10):
            b.fadd("r_z", "r_z", 1.0)
        b.exit()
        fp_result = simulate_single(b.build(), {"r_a": 1})
        assert fp_result.cycles > int_result.cycles * 2

    def test_division_latency_dominates(self):
        b = FunctionBuilder("divs", params=["r_a"], live_outs=["r_z"])
        b.label("entry")
        b.mov("r_z", "r_a")
        for _ in range(4):
            b.idiv("r_z", "r_z", 1)
        b.exit()
        result = simulate_single(b.build(), {"r_a": 1000})
        assert result.cycles >= 4 * DEFAULT_CONFIG.op_latencies[
            Opcode.IDIV]

    def test_port_pressure_visible_in_wide_code(self):
        """12 independent loads per 'iteration' exceed the 4 memory
        ports; the same count of independent adds fits in 6 ALU ports."""
        def build(op):
            b = FunctionBuilder("wide", params=["p_a"], live_outs=[])
            b.mem("obj", 16, ptr="p_a")
            b.label("entry")
            for i in range(12):
                if op == "load":
                    b.load("r_v%d" % i, "p_a", i)
                else:
                    b.add("r_v%d" % i, "p_a", i)
            b.exit()
            return b.build()
        loads = simulate_single(build("load"), {})
        adds = simulate_single(build("add"), {})
        assert loads.cycles >= adds.cycles
