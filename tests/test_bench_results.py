"""Tests for the schema-versioned ``BENCH_RESULTS.json`` document
(:mod:`repro.bench.results`) and the telemetry serialization it embeds."""

import json

import pytest

from repro.bench import (SCHEMA, BenchResults, Metric, SchemaError,
                         SpecResult)
from repro.pipeline.telemetry import Telemetry


def make_results(mode="smoke"):
    telemetry = Telemetry()
    telemetry.record_run("pdg", 0.25, cache_miss=True)
    telemetry.record_hit("pdg", 0.01)
    telemetry.record_run("simulate-mt", 1.5)
    telemetry.count("pdg_nodes", 42)
    results = BenchResults(mode=mode, host=BenchResults.host_info(),
                           telemetry=telemetry,
                           cache={"hits": 3, "misses": 9, "enabled": 1},
                           total_seconds=2.5)
    results.specs["fig8_speedup"] = SpecResult(
        spec_id="fig8_speedup", title="Figure 8", seconds=1.25,
        metrics={"speedup/gremio/ks": Metric(1.5, unit="x"),
                 "geomean/gremio": Metric(1.21, unit="x")})
    results.specs["compile_time"] = SpecResult(
        spec_id="compile_time", title="Compile time", seconds=0.5,
        metrics={"seconds/pdg_build": Metric(0.125, unit="s",
                                             tolerance=4.0)})
    return results


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        original = make_results()
        restored = BenchResults.from_json(original.to_json())
        assert restored.schema == SCHEMA
        assert restored.mode == "smoke"
        assert restored.host == original.host
        assert restored.cache == {"hits": 3, "misses": 9, "enabled": 1}
        assert restored.total_seconds == pytest.approx(2.5)
        assert set(restored.specs) == {"fig8_speedup", "compile_time"}
        spec = restored.specs["fig8_speedup"]
        assert spec.title == "Figure 8"
        assert spec.metrics["speedup/gremio/ks"] == Metric(1.5, unit="x")
        # Tolerance policy survives the trip (None vs 0.0 vs band).
        timed = restored.specs["compile_time"].metrics["seconds/pdg_build"]
        assert timed.tolerance == pytest.approx(4.0)
        assert timed.unit == "s"

    def test_metric_none_tolerance_round_trips(self):
        metric = Metric(7.0, unit="count", tolerance=None)
        assert Metric.from_dict(metric.as_dict()) == metric
        assert metric.as_dict()["tolerance"] is None

    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "BENCH_RESULTS.json")
        original = make_results()
        original.save(path)
        restored = BenchResults.load(path)
        assert restored.as_dict() == original.as_dict()

    def test_document_is_stable_json(self):
        """Serialization is deterministic (sorted keys) so baseline
        diffs stay reviewable."""
        one = make_results().to_json()
        two = make_results().to_json()
        assert one == two
        assert json.loads(one)["schema"] == SCHEMA

    def test_metric_items_are_flat_and_sorted(self):
        triples = make_results().metric_items()
        assert [(spec, name) for spec, name, _ in triples] == [
            ("compile_time", "seconds/pdg_build"),
            ("fig8_speedup", "geomean/gremio"),
            ("fig8_speedup", "speedup/gremio/ks"),
        ]


class TestSchemaErrors:
    def test_missing_schema_key(self):
        with pytest.raises(SchemaError, match="missing 'schema'"):
            BenchResults.from_dict({"mode": "smoke"})

    def test_schema_mismatch_names_both_versions(self):
        document = make_results().as_dict()
        document["schema"] = "repro.bench/v0"
        with pytest.raises(SchemaError) as excinfo:
            BenchResults.from_dict(document)
        assert "repro.bench/v0" in str(excinfo.value)
        assert SCHEMA in str(excinfo.value)
        assert "--update-baseline" in str(excinfo.value)

    def test_invalid_json(self):
        with pytest.raises(SchemaError, match="invalid JSON"):
            BenchResults.from_json("{not json")

    def test_non_dict_document(self):
        with pytest.raises(SchemaError):
            BenchResults.from_dict([1, 2, 3])


class TestTelemetrySerialization:
    def test_round_trip(self):
        telemetry = Telemetry()
        telemetry.record_run("pdg", 0.5, cache_miss=True)
        telemetry.record_hit("pdg")
        telemetry.record_run("partition", 0.25)
        telemetry.count("channels", 12)
        restored = Telemetry.from_dict(telemetry.to_dict())
        assert restored.to_dict() == telemetry.to_dict()
        assert restored.cache_hits == 1
        assert restored.cache_misses == 1
        assert restored.stages["pdg"].runs == 1
        assert restored.counters["channels"] == 12

    def test_empty_telemetry(self):
        restored = Telemetry.from_dict(Telemetry().to_dict())
        assert restored.stages == {}
        assert restored.counters == {}

    def test_embedded_telemetry_round_trips(self):
        restored = BenchResults.from_json(make_results().to_json())
        assert restored.telemetry is not None
        assert restored.telemetry.cache_hits == 1
        assert restored.telemetry.stages["simulate-mt"].seconds == \
            pytest.approx(1.5)

    def test_document_without_telemetry(self):
        results = BenchResults(mode="smoke")
        restored = BenchResults.from_json(results.to_json())
        assert restored.telemetry is None
