"""Golden snapshots of MTCG output on the papers' running examples.

These pin the exact generated code (thread CFGs + channel placements) for
Figure 3 and Figure 4 of the companion text.  If a deliberate codegen
change alters the output, regenerate with:

    REPRO_REGEN_GOLDENS=1 pytest tests/test_golden_codegen.py

Regeneration rewrites the snapshot and then *still compares against it*
(so the test passes only when the freshly written file round-trips) —
it never skips, which used to let a broken regeneration go green.
"""

import os
import pathlib

import pytest

from repro.ir import Opcode, format_function
from repro.partition import partition_from_threads

from .helpers import build_paper_figure3, build_paper_figure4
from .mt_utils import make_mt

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _render(mt) -> str:
    chunks = []
    for index, thread in enumerate(mt.threads):
        chunks.append("; thread %d" % index)
        chunks.append(format_function(thread))
    chunks.append("; channels")
    for channel in mt.channels:
        chunks.append(";   q%d %s %r T%d->T%d %s" % (
            channel.queue, channel.kind.value, channel.register,
            channel.source_thread, channel.target_thread,
            sorted(channel.points)))
    return "\n".join(chunks) + "\n"


def _figure3_program():
    f = build_paper_figure3()
    store = next(i for i in f.instructions() if i.op is Opcode.STORE)
    others = [i.iid for i in f.instructions() if i.iid != store.iid]
    return make_mt(f, partition_from_threads(f, 2, [others, [store.iid]]))


def _figure4_program():
    f = build_paper_figure4()
    block_of = f.block_of()
    t0 = [i.iid for i in f.instructions()
          if block_of[i.iid] in ("B1", "B2")]
    t1 = [i.iid for i in f.instructions() if i.iid not in t0]
    return make_mt(f, partition_from_threads(f, 2, [t0, t1]))


@pytest.mark.parametrize("name,factory", [
    ("figure3", _figure3_program),
    ("figure4", _figure4_program),
])
def test_codegen_matches_golden(name, factory):
    rendered = _render(factory())
    golden_path = GOLDEN_DIR / ("%s_mtcg.txt" % name)
    if os.environ.get("UPDATE_GOLDEN") \
            and not os.environ.get("REPRO_REGEN_GOLDENS"):
        pytest.fail("UPDATE_GOLDEN is no longer honored (it used to skip "
                    "the comparison after writing, hiding broken "
                    "regenerations); set REPRO_REGEN_GOLDENS=1 instead")
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(rendered)
    if not golden_path.exists():
        pytest.fail("missing golden snapshot %s; generate it with "
                    "REPRO_REGEN_GOLDENS=1 pytest %s"
                    % (golden_path.name, __file__))
    expected = golden_path.read_text()
    assert rendered == expected, (
        "MTCG output changed for %s; if intentional, regenerate with "
        "REPRO_REGEN_GOLDENS=1" % name)
