"""Tests for the COCO communication optimizer: thread-aware analyses,
flow-graph placement, the paper's Figure 3/4 walk-throughs, and semantic
equivalence of COCO-optimized code."""

import pytest

from repro.analysis import DepKind, build_pdg
from repro.coco import optimize
from repro.coco.thread_aware import (live_range_wrt_thread,
                                     safe_range_wrt_thread)
from repro.interp import run_function
from repro.ir import Opcode
from repro.ir.transforms import renumber_iids, split_critical_edges
from repro.machine import run_mt_program
from repro.mtcg import generate
from repro.partition import partition_from_threads

from .helpers import (build_counted_loop, build_memory_loop,
                      build_paper_figure3, build_paper_figure4)
from .mt_utils import round_robin_partition


def _prepare(factory):
    f = factory()
    split_critical_edges(f)
    renumber_iids(f)
    return f


def _coco_mt(f, partition, args):
    profile = run_function(f, args).profile
    pdg = build_pdg(f)
    result = optimize(f, pdg, partition, profile)
    mt = generate(f, pdg, partition, data_channels=result.data_channels,
                  condition_covered=result.condition_covered)
    return result, mt


def _figure4_partition(f):
    block_of = f.block_of()
    loop1 = {"B1", "B2"} | {b for b in block_of.values()
                            if b.startswith("B1__") or b.startswith("B2__")}
    t0, t1 = [], []
    for instruction in f.instructions():
        if block_of[instruction.iid] in loop1:
            t0.append(instruction.iid)
        else:
            t1.append(instruction.iid)
    return partition_from_threads(f, 2, [t0, t1])


class TestThreadAwareAnalyses:
    def test_live_range_wrt_uses(self):
        f = _prepare(build_paper_figure4)
        use = f.block("B4").instructions[0]  # r2 += r1
        live = live_range_wrt_thread(f, "r1", {use.iid})
        # r1 live at B4 entry and B3 entry, not before its B2 definition.
        assert live.at_entry["B4"]
        assert live.at_entry["B3"]
        first = f.block("B1").instructions[0]
        assert not live.before[first.iid]

    def test_safety_after_definition(self):
        f = _prepare(build_paper_figure4)
        partition = _figure4_partition(f)
        add_r1 = f.block("B2").instructions[0]
        safe = safe_range_wrt_thread(f, "r1", partition, 0, set())
        assert safe.after[add_r1.iid]

    def test_unsafe_after_other_thread_definition(self):
        f = _prepare(build_paper_figure3)
        # Put the r1-increment (E) on thread 1, everything else on 0.
        inc = f.block("B2b").instructions[0]
        assert inc.dest == "r1"
        others = [i.iid for i in f.instructions() if i.iid != inc.iid]
        partition = partition_from_threads(f, 2, [others, [inc.iid]])
        safe = safe_range_wrt_thread(f, "r1", partition, 0, set())
        # Right after thread 1's definition, thread 0's r1 is stale.
        assert not safe.after[inc.iid]


class TestFigure4Optimization:
    """The companion text's Figure 4: COCO moves the communication of r1
    out of loop 1, from once-per-iteration down to once."""

    def test_communication_hoisted_out_of_loop(self):
        f = _prepare(build_paper_figure4)
        partition = _figure4_partition(f)
        args = {"r_n": 10, "r_m": 4}
        result, mt = _coco_mt(f, partition, args)

        st = run_function(f, args)
        mt_run = run_mt_program(mt, args)
        assert mt_run.live_outs == st.live_outs

        # r1 is now communicated once, not 10 times.
        r1_channels = [c for c in mt.channels
                       if c.kind is DepKind.REGISTER and c.register == "r1"]
        assert r1_channels
        for channel in r1_channels:
            for point in channel.points:
                assert point.block not in ("B2",), (
                    "communication left inside loop 1: %r" % (channel,))
        produced_r1 = sum(
            1 for _ in range(1))  # count dynamically below
        # Dynamic count: with n=10 iterations, baseline sends r1 10 times;
        # optimized sends it once per loop exit.
        assert mt_run.opcode_counts[Opcode.PRODUCE] <= 3

    def test_baseline_vs_coco_dynamic_communication(self):
        f = _prepare(build_paper_figure4)
        partition = _figure4_partition(f)
        args = {"r_n": 50, "r_m": 10}
        pdg = build_pdg(f)
        baseline = generate(f, pdg, partition)
        base_run = run_mt_program(baseline, args)
        result, mt = _coco_mt(f, partition, args)
        coco_run = run_mt_program(mt, args)
        assert coco_run.live_outs == base_run.live_outs
        assert (coco_run.communication_instructions
                < base_run.communication_instructions / 5)

    def test_loop_removed_from_consumer_thread(self):
        """Hoisting r1 out of loop 1 removes loop 1's replica from the
        consumer thread entirely (the transitive control dependence
        disappears) — the ks/GREMIO effect the paper describes."""
        f = _prepare(build_paper_figure4)
        partition = _figure4_partition(f)
        result, mt = _coco_mt(f, partition, {"r_n": 10, "r_m": 4})
        consumer = mt.threads[1]
        assert not consumer.has_block("B2"), (
            "loop 1 still replicated in the consumer thread")


class TestFigure3Optimization:
    def test_store_thread_needs_no_duplicated_branch(self):
        """Figure 3: communicating r1 at B3's entry (the min cut) makes
        branch D irrelevant to thread 2 and saves the r2 communication."""
        f = _prepare(build_paper_figure3)
        store = next(i for i in f.instructions() if i.op is Opcode.STORE)
        others = [i.iid for i in f.instructions() if i.iid != store.iid]
        partition = partition_from_threads(f, 2, [others, [store.iid]])
        args = {"r_n": 8}
        memory = {"f3_in": [3, 7, 250, 9, 0, 11, 42, 5]}
        pdg = build_pdg(f)
        profile = run_function(f, args, memory).profile
        result = optimize(f, pdg, partition, profile)
        mt = generate(f, pdg, partition,
                      data_channels=result.data_channels,
                      condition_covered=result.condition_covered)
        st = run_function(f, args, memory)
        mt_run = run_mt_program(mt, args, memory)
        assert mt_run.live_outs == st.live_outs
        assert mt_run.memory.snapshot() == st.memory.snapshot()
        # Thread 2 keeps the loop branch (G) but loses the inner branches
        # B (in B1) and D (in B2): no branch with origin at those blocks.
        t1 = mt.threads[1]
        baseline = generate(f, pdg, partition)
        base_run = run_mt_program(baseline, args, memory)
        assert (mt_run.communication_instructions
                <= base_run.communication_instructions)

    def test_never_worse_than_baseline(self):
        f = _prepare(build_paper_figure3)
        args = {"r_n": 8}
        memory = {"f3_in": [3, 7, 250, 9, 0, 11, 42, 5]}
        partition = round_robin_partition(f, 2)
        pdg = build_pdg(f)
        profile = run_function(f, args, memory).profile
        result = optimize(f, pdg, partition, profile)
        mt = generate(f, pdg, partition,
                      data_channels=result.data_channels,
                      condition_covered=result.condition_covered)
        baseline = generate(f, pdg, partition)
        base_run = run_mt_program(baseline, args, memory)
        coco_run = run_mt_program(mt, args, memory)
        assert coco_run.live_outs == base_run.live_outs
        assert (coco_run.communication_instructions
                <= base_run.communication_instructions)


class TestMemoryOptimization:
    def test_memory_sync_channels_correct(self):
        """Split loads and stores of the same array across threads: memory
        sync channels must preserve the final memory image."""
        f = _prepare(build_memory_loop)
        # Remove disambiguation: force both access streams into one region
        # so cross-thread memory dependences appear.
        for instruction in f.instructions():
            if instruction.is_memory():
                instruction.region = "shared"
        stores = [i.iid for i in f.instructions()
                  if i.op is Opcode.STORE]
        others = [i.iid for i in f.instructions() if i.iid not in stores]
        partition = partition_from_threads(f, 2, [others, stores])
        args = {"r_n": 12}
        memory = {"arr_in": list(range(12))}
        pdg = build_pdg(f)
        assert pdg.arcs_of_kind(DepKind.MEMORY)
        profile = run_function(f, args, memory).profile
        result = optimize(f, pdg, partition, profile)
        mt = generate(f, pdg, partition,
                      data_channels=result.data_channels,
                      condition_covered=result.condition_covered)
        st = run_function(f, args, memory)
        mt_run = run_mt_program(mt, args, memory)
        assert mt_run.memory.snapshot() == st.memory.snapshot()


class TestCocoEquivalenceSweep:
    @pytest.mark.parametrize("factory,args,mem", [
        (build_counted_loop, {"r_n": 11}, {}),
        (build_memory_loop, {"r_n": 16}, {"arr_in": list(range(16))}),
        (build_paper_figure3, {"r_n": 6},
         {"f3_in": [1, 200, 3, 9, 150, 7]}),
        (build_paper_figure4, {"r_n": 7, "r_m": 3}, {}),
    ])
    @pytest.mark.parametrize("n_threads", [2, 3])
    def test_round_robin_with_coco(self, factory, args, mem, n_threads):
        f = _prepare(factory)
        partition = round_robin_partition(f, n_threads)
        pdg = build_pdg(f)
        profile = run_function(f, args, mem).profile
        result = optimize(f, pdg, partition, profile)
        mt = generate(f, pdg, partition,
                      data_channels=result.data_channels,
                      condition_covered=result.condition_covered)
        st = run_function(f, args, mem)
        mt_run = run_mt_program(mt, args, mem)
        assert mt_run.live_outs == st.live_outs
        assert mt_run.memory.snapshot() == st.memory.snapshot()
        baseline_run = run_mt_program(generate(f, pdg, partition), args,
                                      mem)
        assert (mt_run.communication_instructions
                <= baseline_run.communication_instructions)
