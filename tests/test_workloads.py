"""Workload oracle tests: every IR kernel matches its pure-Python reference
on train and ref inputs, and the registry matches the papers' Figure 6(b).
"""

import pytest

from repro.interp import run_function
from repro.ir import verify_function
from repro.workloads import (all_workloads, benchmark_table, get_workload,
                             workload_names)

EXPECTED_NAMES = ["177.mesa", "181.mcf", "183.equake", "188.ammp",
                  "300.twolf", "435.gromacs", "458.sjeng", "adpcmdec",
                  "adpcmenc", "ks", "mpeg2enc",
                  # Frontend-compiled synthetic family (PR 9).
                  "syn.argmin", "syn.blur3", "syn.dotsat", "syn.prefix",
                  "syn.quant"]


def _check_against_reference(workload, scale):
    inputs = workload.make_inputs(scale)
    function = workload.build()
    result = run_function(function, inputs.args, inputs.memory)
    expected = workload.reference(inputs)
    for register_name in function.live_outs:
        assert register_name in expected, (
            "reference for %s must provide %s" % (workload.name,
                                                  register_name))
        got = result.live_outs[register_name]
        want = expected[register_name]
        if isinstance(want, float):
            assert got == pytest.approx(want, rel=1e-12), register_name
        else:
            assert got == want, register_name
    for object_name in workload.output_objects:
        want = expected[object_name]
        got = result.mem_object(object_name)[:len(want)]
        for index, (g, w) in enumerate(zip(got, want)):
            if isinstance(w, float):
                assert g == pytest.approx(w, rel=1e-12), (
                    "%s[%d]" % (object_name, index))
            else:
                assert g == w, "%s[%d]" % (object_name, index)
    return result


class TestRegistry:
    def test_all_expected_workloads_present(self):
        assert workload_names() == EXPECTED_NAMES

    def test_functions_verify(self):
        for workload in all_workloads():
            verify_function(workload.build())

    def test_benchmark_table_lists_functions(self):
        table = benchmark_table()
        assert "adpcm_decoder" in table
        assert "refresh_potential" in table
        assert "inl1130" in table

    def test_exec_percentages_match_paper(self):
        paper = {"adpcmdec": 100, "adpcmenc": 100, "ks": 100,
                 "mpeg2enc": 58, "177.mesa": 32, "181.mcf": 32,
                 "183.equake": 63, "188.ammp": 79, "300.twolf": 30,
                 "435.gromacs": 75, "458.sjeng": 26}
        for name, percent in paper.items():
            assert get_workload(name).exec_percent == percent


@pytest.mark.parametrize("name", EXPECTED_NAMES)
class TestOracles:
    def test_train_inputs_match_reference(self, name):
        _check_against_reference(get_workload(name), "train")

    def test_ref_inputs_match_reference(self, name):
        _check_against_reference(get_workload(name), "ref")

    def test_ref_larger_than_train(self, name):
        workload = get_workload(name)
        function = workload.build()
        train = workload.make_inputs("train")
        ref = workload.make_inputs("ref")
        train_run = run_function(function, train.args, train.memory)
        ref_run = run_function(function, ref.args, ref.memory)
        assert ref_run.dynamic_instructions > train_run.dynamic_instructions


class TestDynamicSizes:
    def test_ref_workloads_are_simulation_sized(self):
        """Ref runs must be big enough to be meaningful but small enough
        for cycle-level simulation in CI (single-digit seconds each)."""
        for workload in all_workloads():
            inputs = workload.make_inputs("ref")
            result = run_function(workload.build(), inputs.args,
                                  inputs.memory)
            assert 3_000 <= result.dynamic_instructions <= 400_000, (
                workload.name, result.dynamic_instructions)
