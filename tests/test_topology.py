"""The topology-aware machine model: presets, flat cycle-invariance,
crossing penalties, per-cluster queue capacity, thread placement, and
the API surface that carries a topology through the pipeline."""

import dataclasses

import pytest

from repro.api import (EvaluateRequest, PLACERS, ProgramSpec,
                       RequestValidationError,
                       TOPOLOGIES, evaluate_workload, get_topology,
                       get_workload, parallelize, topology_names)
from repro.machine import (DEFAULT_CONFIG, Placement,
                           PlacementError, Topology, TopologyError,
                           config_table, identity_placement,
                           make_placement)
from repro.mtcg.queues import QueueAllocationError, check_cluster_capacity


class TestTopology:
    def test_presets_validate(self):
        for name, topology in TOPOLOGIES.items():
            assert topology.validate() is topology
            assert topology.name == name
        assert topology_names() == tuple(sorted(TOPOLOGIES))
        assert TOPOLOGIES["paper-dual"].n_cores == 2
        assert TOPOLOGIES["quad-flat"].n_clusters == 1
        assert TOPOLOGIES["quad-2x2"].clusters == ((0, 1), (2, 3))
        assert TOPOLOGIES["octa-hier"].n_cores == 8
        with pytest.raises(TopologyError):
            get_topology("nonexistent")

    def test_validation_rejects_malformed(self):
        with pytest.raises(TopologyError):
            Topology("bad", clusters=()).validate()
        with pytest.raises(TopologyError):
            Topology("bad", clusters=((0, 2),)).validate()  # gap
        with pytest.raises(TopologyError):
            Topology("bad", clusters=((0,), (0,))).validate()  # dup
        with pytest.raises(TopologyError):
            Topology("bad", clusters=((0, 1),), sa_ports=0).validate()
        with pytest.raises(TopologyError):
            # A single cluster cannot carry an inter-cluster penalty.
            Topology("bad", clusters=((0, 1),),
                     inter_cluster_latency=4).validate()

    def test_crossing_and_domains(self):
        quad = TOPOLOGIES["quad-2x2"]
        assert quad.crossing(0, 1) == 0
        assert quad.crossing(1, 2) == quad.inter_cluster_latency == 4
        assert quad.cluster_of(3) == 1
        assert quad.cluster_map() == {0: 0, 1: 0, 2: 1, 3: 1}
        assert quad.cache_domains() == ((0, 1), (2, 3))  # private L3s
        flat = TOPOLOGIES["quad-flat"]
        assert flat.crossing(0, 3) == 0
        assert flat.cache_domains() == ((0, 1, 2, 3),)
        with pytest.raises(TopologyError):
            quad.cluster_of(7)

    def test_flat_resolution_matches_config_scalars(self):
        config = dataclasses.replace(DEFAULT_CONFIG, n_cores=3,
                                     sa_queues=17, sa_ports=2,
                                     sa_access_latency=5)
        topology = config.resolve_topology()
        assert topology.n_clusters == 1
        assert topology.n_cores == 3
        assert topology.sa_queues == 17
        assert topology.sa_ports == 2
        assert topology.sa_access_latency == 5
        assert config.crossing_cycles(0, 2) == 0

    def test_explicit_topology_wins(self):
        config = dataclasses.replace(DEFAULT_CONFIG,
                                     topology=TOPOLOGIES["quad-2x2"])
        assert config.resolve_topology() is TOPOLOGIES["quad-2x2"]
        assert config.crossing_cycles(0, 2) == 4

    def test_config_table_rows(self):
        table = config_table()
        assert "Operand Network" in table
        assert "Branch Handling" in table
        assert "Topology" in table
        clustered = config_table(dataclasses.replace(
            DEFAULT_CONFIG, n_cores=4, topology=TOPOLOGIES["quad-2x2"]))
        assert "2 cluster(s)" in clustered
        assert "inter-cluster +4 cycles" in clustered


class TestPlacement:
    def test_identity(self):
        placement = identity_placement(4, TOPOLOGIES["quad-2x2"])
        assert placement.cores == (0, 1, 2, 3)
        assert placement.n_threads == 4
        assert placement.core_of(2) == 2
        with pytest.raises(PlacementError):
            identity_placement(3, TOPOLOGIES["paper-dual"])

    def test_make_placement_validates(self):
        with pytest.raises(PlacementError):
            make_placement("nonexistent", 2, TOPOLOGIES["quad-2x2"])
        with pytest.raises(PlacementError):
            # affinity needs the pdg/partition/profile context
            make_placement("affinity", 2, TOPOLOGIES["quad-2x2"])
        assert set(PLACERS) == {"identity", "affinity"}

    def test_affinity_collapses_to_identity_on_flat(self):
        placement = make_placement("affinity", 2,
                                   TOPOLOGIES["paper-dual"],
                                   pdg=object(), partition=object(),
                                   profile=object())
        assert placement.cores == (0, 1)
        assert placement.placer == "affinity"

    def test_signature_is_deterministic(self):
        a = Placement((0, 2), "affinity", "quad-2x2")
        b = Placement((0, 2), "affinity", "quad-2x2")
        assert a.signature() == b.signature()
        assert a.signature() != Placement((0, 1), "affinity",
                                          "quad-2x2").signature()


class TestClusterCapacity:
    class _Channel:
        def __init__(self, queue, source_thread, target_thread):
            self.queue = queue
            self.source_thread = source_thread
            self.target_thread = target_thread

    def test_within_capacity(self):
        quad = TOPOLOGIES["quad-2x2"]
        channels = [self._Channel(q, 0, 1) for q in range(8)]
        usage = check_cluster_capacity(channels, quad)
        assert usage == {0: 8}

    def test_over_capacity_raises(self):
        tiny = dataclasses.replace(TOPOLOGIES["quad-2x2"], sa_queues=2)
        channels = [self._Channel(q, 2, 3) for q in range(3)]
        with pytest.raises(QueueAllocationError) as error:
            check_cluster_capacity(channels, tiny)
        assert "cluster 1" in str(error.value)


class TestTopologyPipeline:
    def test_flat_default_is_cycle_invariant(self):
        """An explicit flat preset must reproduce the legacy flat run
        bit-for-bit (the tentpole's central invariant)."""
        workload = get_workload("ks")
        legacy = evaluate_workload(workload, technique="gremio",
                                   n_threads=2, scale="train")
        preset = evaluate_workload(workload, technique="gremio",
                                   n_threads=2, scale="train",
                                   topology="paper-dual")
        assert preset.mt_result.cycles == legacy.mt_result.cycles
        assert preset.st_result.cycles == legacy.st_result.cycles

    def test_clustered_run_completes_and_differs(self):
        workload = get_workload("ks")
        flat = evaluate_workload(workload, technique="gremio",
                                 n_threads=4, scale="train",
                                 topology="quad-flat")
        clustered = evaluate_workload(workload, technique="gremio",
                                      n_threads=4, scale="train",
                                      topology="quad-2x2")
        # Correctness holds on both machines; the clustered machine's
        # crossings make it at least as slow as the flat quad.
        assert clustered.mt_result.live_outs == flat.mt_result.live_outs
        assert clustered.mt_result.cycles >= flat.mt_result.cycles

    def test_affinity_never_loses_to_identity(self):
        workload = get_workload("ks")
        results = {}
        for placer in PLACERS:
            results[placer] = evaluate_workload(
                workload, technique="gremio", n_threads=4,
                scale="train", topology="quad-2x2", placer=placer)
        assert (results["affinity"].mt_result.cycles
                <= results["identity"].mt_result.cycles)

    def test_placement_stage_fingerprinted(self):
        workload = get_workload("ks")
        evaluation = evaluate_workload(workload, technique="gremio",
                                       n_threads=2, scale="train")
        assert evaluation.fingerprints.get("placement")

    def test_parallelize_accepts_topology(self):
        function = get_workload("ks").build()
        result = parallelize(function, technique="dswp", n_threads=4,
                             topology="quad-2x2")
        assert result.config.topology is TOPOLOGIES["quad-2x2"]


class TestEvaluateRequestTopology:
    def test_round_trip_and_key(self):
        request = EvaluateRequest(program=ProgramSpec.registry("ks"), n_threads=4,
                                  topology="quad-2x2",
                                  placer="affinity").validate()
        assert EvaluateRequest.from_dict(request.as_dict()) == request
        cell = request.cell()
        assert cell.topology == "quad-2x2"
        assert cell.placer == "affinity"
        assert EvaluateRequest.from_cell(cell) == request
        flat = EvaluateRequest(program=ProgramSpec.registry("ks"), n_threads=4)
        assert request.request_key() != flat.request_key()

    def test_validation(self):
        with pytest.raises(RequestValidationError):
            EvaluateRequest(program=ProgramSpec.registry("ks"),
                            topology="nonexistent").validate()
        with pytest.raises(RequestValidationError):
            # 4 threads do not fit the papers' dual-core machine.
            EvaluateRequest(program=ProgramSpec.registry("ks"), n_threads=4,
                            topology="paper-dual").validate()
        with pytest.raises(RequestValidationError):
            EvaluateRequest(program=ProgramSpec.registry("ks"), placer="random").validate()
