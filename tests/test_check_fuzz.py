"""Tests for the differential fuzzing driver (:mod:`repro.check.fuzz`)
and its sketch persistence / shrinking machinery."""

import json
import random

import pytest

import repro.check.fuzz as fuzz_mod
from repro.check.fuzz import FuzzReport, _Cell, _shrink, run_fuzz
from repro.check.generate import (ProgramSketch, random_sketch,
                                  render_program, shrink_candidates,
                                  sketch_from_json, sketch_size,
                                  sketch_to_json)
from repro.ir.printer import format_function


class TestRunFuzz:
    def test_clean_run_with_corpus(self, tmp_path):
        report = run_fuzz(seed=0, iterations=3, corpus_dir=str(tmp_path))
        assert report.ok, [f.detail for f in report.failures]
        # 2 techniques x 2 coco modes + 2 random partitions x 2 coco.
        assert report.cells_run == 3 * 8
        assert report.programs_generated == 3
        assert report.counters["oracle_ok"] == report.cells_run
        assert report.counters["programs_validated"] == report.cells_run
        data = json.loads((tmp_path / "report.json").read_text())
        assert data["failures"] == []
        assert data["cells_run"] == report.cells_run
        assert data["counters"] == report.counters

    def test_deterministic_in_seed(self):
        first = run_fuzz(seed=7, iterations=2)
        second = run_fuzz(seed=7, iterations=2)
        assert first.counters == second.counters
        assert first.cells_run == second.cells_run

    def test_injected_failure_is_persisted_and_shrunk(self, monkeypatch,
                                                      tmp_path):
        """Force every cell to fail: the driver must shrink, record the
        failure, and write both the JSON reproducer and the rendered IR
        into the corpus."""
        def always_fail(sketch, cell, report=None):
            return {"kind": "synthetic", "detail": "injected"}

        monkeypatch.setattr(fuzz_mod, "_evaluate_cell", always_fail)
        report = run_fuzz(seed=0, iterations=1,
                          corpus_dir=str(tmp_path))
        assert not report.ok
        assert len(report.failures) == 8
        failure = report.failures[0]
        assert failure.kind == "synthetic"
        assert failure.shrunk_size <= failure.original_size
        stems = {p.name for p in tmp_path.iterdir()}
        assert "report.json" in stems
        assert any(name.startswith("failure-000-") and
                   name.endswith(".json") for name in stems)
        assert any(name.endswith(".ir.txt") for name in stems)
        payload = json.loads(
            (tmp_path / sorted(n for n in stems
                               if n.startswith("failure-000-")
                               and n.endswith(".json"))[0]).read_text())
        assert payload["kind"] == "synthetic"
        assert "sketch" in payload and "args" in payload


class TestShrinking:
    def test_candidates_are_strictly_smaller(self):
        rng = random.Random(3)
        sketch = random_sketch(rng, depth=2)
        size = sketch_size(sketch)
        candidates = list(shrink_candidates(sketch))
        assert candidates
        for candidate in candidates:
            assert sketch_size(candidate) < size

    def test_greedy_shrink_reaches_minimal_reproducer(self, monkeypatch):
        """With a synthetic predicate ('fails iff a store exists
        anywhere'), greedy deletion must converge to the single store
        statement."""
        def has_store(statements):
            for statement in statements:
                if statement[0] == "store":
                    return True
                if statement[0] == "if" and (has_store(statement[2])
                                             or has_store(statement[3])):
                    return True
                if statement[0] == "loop" and has_store(statement[2]):
                    return True
            return False

        def fake_evaluate(sketch, cell, report=None):
            if has_store(sketch.statements):
                return {"kind": "synthetic", "detail": "store present"}
            return None

        monkeypatch.setattr(fuzz_mod, "_evaluate_cell", fake_evaluate)
        sketch = ProgramSketch([
            ("alu", "add", 0, 1, 2),
            ("loop", 3, [("movi", 2, 5),
                         ("if", 1, [("store", 0, 1)], [("movi", 3, 1)])]),
            ("movi", 4, -2),
        ])
        cell = _Cell("synthetic", None, 1, 2, False, 32, {})
        report = FuzzReport(0, 0)
        shrunk = _shrink(sketch, cell, report)
        assert sketch_size(shrunk) == 1
        assert shrunk.statements[0][0] == "store"
        assert report.shrink_attempts > 0


class TestSketchPersistence:
    def test_json_roundtrip_preserves_structure(self):
        for seed in range(10):
            sketch = random_sketch(random.Random(seed), depth=2)
            restored = sketch_from_json(sketch_to_json(sketch))
            assert restored.statements == sketch.statements

    def test_json_roundtrip_preserves_rendering(self):
        sketch = random_sketch(random.Random(42), depth=2)
        restored = sketch_from_json(sketch_to_json(sketch))
        assert (format_function(render_program(restored))
                == format_function(render_program(sketch)))


class TestFuzzCLI:
    def test_fuzz_command_exit_code_and_report(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["fuzz", "--seed", "0", "--iterations", "2",
                     "--corpus", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz: seed 0" in out
        assert (tmp_path / "report.json").exists()

    @pytest.mark.slow
    @pytest.mark.fuzz
    def test_smoke_profile(self, tmp_path):
        """The CI smoke configuration (seed 0), scaled down: zero
        failures is the acceptance bar."""
        report = run_fuzz(seed=0, iterations=10,
                          corpus_dir=str(tmp_path))
        assert report.ok, [f.detail for f in report.failures]
