"""Tests for PDG construction: arc kinds, adjacency, and the running
examples' dependence structure."""

from repro.analysis import DepKind, build_pdg
from repro.ir import Opcode

from .helpers import (build_counted_loop, build_diamond, build_memory_loop,
                      build_nested_loops, build_paper_figure3,
                      build_paper_figure4, build_straightline)


class TestRegisterArcs:
    def test_straightline_chain(self):
        f = build_straightline()
        pdg = build_pdg(f)
        add, mul, sub, _exit = list(f.instructions())
        arcs = {(a.source, a.target) for a in
                pdg.arcs_of_kind(DepKind.REGISTER)}
        assert (add.iid, mul.iid) in arcs       # r_x into the multiply
        assert (mul.iid, sub.iid) in arcs       # r_y into the subtract
        # live-outs reach the exit
        assert (sub.iid, _exit.iid) in arcs
        assert (mul.iid, _exit.iid) in arcs

    def test_loop_carried_register_arc(self):
        f = build_counted_loop()
        pdg = build_pdg(f)
        body = f.block("body")
        add_s = body.instructions[0]
        arcs = {(a.source, a.target) for a in
                pdg.arcs_of_kind(DepKind.REGISTER)}
        # s += i depends on itself around the back edge only via the exit
        # use; the increment's def must reach the header compare.
        add_i = body.instructions[1]
        header_cmp = f.block("header").instructions[0]
        assert (add_i.iid, header_cmp.iid) in arcs

    def test_figure3_has_paper_arcs(self):
        """The companion text's Figure 3(b): register arcs (A->F), (E->F)
        on r1 and the control structure around D."""
        f = build_paper_figure3()
        pdg = build_pdg(f)
        load_a = next(i for i in f.instructions()
                      if i.op is Opcode.LOAD and i.dest == "r1")
        inc_e = f.block("B2b").instructions[0]
        store_f = next(i for i in f.instructions() if i.op is Opcode.STORE)
        register_arcs = {(a.source, a.target, a.register)
                         for a in pdg.arcs_of_kind(DepKind.REGISTER)}
        assert (load_a.iid, store_f.iid, "r1") in register_arcs
        assert (inc_e.iid, store_f.iid, "r1") in register_arcs


class TestControlArcs:
    def test_branch_controls_arm_instructions(self):
        f = build_diamond()
        pdg = build_pdg(f)
        branch = f.block("entry").terminator
        control = {(a.source, a.target)
                   for a in pdg.arcs_of_kind(DepKind.CONTROL)}
        for arm in ("then", "else_"):
            for instruction in f.block(arm):
                assert (branch.iid, instruction.iid) in control

    def test_join_not_controlled(self):
        f = build_diamond()
        pdg = build_pdg(f)
        branch = f.block("entry").terminator
        join_add = f.block("join").instructions[0]
        control = {(a.source, a.target)
                   for a in pdg.arcs_of_kind(DepKind.CONTROL)}
        assert (branch.iid, join_add.iid) not in control

    def test_loop_branch_controls_its_own_header(self):
        f = build_counted_loop()
        pdg = build_pdg(f)
        branch = f.block("header").terminator
        cmp_ = f.block("header").instructions[0]
        control = {(a.source, a.target)
                   for a in pdg.arcs_of_kind(DepKind.CONTROL)}
        assert (branch.iid, cmp_.iid) in control  # loop-carried control


class TestAdjacency:
    def test_successors_map_filters_by_kind(self):
        f = build_memory_loop()
        pdg = build_pdg(f)
        all_succ = pdg.successors_map()
        reg_succ = pdg.successors_map({DepKind.REGISTER})
        total_all = sum(len(v) for v in all_succ.values())
        total_reg = sum(len(v) for v in reg_succ.values())
        assert total_reg < total_all

    def test_in_out_arcs_consistent(self):
        f = build_nested_loops()
        pdg = build_pdg(f)
        for arc in pdg.arcs:
            assert arc in pdg.out_arcs(arc.source)
            assert arc in pdg.in_arcs(arc.target)

    def test_cross_thread_arcs(self):
        f = build_paper_figure4()
        pdg = build_pdg(f)
        assignment = {i.iid: 0 for i in f.instructions()}
        assert pdg.cross_thread_arcs(assignment) == []
        # Move one use to thread 1: the arcs into it become cross-thread.
        use = f.block("B4").instructions[0]
        assignment[use.iid] = 1
        crossing = pdg.cross_thread_arcs(assignment)
        assert crossing
        assert all(a.target == use.iid or a.source == use.iid
                   for a in crossing)

    def test_arcs_deduplicated_and_sorted(self):
        f = build_paper_figure3()
        pdg = build_pdg(f)
        keys = [a.key() for a in pdg.arcs]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
