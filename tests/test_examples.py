"""Smoke tests: the shipped examples run to completion.

Each example is executed in-process (via runpy) with argv pinned to a fast
configuration; the assertions inside the examples (correctness checks) do
the real validation.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", ["quickstart.py", "ks"]),
    ("examples/coco_walkthrough.py", ["coco_walkthrough.py"]),
    ("examples/custom_partitioner.py", ["custom_partitioner.py"]),
]


@pytest.mark.parametrize("path,argv", EXAMPLES)
def test_example_runs(path, argv, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"


def test_quickstart_reports_all_configurations(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "mpeg2enc"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    for label in ("gremio", "gremio+coco", "dswp", "dswp+coco"):
        assert label in out
