"""Unit tests for the single-threaded interpreter and profiler."""

import pytest

from repro.interp import (ExecutionLimitExceeded, TrapError, run_function,
                          static_profile)
from repro.ir import FunctionBuilder

from .helpers import (build_counted_loop, build_diamond, build_memory_loop,
                      build_nested_loops, build_paper_figure4,
                      build_straightline)


class TestExecution:
    def test_straightline(self):
        r = run_function(build_straightline(), {"r_a": 2, "r_b": 3})
        # x = a + b = 5; y = x * 3 = 15; x = y - a = 13
        assert r.live_outs == {"r_x": 13, "r_y": 15}
        assert r.dynamic_instructions == 4

    @pytest.mark.parametrize("a,expected", [(5, 6), (-4, 5), (0, 1)])
    def test_diamond_both_sides(self, a, expected):
        r = run_function(build_diamond(), {"r_a": a})
        assert r.live_outs["r_x"] == expected

    def test_counted_loop(self):
        r = run_function(build_counted_loop(), {"r_n": 10})
        assert r.live_outs["r_s"] == sum(range(10))

    def test_counted_loop_zero_trips(self):
        r = run_function(build_counted_loop(), {"r_n": 0})
        assert r.live_outs["r_s"] == 0

    def test_nested_loops(self):
        r = run_function(build_nested_loops(), {"r_n": 4, "r_m": 5})
        expected = sum(i * j for i in range(4) for j in range(5))
        assert r.live_outs["r_s"] == expected

    def test_memory_loop(self):
        f = build_memory_loop()
        data = list(range(10))
        r = run_function(f, {"r_n": 10}, initial_memory={"arr_in": data})
        assert r.mem_object("arr_out")[:10] == [2 * v for v in data]

    def test_figure4_semantics(self):
        r = run_function(build_paper_figure4(), {"r_n": 10, "r_m": 4})
        assert r.live_outs["r1"] == 30
        assert r.live_outs["r2"] == 30 * 4

    def test_step_limit(self):
        b = FunctionBuilder("spin")
        b.label("entry")
        b.movi("r_x", 1)
        b.jmp("loop")
        b.label("loop")
        b.br("r_x", "loop", "done")
        b.label("done")
        b.exit()
        with pytest.raises(ExecutionLimitExceeded):
            run_function(b.build(), max_steps=1000)

    def test_division_semantics_truncate_toward_zero(self):
        b = FunctionBuilder("divs", params=["r_a", "r_b"],
                            live_outs=["r_q", "r_r"])
        b.label("entry")
        b.idiv("r_q", "r_a", "r_b")
        b.imod("r_r", "r_a", "r_b")
        b.exit()
        f = b.build()
        r = run_function(f, {"r_a": -7, "r_b": 2})
        assert r.live_outs == {"r_q": -3, "r_r": -1}  # C semantics

    def test_division_by_zero_traps(self):
        b = FunctionBuilder("div0", params=["r_a"], live_outs=["r_q"])
        b.label("entry")
        b.idiv("r_q", "r_a", 0)
        b.exit()
        with pytest.raises(TrapError):
            run_function(b.build(), {"r_a": 1})

    def test_float_ops(self):
        b = FunctionBuilder("fops", params=["r_a"], live_outs=["r_x"])
        b.label("entry")
        b.itof("r_f", "r_a")
        b.fmul("r_f", "r_f", 2.0)
        b.fadd("r_f", "r_f", 1.0)
        b.fsqrt("r_x", "r_f")
        b.exit()
        r = run_function(b.build(), {"r_a": 4})
        assert r.live_outs["r_x"] == pytest.approx(3.0)

    def test_out_of_bounds_store_raises(self):
        f = build_memory_loop()
        with pytest.raises(Exception):
            run_function(f, {"r_n": 1000},
                         initial_memory={"arr_in": [0] * 64})

    def test_trace_records_iids(self):
        r = run_function(build_straightline(), {"r_a": 1, "r_b": 1},
                         keep_trace=True)
        assert len(r.trace) == 4
        assert r.trace == sorted(r.trace)


class TestProfile:
    def test_loop_profile_counts(self):
        r = run_function(build_counted_loop(), {"r_n": 7})
        p = r.profile
        assert p.block_weight("header") == 8   # 7 body trips + exit check
        assert p.block_weight("body") == 7
        assert p.edge_weight("body", "header") == 7
        assert p.edge_weight("header", "done") == 1

    def test_diamond_profile_one_sided(self):
        r = run_function(build_diamond(), {"r_a": 3})
        assert r.profile.block_weight("then") == 1
        assert r.profile.block_weight("else_") == 0

    def test_static_profile_scales_with_depth(self):
        f = build_nested_loops()
        p = static_profile(f)
        assert p.block_weight("inner_body") > p.block_weight("outer_body")
        assert p.block_weight("outer_body") > p.block_weight("entry")

    def test_profile_scaled(self):
        r = run_function(build_counted_loop(), {"r_n": 5})
        doubled = r.profile.scaled(2.0)
        assert doubled.block_weight("body") == 10
