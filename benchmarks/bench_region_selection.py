"""EXT-E6: region selection — whole procedure vs outlined hottest loop.

GREMIO's pitch over loop-centric DSWP is scheduling *whole procedures*;
DSWP is defined on loops.  This experiment applies DSWP both to the whole
function and to its outlined hottest loop (via the region-extraction
substrate) and compares what each region choice yields.
"""

from harness import run_once

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.ir.outline import OutlineError, outline_hottest_loop
from repro.machine import DEFAULT_CONFIG, simulate_program, simulate_single
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.pipeline import normalize
from repro.report import table
from repro.workloads import get_workload

BENCHES = ("181.mcf", "183.equake", "adpcmdec", "mpeg2enc")


def _whole_function_speedup(workload):
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    config = DEFAULT_CONFIG.for_dswp()
    partition = DSWPPartitioner(config).partition(function, pdg, profile, 2)
    program = generate(function, pdg, partition)
    st = simulate_single(function, ref.args, ref.memory, config=config)
    mt = simulate_program(program, ref.args, ref.memory, config=config)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


def _outlined_loop_speedup(workload):
    """Outline the hottest loop of the (normalized) function, then run the
    pipeline on the outlined region alone."""
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    profile = run_function(function, train.args, train.memory).profile
    extracted = outline_hottest_loop(function, profile)
    loop_fn = extracted.function

    # Live-in values for the loop come from executing the pre-loop code;
    # for these kernels the prefix is loop setup, so live-ins are either
    # parameters or constants discoverable from a (train) run's registers.
    st_probe = run_function(function, train.args, train.memory,
                            keep_trace=False)

    def loop_args(inputs):
        full = run_function(function, inputs.args, inputs.memory)
        del full
        # Re-derive initial values: interpret until the loop header is
        # first reached.  (Simplified: the kernels initialize their
        # loop-carried registers to constants or direct parameter copies,
        # so executing the entry block suffices; we replay it.)
        from repro.interp.context import ThreadContext
        from repro.interp.state import bind_params, make_memory
        memory = make_memory(function, inputs.memory)
        regs = bind_params(function, dict(inputs.args))
        context = ThreadContext(function, regs, memory, None)
        while context.block.label != extracted.header:
            context.step()
        return ({name: regs.get(name, 0)
                 for name in loop_fn.params
                 if name not in loop_fn.pointer_params}, memory)

    args, memory = loop_args(workload.make_inputs("ref"))
    # Share the already-initialized memory image.
    profile_args, profile_memory = loop_args(train)
    loop_profile = None
    from repro.interp.profile import EdgeProfile
    # Profile the loop function directly on its own inputs.
    config = DEFAULT_CONFIG.for_dswp()
    pdg = build_pdg(loop_fn)
    train_regs, train_memory = profile_args, profile_memory
    loop_profile = _profile_with_memory(loop_fn, train_regs, train_memory)
    partition = DSWPPartitioner(config).partition(loop_fn, pdg,
                                                  loop_profile, 2)
    program = generate(loop_fn, pdg, partition)
    st = _timed_with_memory(simulate_single, loop_fn, args, memory, config)
    mt = _timed_with_memory(simulate_program, program, args, memory,
                            config)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


def _profile_with_memory(function, args, memory):
    """Interpret with a pre-built memory image (objects already laid out).
    """
    from repro.interp.context import ThreadContext
    from repro.interp.profile import EdgeProfile
    import copy
    mem_copy = copy.deepcopy(memory)
    regs = dict(args)
    for param, obj_name in function.pointer_params.items():
        regs[param] = function.mem_objects[obj_name].base
    context = ThreadContext(function, regs, mem_copy, None)
    profile = EdgeProfile(function)
    profile.count_block(context.block.label)
    from repro.ir import Opcode
    while not context.exited:
        previous = context.block.label
        result = context.step()
        instruction = result.instruction
        if instruction is not None and instruction.op in (Opcode.BR,
                                                          Opcode.JMP):
            profile.count_edge(previous, context.block.label)
            profile.count_block(context.block.label)
    return profile


def _timed_with_memory(simulator, target, args, memory, config):
    import copy
    mem_copy = copy.deepcopy(memory)
    from repro.machine.timing import simulate_threads
    if simulator is simulate_single:
        function = target
        regs_args = args
        # simulate_threads lays out memory itself via make_memory; here we
        # inject the existing image by pre-copying object contents.
        initial = _image_to_initial(function, mem_copy)
        return simulate_single(function, regs_args, initial, config=config)
    initial = _image_to_initial(target.original, mem_copy)
    return simulate_program(target, args, initial, config=config)


def _image_to_initial(function, memory):
    return {name: memory.read_array(obj.base, obj.size)
            for name, obj in function.mem_objects.items()}


def _sweep():
    rows = []
    for name in BENCHES:
        workload = get_workload(name)
        whole = _whole_function_speedup(workload)
        try:
            loop = _outlined_loop_speedup(workload)
        except OutlineError:
            loop = float("nan")
        rows.append((name, whole, loop))
    return rows


def test_region_selection(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(table(["benchmark", "whole function", "outlined hottest loop"],
                [(n, "%.3f" % w, "%.3f" % l) for n, w, l in rows],
                title="EXT-E6: DSWP speedup by scheduled region"))
    # Region choice matters little for these single-hot-loop kernels —
    # the loop region captures (almost) all the parallelism the whole
    # function has.
    for name, whole, loop in rows:
        assert loop == loop, name  # not NaN: outlining worked
        assert loop >= whole * 0.8, (name, whole, loop)
