"""EXT-E6: region selection — whole procedure vs outlined hottest loop.

GREMIO's pitch over loop-centric DSWP is scheduling *whole procedures*;
DSWP is defined on loops.  This experiment applies DSWP both to the whole
function and to its outlined hottest loop (via the region-extraction
substrate) and compares what each region choice yields.

The outlining/replay machinery moved into the ``region_selection`` spec
(:mod:`repro.bench.specs.ablations`); this module renders the table and
asserts the shape.
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import REGION_BENCHES
from repro.report import table


def test_region_selection(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("region_selection").collect(FULL))
    rows = [(name,
             metrics["speedup/whole/%s" % name].value,
             metrics["speedup/outlined/%s" % name].value)
            for name in REGION_BENCHES]
    print()
    print(table(["benchmark", "whole function", "outlined hottest loop"],
                [(n, "%.3f" % w, "%.3f" % o) for n, w, o in rows],
                title="EXT-E6: DSWP speedup by scheduled region"))
    # Region choice matters little for these single-hot-loop kernels —
    # the loop region captures (almost) all the parallelism the whole
    # function has.
    for name, whole, loop in rows:
        assert loop == loop, name  # not NaN: outlining worked
        assert loop >= whole * 0.8, (name, whole, loop)
