"""EXT-E1: thread-count scaling (2 -> 3 -> 4 threads).

The papers evaluate two threads and conjecture that more threads increase
the communication fraction (more inter-thread dependences to satisfy).
This extension experiment measures both techniques at 2/3/4 threads and
checks that conjecture — the communication fraction does not shrink as
threads are added — while correctness holds throughout.
"""

from harness import evaluation, run_once

from repro.report import table

SCALING_BENCHES = ["ks", "181.mcf", "435.gromacs", "188.ammp"]


def _scaling(technique):
    rows = []
    for name in SCALING_BENCHES:
        entry = [name]
        for n_threads in (2, 3, 4):
            ev = evaluation(name, technique, coco=False,
                            n_threads=n_threads)
            entry.append(ev.speedup)
            entry.append(100.0 * ev.communication_fraction)
        rows.append(entry)
    return rows


def test_scaling_gremio(benchmark):
    rows = run_once(benchmark, lambda: _scaling("gremio"))
    print()
    print(table(["benchmark", "2T x", "2T comm%", "3T x", "3T comm%",
                 "4T x", "4T comm%"],
                [(r[0], "%.3f" % r[1], "%.1f" % r[2], "%.3f" % r[3],
                  "%.1f" % r[4], "%.3f" % r[5], "%.1f" % r[6])
                 for r in rows],
                title="EXT-E1 (GREMIO): thread-count scaling"))
    for row in rows:
        # More threads must never break correctness (asserted inside the
        # evaluation) nor collapse performance catastrophically.
        assert min(row[1], row[3], row[5]) > 0.5


def test_coco_at_higher_thread_counts(benchmark):
    """The papers conjecture that more threads mean a larger communication
    fraction (verified in the scaling tests above) and expect COCO's
    benefits "to be more pronounced".  Measured nuance: the *fraction*
    indeed grows, but the communication COCO can actually remove shrinks
    at 4 threads for DSWP — the added traffic is per-iteration cross-stage
    values whose at-definition placement is already the min cut.  COCO
    must still never increase communication at any thread count."""
    def measure():
        removed = {2: 0, 4: 0}
        for name in SCALING_BENCHES:
            for n_threads in (2, 4):
                base = evaluation(name, "dswp", coco=False,
                                  n_threads=n_threads)
                opt = evaluation(name, "dswp", coco=True,
                                 n_threads=n_threads)
                delta = (base.communication_instructions
                         - opt.communication_instructions)
                assert delta >= 0, (name, n_threads)
                removed[n_threads] += delta
        return removed
    removed = run_once(benchmark, measure)
    print()
    print("EXT-E1c: dynamic communication removed by COCO — "
          "2 threads: %d, 4 threads: %d" % (removed[2], removed[4]))
    assert removed[2] > 0


def test_scaling_dswp(benchmark):
    rows = run_once(benchmark, lambda: _scaling("dswp"))
    print()
    print(table(["benchmark", "2T x", "2T comm%", "3T x", "3T comm%",
                 "4T x", "4T comm%"],
                [(r[0], "%.3f" % r[1], "%.1f" % r[2], "%.3f" % r[3],
                  "%.1f" % r[4], "%.3f" % r[5], "%.1f" % r[6])
                 for r in rows],
                title="EXT-E1 (DSWP): thread-count scaling"))
    # The papers' conjecture: communication fraction tends to grow with
    # the thread count (checked on the suite aggregate, not per bench).
    comm2 = sum(r[2] for r in rows)
    comm4 = sum(r[6] for r in rows)
    assert comm4 >= comm2 * 0.9
