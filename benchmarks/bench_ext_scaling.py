"""EXT-E1: thread-count scaling (2 -> 3 -> 4 threads).

The papers evaluate two threads and conjecture that more threads increase
the communication fraction (more inter-thread dependences to satisfy).
This extension experiment measures both techniques at 2/3/4 threads and
checks that conjecture — the communication fraction does not shrink as
threads are added — while correctness holds throughout.

Metric extraction lives in the ``ext_scaling`` spec
(:mod:`repro.bench.specs.ablations`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import SCALING_BENCHES
from repro.report import table


def _rows(metrics, technique):
    rows = []
    for name in SCALING_BENCHES:
        entry = [name]
        for n_threads in (2, 3, 4):
            prefix = "%s/%s/%dt" % (technique, name, n_threads)
            entry.append(metrics["speedup/" + prefix].value)
            entry.append(metrics["comm_pct/" + prefix].value)
        rows.append(entry)
    return rows


def test_scaling_gremio(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("ext_scaling").collect(FULL))
    rows = _rows(metrics, "gremio")
    print()
    print(table(["benchmark", "2T x", "2T comm%", "3T x", "3T comm%",
                 "4T x", "4T comm%"],
                [(r[0], "%.3f" % r[1], "%.1f" % r[2], "%.3f" % r[3],
                  "%.1f" % r[4], "%.3f" % r[5], "%.1f" % r[6])
                 for r in rows],
                title="EXT-E1 (GREMIO): thread-count scaling"))
    for row in rows:
        # More threads must never break correctness (asserted inside the
        # evaluation) nor collapse performance catastrophically.
        assert min(row[1], row[3], row[5]) > 0.5


def test_coco_at_higher_thread_counts(benchmark):
    """The papers conjecture that more threads mean a larger communication
    fraction (verified in the scaling tests above) and expect COCO's
    benefits "to be more pronounced".  Measured nuance: the *fraction*
    indeed grows, but the communication COCO can actually remove shrinks
    at 4 threads for DSWP — the added traffic is per-iteration cross-stage
    values whose at-definition placement is already the min cut.  COCO
    must still never increase communication at any thread count (asserted
    per-cell inside the spec's aggregation)."""
    metrics = run_once(
        benchmark, lambda: get_spec("ext_scaling").collect(FULL))
    removed = {n: metrics["coco_removed/%dt" % n].value for n in (2, 4)}
    print()
    print("EXT-E1c: dynamic communication removed by COCO — "
          "2 threads: %d, 4 threads: %d" % (removed[2], removed[4]))
    assert removed[2] > 0
    assert removed[4] >= 0


def test_scaling_dswp(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("ext_scaling").collect(FULL))
    rows = _rows(metrics, "dswp")
    print()
    print(table(["benchmark", "2T x", "2T comm%", "3T x", "3T comm%",
                 "4T x", "4T comm%"],
                [(r[0], "%.3f" % r[1], "%.1f" % r[2], "%.3f" % r[3],
                  "%.1f" % r[4], "%.3f" % r[5], "%.1f" % r[6])
                 for r in rows],
                title="EXT-E1 (DSWP): thread-count scaling"))
    # The papers' conjecture: communication fraction tends to grow with
    # the thread count (checked on the suite aggregate, not per bench).
    comm2 = sum(r[2] for r in rows)
    comm4 = sum(r[6] for r in rows)
    assert comm4 >= comm2 * 0.9
