"""COCO-Fig7: relative dynamic communication / synchronization instructions
after applying COCO (100% = unchanged from baseline MTCG).

Paper shape to reproduce: COCO reduces communication on average (34.4% for
GREMIO, 23.8% for DSWP in the paper), never increases it, and the largest
reduction is ks with GREMIO (an inner loop that only consumed live-outs).

Metric extraction lives in the ``fig7_comm_reduction`` spec
(:mod:`repro.bench.specs.paper`).
"""

from harness import BENCH_ORDER, run_once

from repro.bench import FULL, get_spec
from repro.report import bar_chart


def _rows(metrics, technique):
    # Benchmarks the spec skipped (no communication to optimize) have no
    # metric; keep the papers' figure order for the rest.
    rows = []
    for name in BENCH_ORDER:
        metric = metrics.get("relcomm/%s/%s" % (technique, name))
        if metric is not None:
            rows.append((name, metric.value))
    return rows


def test_fig7_gremio_relative_communication(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("fig7_comm_reduction").collect(FULL))
    rows = _rows(metrics, "gremio")
    print()
    print(bar_chart(rows, title="Figure 7 (GREMIO): dynamic communication "
                                "after COCO, relative to MTCG (%)",
                    unit="%", reference=120.0))
    values = [value for _, value in rows]
    # COCO never increases dynamic communication.
    assert all(value <= 100.0 + 1e-9 for value in values)
    # ...and reduces it on average.
    assert metrics["relcomm/gremio/mean"].value < 100.0
    # ks is among the largest reductions (the paper's headline case).
    by_reduction = sorted(rows, key=lambda row: row[1])
    assert "ks" in [name for name, _ in by_reduction[:3]]


def test_fig7_dswp_relative_communication(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("fig7_comm_reduction").collect(FULL))
    rows = _rows(metrics, "dswp")
    print()
    print(bar_chart(rows, title="Figure 7 (DSWP): dynamic communication "
                                "after COCO, relative to MTCG (%)",
                    unit="%", reference=120.0))
    values = [value for _, value in rows]
    assert all(value <= 100.0 + 1e-9 for value in values)
    assert metrics["relcomm/dswp/mean"].value < 95.0
