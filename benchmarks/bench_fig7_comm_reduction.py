"""COCO-Fig7: relative dynamic communication / synchronization instructions
after applying COCO (100% = unchanged from baseline MTCG).

Paper shape to reproduce: COCO reduces communication on average (34.4% for
GREMIO, 23.8% for DSWP in the paper), never increases it, and the largest
reduction is ks with GREMIO (an inner loop that only consumed live-outs).
"""

from harness import BENCH_ORDER, evaluation, relative_communication, run_once

from repro.report import bar_chart
from repro.stats import arithmetic_mean


def _relative(technique):
    rows = []
    for name in BENCH_ORDER:
        base = evaluation(name, technique, coco=False)
        if base.communication_instructions == 0:
            continue  # not parallelized: no communication to optimize
        rows.append((name, relative_communication(name, technique)))
    return rows


def test_fig7_gremio_relative_communication(benchmark):
    rows = run_once(benchmark, lambda: _relative("gremio"))
    print()
    print(bar_chart(rows, title="Figure 7 (GREMIO): dynamic communication "
                                "after COCO, relative to MTCG (%)",
                    unit="%", reference=120.0))
    values = [value for _, value in rows]
    # COCO never increases dynamic communication.
    assert all(value <= 100.0 + 1e-9 for value in values)
    # ...and reduces it on average.
    assert arithmetic_mean(values) < 100.0
    # ks is among the largest reductions (the paper's headline case).
    by_reduction = sorted(rows, key=lambda row: row[1])
    assert "ks" in [name for name, _ in by_reduction[:3]]


def test_fig7_dswp_relative_communication(benchmark):
    rows = run_once(benchmark, lambda: _relative("dswp"))
    print()
    print(bar_chart(rows, title="Figure 7 (DSWP): dynamic communication "
                                "after COCO, relative to MTCG (%)",
                    unit="%", reference=120.0))
    values = [value for _, value in rows]
    assert all(value <= 100.0 + 1e-9 for value in values)
    assert arithmetic_mean(values) < 95.0
