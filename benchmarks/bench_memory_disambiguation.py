"""EXT-E3: memory-disambiguation sensitivity.

The companion text explains why DSWP saw no inter-thread memory
dependences: under their points-to analysis, "since the instructions are
inside a loop, any memory dependence is essentially bi-directional, thus
forcing these instructions to be assigned to the same thread in order to
form a pipeline", and notes that stronger loop-aware disambiguation would
change the picture.  This experiment sweeps the alias analysis' power
(`annotated` ~ shape/array analysis, `provenance` ~ the papers' points-to,
`none` ~ no analysis) and measures how the extracted parallelism collapses
as disambiguation weakens.

Metric extraction lives in the ``memory_disambiguation`` spec
(:mod:`repro.bench.specs.ablations`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import ALIAS_MODES, MEMDIS_BENCHES
from repro.report import table


def test_memory_disambiguation_sensitivity(benchmark):
    metrics = run_once(
        benchmark,
        lambda: get_spec("memory_disambiguation").collect(FULL))
    rows = [[name] + [metrics["speedup/%s/%s" % (mode, name)].value
                      for mode in ALIAS_MODES]
            for name in MEMDIS_BENCHES]
    print()
    print(table(["benchmark"] + list(ALIAS_MODES),
                [(r[0],) + tuple("%.3f" % v for v in r[1:])
                 for r in rows],
                title="EXT-E3: DSWP speedup vs memory-disambiguation "
                      "power"))
    for row in rows:
        name, annotated, provenance, none = row
        # Weakening disambiguation never *adds* parallelism...
        assert none <= annotated + 0.02, name
        assert provenance <= annotated + 0.02, name
    # ...and with no disambiguation at all, the loop-carried
    # bidirectional memory dependences weld the loops into single SCCs:
    # DSWP degenerates to (near-)single-threaded code (the papers'
    # explanation for DSWP's lack of inter-thread memory dependences).
    collapsed = [row for row in rows if row[3] <= 1.02]
    assert len(collapsed) >= 2, "expected pipeline collapse without alias"
