"""GREMIO-E2 (reconstructed): GREMIO vs DSWP on the same dual-core model.

Shape to reproduce: the two global MT schedulers have different sweet
spots — DSWP dominates loops with a clean recurrence/work pipeline
(e.g. the mcf pointer chase), while GREMIO's general scheduling can match
or beat it where the dependence structure is not pipeline-shaped; both are
built on the same PDG + MTCG substrate.
"""

from harness import BENCH_ORDER, evaluation, run_once

from repro.report import table
from repro.stats import geomean


def _comparison():
    rows = []
    for name in BENCH_ORDER:
        gremio = evaluation(name, "gremio", coco=False)
        dswp = evaluation(name, "dswp", coco=False)
        rows.append((name, gremio.speedup, dswp.speedup,
                     100.0 * gremio.communication_fraction,
                     100.0 * dswp.communication_fraction))
    return rows


def test_gremio_vs_dswp(benchmark):
    rows = run_once(benchmark, _comparison)
    print()
    print(table(["benchmark", "GREMIO x", "DSWP x",
                 "GREMIO comm%", "DSWP comm%"],
                [(n, "%.3f" % g, "%.3f" % d, "%.1f" % gc, "%.1f" % dc)
                 for n, g, d, gc, dc in rows],
                title="GREMIO-E2: GREMIO vs DSWP (2 threads, MTCG)"))
    gremio_overall = geomean([g for _, g, d, *_ in rows])
    dswp_overall = geomean([d for _, g, d, *_ in rows])
    print("geomean: GREMIO %.3fx, DSWP %.3fx"
          % (gremio_overall, dswp_overall))
    # Both techniques produce working parallel code with real wins.
    assert max(g for _, g, *_ in rows) > 1.2
    assert max(d for _, _, d, *_ in rows) > 1.2
    # They are not identical partitioners: per-benchmark winners differ.
    gremio_wins = [n for n, g, d, *_ in rows if g > d + 0.02]
    dswp_wins = [n for n, g, d, *_ in rows if d > g + 0.02]
    assert dswp_wins, "DSWP should win somewhere"
    print("GREMIO ahead on: %s" % gremio_wins)
    print("DSWP ahead on:   %s" % dswp_wins)
