"""GREMIO-E2 (reconstructed): GREMIO vs DSWP on the same dual-core model.

Shape to reproduce: the two global MT schedulers have different sweet
spots — DSWP dominates loops with a clean recurrence/work pipeline
(e.g. the mcf pointer chase), while GREMIO's general scheduling can match
or beat it where the dependence structure is not pipeline-shaped; both are
built on the same PDG + MTCG substrate.

Metric extraction lives in the ``gremio_vs_dswp`` spec
(:mod:`repro.bench.specs.paper`).
"""

from harness import BENCH_ORDER, run_once

from repro.bench import FULL, get_spec
from repro.report import table


def test_gremio_vs_dswp(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("gremio_vs_dswp").collect(FULL))
    rows = [(name,
             metrics["speedup/gremio/%s" % name].value,
             metrics["speedup/dswp/%s" % name].value)
            for name in BENCH_ORDER]
    print()
    print(table(["benchmark", "GREMIO x", "DSWP x"],
                [(n, "%.3f" % g, "%.3f" % d) for n, g, d in rows],
                title="GREMIO-E2: GREMIO vs DSWP (2 threads, MTCG)"))
    gremio_overall = metrics["geomean/gremio"].value
    dswp_overall = metrics["geomean/dswp"].value
    print("geomean: GREMIO %.3fx, DSWP %.3fx"
          % (gremio_overall, dswp_overall))
    # Both techniques produce working parallel code with real wins.
    assert max(g for _, g, _ in rows) > 1.2
    assert max(d for _, _, d in rows) > 1.2
    # They are not identical partitioners: per-benchmark winners differ.
    gremio_wins = [n for n, g, d in rows if g > d + 0.02]
    dswp_wins = [n for n, g, d in rows if d > g + 0.02]
    assert metrics["wins/dswp"].value == len(dswp_wins)
    assert metrics["wins/gremio"].value == len(gremio_wins)
    assert dswp_wins, "DSWP should win somewhere"
    print("GREMIO ahead on: %s" % gremio_wins)
    print("DSWP ahead on:   %s" % dswp_wins)
