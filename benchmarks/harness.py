"""Shared machinery for the experiment benchmarks.

Evaluations are expensive (profile + partition + COCO + two timed
simulations), so they are memoized per-process: every bench that needs
(workload, technique, coco) data reuses one evaluation.  Each bench module
regenerates one table/figure of the papers (see DESIGN.md's experiment
index) and prints it, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro import evaluate_workload, get_workload
from repro.pipeline import Evaluation

_CACHE: Dict[Tuple, Evaluation] = {}

# Benchmark display order (the papers' figure order).
BENCH_ORDER = ["adpcmdec", "adpcmenc", "ks", "mpeg2enc", "177.mesa",
               "181.mcf", "183.equake", "188.ammp", "300.twolf",
               "435.gromacs", "458.sjeng"]


def evaluation(name: str, technique: str, coco: bool = False,
               n_threads: int = 2, scale: str = "ref") -> Evaluation:
    key = (name, technique, coco, n_threads, scale)
    if key not in _CACHE:
        _CACHE[key] = evaluate_workload(
            get_workload(name), technique=technique, coco=coco,
            n_threads=n_threads, scale=scale)
    return _CACHE[key]


def relative_communication(name: str, technique: str,
                           n_threads: int = 2) -> float:
    base = evaluation(name, technique, coco=False, n_threads=n_threads)
    opt = evaluation(name, technique, coco=True, n_threads=n_threads)
    if base.communication_instructions == 0:
        return 100.0
    return (100.0 * opt.communication_instructions
            / base.communication_instructions)


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark without re-running it dozens
    of times (these are whole-pipeline experiments, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
