"""Shared machinery for the experiment benchmarks.

The evaluation memo and prewarm sweep now live in
:mod:`repro.bench.harness` (the machine-readable benchmark subsystem);
this module re-exports them so the bench modules keep their historical
imports, and adds the pytest-benchmark adapter.  Every evaluation runs
through the staged pipeline's persistent artifact cache (see
``repro.pipeline``), so repeated benchmark sessions skip redundant
stage work across processes, and ``python -m repro bench`` shares the
same memo/cache when driving the same specs headlessly.

Each bench module regenerates one table/figure of the papers (see
DESIGN.md's experiment index) and prints it, so running ``pytest
benchmarks/ --benchmark-only -s`` reproduces the evaluation section.
"""

from __future__ import annotations

from repro.bench import (BENCH_ORDER, evaluation, prewarm,
                         relative_communication)

__all__ = ["BENCH_ORDER", "evaluation", "prewarm",
           "relative_communication", "run_once"]


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark without re-running it dozens
    of times (these are whole-pipeline experiments, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
