"""Shared machinery for the experiment benchmarks.

Evaluations are expensive (profile + partition + COCO + two timed
simulations), so they are memoized per-process — and, because every
evaluation now runs through the staged pipeline's persistent artifact
cache (see ``repro.pipeline``), repeated benchmark sessions skip the
redundant stage work across processes too.  Each bench module regenerates
one table/figure of the papers (see DESIGN.md's experiment index) and
prints it, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro import evaluate_workload, get_workload
from repro.pipeline import Evaluation, MatrixCell, evaluate_matrix
from repro.stats import relative_communication as _relative_communication

_CACHE: Dict[Tuple, Evaluation] = {}

# Benchmark display order (the papers' figure order).
BENCH_ORDER = ["adpcmdec", "adpcmenc", "ks", "mpeg2enc", "177.mesa",
               "181.mcf", "183.equake", "188.ammp", "300.twolf",
               "435.gromacs", "458.sjeng"]


def evaluation(name: str, technique: str, coco: bool = False,
               n_threads: int = 2, scale: str = "ref") -> Evaluation:
    key = (name, technique, coco, n_threads, scale)
    if key not in _CACHE:
        _CACHE[key] = evaluate_workload(
            get_workload(name), technique=technique, coco=coco,
            n_threads=n_threads, scale=scale)
    return _CACHE[key]


def prewarm(names: Iterable[str] = tuple(BENCH_ORDER),
            techniques: Sequence[str] = ("gremio", "dswp"),
            coco: Sequence[bool] = (False, True),
            n_threads: Sequence[int] = (2,),
            scale: str = "ref", jobs: int = 1,
            mt_check: bool = False) -> None:
    """Bulk-populate the per-process memo via ``evaluate_matrix`` —
    with ``jobs > 1`` the cells run on a process pool, so a benchmark
    session can front-load every evaluation it will need.  ``mt_check``
    additionally runs the static MT validators (the pipeline's ``check``
    stage) over every generated program while prewarming — a free sweep
    of the whole benchmark matrix through the correctness subsystem."""
    cells = [MatrixCell(name, technique, use_coco, threads, scale,
                        mt_check=mt_check)
             for name in names
             for technique in techniques
             for use_coco in coco
             for threads in n_threads]
    todo = [cell for cell in cells
            if (cell.workload, cell.technique, cell.coco, cell.n_threads,
                cell.scale) not in _CACHE]
    for cell, result in zip(todo, evaluate_matrix(todo, jobs=jobs)):
        _CACHE[(cell.workload, cell.technique, cell.coco, cell.n_threads,
                cell.scale)] = result


def relative_communication(name: str, technique: str,
                           n_threads: int = 2) -> float:
    """COCO's dynamic communication relative to baseline MTCG, in %
    (delegates the arithmetic to :func:`repro.stats
    .relative_communication`)."""
    base = evaluation(name, technique, coco=False, n_threads=n_threads)
    opt = evaluation(name, technique, coco=True, n_threads=n_threads)
    return _relative_communication(opt, base)


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark without re-running it dozens
    of times (these are whole-pipeline experiments, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
