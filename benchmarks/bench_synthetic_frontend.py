"""FE-E1: frontend-compiled synthetic kernels through the pipeline.

The ``synthetic`` workload family (:mod:`repro.workloads.synthetic`) is
written in the :mod:`repro.frontend` Python subset and compiled to IR at
registration — CPython running the same source is the oracle.  This
bench sweeps the family under both techniques, so frontend lowering
changes surface as cycle deltas in the baseline comparison.

Metric extraction lives in the ``synthetic_frontend`` spec
(:mod:`repro.bench.specs.synthetic`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.synthetic import TECHNIQUES
from repro.report import table
from repro.workloads.synthetic import SYNTHETIC_NAMES


def _metrics(benchmark):
    return run_once(
        benchmark, lambda: get_spec("synthetic_frontend").collect(FULL))


def test_synthetic_frontend_speedups(benchmark):
    metrics = _metrics(benchmark)
    rows = []
    for name in SYNTHETIC_NAMES:
        entry = [name]
        for technique in TECHNIQUES:
            key = "%s/%s" % (technique, name)
            entry.append("%.3f" % metrics["speedup/" + key].value)
            # Deterministic simulator output: cycles are always
            # positive, and the check inside evaluation() already
            # proved the frontend-emitted IR computes what CPython does.
            assert metrics["mt_cycles/" + key].value > 0
            assert metrics["st_cycles/" + key].value > 0
        rows.append(entry)
    print()
    print(table(["kernel"] + ["%s speedup" % t for t in TECHNIQUES],
                rows,
                title="FE-E1: frontend-compiled synthetic kernels"))
    # At least one kernel must actually profit from multi-threading
    # under some technique — the family is not decorative.
    best = max(metrics["speedup/%s/%s" % (t, n)].value
               for t in TECHNIQUES for n in SYNTHETIC_NAMES)
    assert best > 1.0
