"""EXT-E5: branch-handling sensitivity of the core model.

The validated Itanium 2 cores the papers simulate predict branches well;
this ablation compares the three front-end models (static taken-penalty,
bimodal 2-bit prediction, perfect) on the branchiest kernel (sjeng) and a
regular loop kernel (equake), single-threaded and under DSWP.

Metric extraction lives in the ``branch_prediction`` spec
(:mod:`repro.bench.specs.ablations`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import BRANCH_BENCHES
from repro.report import table

MODES = ("static", "bimodal", "perfect")


def test_branch_prediction_ablation(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("branch_prediction").collect(FULL))
    rows = []
    for name in BRANCH_BENCHES:
        entry = [name]
        for mode in MODES:
            entry.append(metrics["st_cycles/%s/%s" % (mode, name)].value)
            entry.append(metrics["speedup/%s/%s" % (mode, name)].value)
        rows.append(entry)
    print()
    print(table(["benchmark", "ST static", "x", "ST bimodal", "x",
                 "ST perfect", "x"],
                [(r[0], "%.0f" % r[1], "%.3f" % r[2], "%.0f" % r[3],
                  "%.3f" % r[4], "%.0f" % r[5], "%.3f" % r[6])
                 for r in rows],
                title="EXT-E5: branch-handling models (ST cycles and "
                      "DSWP speedup)"))
    by_name = {row[0]: row for row in rows}
    for name, st_static, _, st_bimodal, _, st_perfect, _ in rows:
        # The perfect front end is the fastest single-threaded model.
        assert st_perfect <= min(st_static, st_bimodal) * 1.001, name
    # Regular loop code (equake) predicts essentially perfectly under
    # bimodal; branchy evaluation code (sjeng) mispredicts enough that
    # the 6-cycle mispredict penalty outweighs the flat 1-cycle taken
    # charge — the model distinguishes the two regimes.
    assert by_name["183.equake"][3] <= by_name["183.equake"][1]
    assert by_name["458.sjeng"][3] > by_name["458.sjeng"][1]
