"""EXT-E5: branch-handling sensitivity of the core model.

The validated Itanium 2 cores the papers simulate predict branches well;
this ablation compares the three front-end models (static taken-penalty,
bimodal 2-bit prediction, perfect) on the branchiest kernel (sjeng) and a
regular loop kernel (equake), single-threaded and under DSWP.
"""

import dataclasses

from harness import run_once

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program, simulate_single
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.pipeline import normalize
from repro.report import table
from repro.workloads import get_workload

MODES = ("static", "bimodal", "perfect")
BENCHES = ("458.sjeng", "183.equake")


def _sweep():
    rows = []
    for name in BENCHES:
        workload = get_workload(name)
        function = normalize(workload.build())
        train = workload.make_inputs("train")
        ref = workload.make_inputs("ref")
        profile = run_function(function, train.args, train.memory).profile
        pdg = build_pdg(function)
        partition = DSWPPartitioner(DEFAULT_CONFIG).partition(
            function, pdg, profile, 2)
        program = generate(function, pdg, partition)
        entry = [name]
        for mode in MODES:
            config = dataclasses.replace(DEFAULT_CONFIG.for_dswp(),
                                         branch_predictor=mode)
            st = simulate_single(function, ref.args, ref.memory,
                                 config=config)
            mt = simulate_program(program, ref.args, ref.memory,
                                  config=config)
            assert mt.live_outs == st.live_outs
            entry.append(st.cycles)
            entry.append(st.cycles / mt.cycles)
        rows.append(entry)
    return rows


def test_branch_prediction_ablation(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(table(["benchmark", "ST static", "x", "ST bimodal", "x",
                 "ST perfect", "x"],
                [(r[0], "%.0f" % r[1], "%.3f" % r[2], "%.0f" % r[3],
                  "%.3f" % r[4], "%.0f" % r[5], "%.3f" % r[6])
                 for r in rows],
                title="EXT-E5: branch-handling models (ST cycles and "
                      "DSWP speedup)"))
    by_name = {row[0]: row for row in rows}
    for name, st_static, _, st_bimodal, _, st_perfect, _ in rows:
        # The perfect front end is the fastest single-threaded model.
        assert st_perfect <= min(st_static, st_bimodal) * 1.001, name
    # Regular loop code (equake) predicts essentially perfectly under
    # bimodal; branchy evaluation code (sjeng) mispredicts enough that
    # the 6-cycle mispredict penalty outweighs the flat 1-cycle taken
    # charge — the model distinguishes the two regimes.
    assert by_name["183.equake"][3] <= by_name["183.equake"][1]
    assert by_name["458.sjeng"][3] > by_name["458.sjeng"][1]
