"""COCO-Fig6: the experimental setup tables — (a) machine configuration,
(b) selected benchmark functions.

The ``fig6_setup`` spec (:mod:`repro.bench.specs.paper`) records the
machine-readable counts; this module renders the human tables and
cross-checks both views.
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.machine import DEFAULT_CONFIG, config_table
from repro.workloads import all_workloads, benchmark_table


def test_fig6a_machine_configuration(benchmark):
    text = run_once(benchmark, config_table)
    print()
    print("Figure 6(a): machine details")
    print(text)
    assert "6 issue" in text or "6 ALU" in text
    assert "141" in text
    metrics = get_spec("fig6_setup").collect(FULL)
    assert metrics["machine/sa_queues"].value == 256
    assert metrics["machine/sa_queues"].value == DEFAULT_CONFIG.sa_queues
    assert (metrics["machine/sa_access_latency"].value
            == DEFAULT_CONFIG.sa_access_latency)


def test_fig6b_benchmark_functions(benchmark):
    text = run_once(benchmark, benchmark_table)
    print()
    print("Figure 6(b): selected benchmark functions")
    print(text)
    # The eleven functions of the papers' table, with their exec %.
    for fragment in ("adpcm_decoder", "adpcm_coder", "FindMaxGpAndSwap",
                     "dist1", "general_textured_triangle",
                     "refresh_potential", "smvp", "mm_fv_update_nonbon",
                     "new_dbox_a", "inl1130", "std_eval"):
        assert fragment in text
    assert len(all_workloads()) == 11
    metrics = get_spec("fig6_setup").collect(FULL)
    assert metrics["workloads/count"].value == 11
