"""GREMIO-E1 (reconstructed from the titled MICRO 2007 paper): speedup of
GREMIO-parallelized code over single-threaded execution on the dual-core
model, per benchmark, plus the geomean.

Shape to reproduce: GREMIO extracts non-speculative TLP from several
general-purpose functions; where its cost model finds no profitable
partition it falls back to (near-)single-threaded code rather than
regressing badly.
"""

from harness import BENCH_ORDER, evaluation, run_once

from repro.report import bar_chart
from repro.stats import geomean


def _speedups():
    return [(name, evaluation(name, "gremio", coco=False).speedup)
            for name in BENCH_ORDER]


def test_gremio_speedup_over_single_threaded(benchmark):
    rows = run_once(benchmark, _speedups)
    overall = geomean([value for _, value in rows])
    print()
    print(bar_chart(rows + [("geomean", overall)],
                    title="GREMIO-E1: GREMIO speedup over single-threaded "
                          "(2 threads, baseline MTCG)",
                    unit="x", reference=2.0))
    # GREMIO finds real parallelism somewhere...
    assert max(value for _, value in rows) > 1.2
    # ...and is not a net loss across the suite.
    assert overall > 0.95
    # No catastrophic regression on any benchmark.
    assert min(value for _, value in rows) > 0.7


def test_gremio_parallelizes_multiple_benchmarks(benchmark):
    rows = run_once(benchmark, _speedups)
    parallelized = [
        name for name, _ in rows
        if evaluation(name, "gremio").communication_instructions > 100]
    print()
    print("GREMIO produced multi-threaded code for: %s" % parallelized)
    assert len(parallelized) >= 4
