"""GREMIO-E1 (reconstructed from the titled MICRO 2007 paper): speedup of
GREMIO-parallelized code over single-threaded execution on the dual-core
model, per benchmark, plus the geomean.

Shape to reproduce: GREMIO extracts non-speculative TLP from several
general-purpose functions; where its cost model finds no profitable
partition it falls back to (near-)single-threaded code rather than
regressing badly.

Metric extraction lives in the ``gremio_speedup`` spec
(:mod:`repro.bench.specs.paper`).
"""

from harness import BENCH_ORDER, run_once

from repro.bench import FULL, get_spec
from repro.report import bar_chart


def test_gremio_speedup_over_single_threaded(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("gremio_speedup").collect(FULL))
    rows = [(name, metrics["speedup/%s" % name].value)
            for name in BENCH_ORDER]
    overall = metrics["geomean"].value
    print()
    print(bar_chart(rows + [("geomean", overall)],
                    title="GREMIO-E1: GREMIO speedup over single-threaded "
                          "(2 threads, baseline MTCG)",
                    unit="x", reference=2.0))
    # GREMIO finds real parallelism somewhere...
    assert metrics["max"].value > 1.2
    # ...and is not a net loss across the suite.
    assert overall > 0.95
    # No catastrophic regression on any benchmark.
    assert metrics["min"].value > 0.7


def test_gremio_parallelizes_multiple_benchmarks(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("gremio_speedup").collect(FULL))
    print()
    print("GREMIO produced multi-threaded code for %d benchmarks"
          % int(metrics["parallelized/count"].value))
    assert metrics["parallelized/count"].value >= 4
