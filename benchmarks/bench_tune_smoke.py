"""TUNE-E1: search-based auto-tuning vs the paper-default schedulers.

The papers fix two points in the scheduling-policy space (GREMIO's
hierarchical list scheduling, DSWP's pipeline partitioning).  This
extension experiment treats the partitioner thresholds, the placer,
the topology preset, and selected machine parameters as a search space
and asks how much a seeded, deterministic search improves on either
fixed heuristic.

Metric extraction lives in the ``tune_smoke`` spec
(:mod:`repro.bench.specs.tune`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.tune import TUNE_WORKLOADS
from repro.report import table


def _metrics(benchmark):
    return run_once(
        benchmark, lambda: get_spec("tune_smoke").collect(FULL))


def test_tune_beats_or_matches_baselines(benchmark):
    """The search seeds the default GREMIO and DSWP candidates before
    any strategy proposal, so the best-found configuration can never be
    slower than either baseline."""
    metrics = _metrics(benchmark)
    rows = []
    for name in TUNE_WORKLOADS:
        best = metrics["best_cycles/" + name].value
        gremio = metrics["gremio_cycles/" + name].value
        dswp = metrics["dswp_cycles/" + name].value
        rows.append((name, "%.0f" % gremio, "%.0f" % dswp,
                     "%.0f" % best,
                     "%+.2f%%" % metrics["improvement_vs_gremio_pct/"
                                         + name].value,
                     "%+.2f%%" % metrics["improvement_vs_dswp_pct/"
                                         + name].value))
        assert best <= gremio
        assert best <= dswp
        assert metrics["improvement_vs_gremio_pct/" + name].value >= 0
        assert metrics["improvement_vs_dswp_pct/" + name].value >= 0
    print()
    print(table(["benchmark", "gremio", "dswp", "tuned",
                 "vs gremio", "vs dswp"], rows,
                title="TUNE-E1: auto-tuned configuration vs defaults"))
    assert metrics["candidates_evaluated"].value > 0
