"""EXT-E4: interaction of COCO with the downstream local scheduler.

The companion text reports that, in a couple of cases, COCO reduced
communication but slightly degraded performance through "a bad interaction
with the later single-threaded instruction scheduler", and proposes to
"change the priority of the produce and consume instructions in the
single-threaded scheduler".  This experiment runs the reproduced local
scheduler over COCO-optimized thread code with both priorities and
measures the effect.

Metric extraction lives in the ``scheduler_interaction`` spec
(:mod:`repro.bench.specs.ablations`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import SCHEDULER_BENCHES
from repro.report import table


def test_scheduler_interaction(benchmark):
    metrics = run_once(
        benchmark,
        lambda: get_spec("scheduler_interaction").collect(FULL))
    rows = [(name,
             metrics["speedup/none/%s" % name].value,
             metrics["speedup/early/%s" % name].value,
             metrics["speedup/late/%s" % name].value)
            for name in SCHEDULER_BENCHES]
    print()
    print(table(["benchmark", "no local sched", "comm-early",
                 "comm-late"],
                [(n, "%.3f" % a, "%.3f" % b, "%.3f" % c)
                 for n, a, b, c in rows],
                title="EXT-E4: DSWP+COCO with the downstream local "
                      "scheduler (speedup over single-threaded)"))
    for name, unscheduled, early, late in rows:
        # Local scheduling must never be a first-order loss, and the
        # communication priority is a real knob (the paper's proposed
        # mitigation): the better of the two priorities is at least as
        # good as not scheduling at all (within noise).
        best = max(early, late)
        assert best >= unscheduled * 0.97, name
        assert min(early, late) >= unscheduled * 0.85, name
