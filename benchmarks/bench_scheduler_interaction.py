"""EXT-E4: interaction of COCO with the downstream local scheduler.

The companion text reports that, in a couple of cases, COCO reduced
communication but slightly degraded performance through "a bad interaction
with the later single-threaded instruction scheduler", and proposes to
"change the priority of the produce and consume instructions in the
single-threaded scheduler".  This experiment runs the reproduced local
scheduler over COCO-optimized thread code with both priorities and
measures the effect.
"""

from harness import run_once

from repro.analysis import build_pdg
from repro.coco.driver import optimize as coco_optimize
from repro.interp import run_function
from repro.machine import simulate_program, simulate_single
from repro.mtcg import generate
from repro.opt.scheduler import CommPriority, schedule_program
from repro.pipeline import make_partitioner, normalize, technique_config
from repro.report import table
from repro.workloads import get_workload

BENCHES = ["181.mcf", "435.gromacs", "ks", "188.ammp"]


def _one(name, comm_priority):
    workload = get_workload(name)
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    config = technique_config("dswp")
    partition = make_partitioner("dswp", config).partition(
        function, pdg, profile, 2)
    coco = coco_optimize(function, pdg, partition, profile)
    program = generate(function, pdg, partition,
                       data_channels=coco.data_channels,
                       condition_covered=coco.condition_covered)
    if comm_priority is not None:
        schedule_program(program, config, comm_priority)
        # Schedule the single-threaded baseline too: the comparison is
        # between equally-optimized codes, as in the papers' toolchain.
        from repro.opt.scheduler import schedule_function
        schedule_function(function, config, comm_priority)
    st = simulate_single(function, ref.args, ref.memory, config=config)
    mt = simulate_program(program, ref.args, ref.memory, config=config)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


def _sweep():
    rows = []
    for name in BENCHES:
        unscheduled = _one(name, None)
        early = _one(name, CommPriority.EARLY)
        late = _one(name, CommPriority.LATE)
        rows.append((name, unscheduled, early, late))
    return rows


def test_scheduler_interaction(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(table(["benchmark", "no local sched", "comm-early",
                 "comm-late"],
                [(n, "%.3f" % a, "%.3f" % b, "%.3f" % c)
                 for n, a, b, c in rows],
                title="EXT-E4: DSWP+COCO with the downstream local "
                      "scheduler (speedup over single-threaded)"))
    for name, unscheduled, early, late in rows:
        # Local scheduling must never be a first-order loss, and the
        # communication priority is a real knob (the paper's proposed
        # mitigation): the better of the two priorities is at least as
        # good as not scheduling at all (within noise).
        best = max(early, late)
        assert best >= unscheduled * 0.97, name
        assert min(early, late) >= unscheduled * 0.85, name
