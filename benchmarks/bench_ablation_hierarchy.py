"""GREMIO-E3: scheduling-policy ablations of the GREMIO reconstruction.

Compares the full scheduler against (a) flat (non-hierarchical) list
scheduling over the whole region and (b) control-dependence-region
grouping, isolating the value of the loop-nest hierarchy and of
instruction-granularity scheduling.

Metric extraction lives in the ``ablation_hierarchy`` spec
(:mod:`repro.bench.specs.ablations`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import HIERARCHY_BENCHES
from repro.report import table


def test_hierarchy_ablation(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("ablation_hierarchy").collect(FULL))
    rows = [(name,
             metrics["speedup/full/%s" % name].value,
             metrics["speedup/flat/%s" % name].value,
             metrics["speedup/grouped/%s" % name].value)
            for name in HIERARCHY_BENCHES]
    print()
    print(table(["benchmark", "GREMIO", "flat list sched.",
                 "CD-region grouping"],
                [(n, "%.3f" % a, "%.3f" % b, "%.3f" % c)
                 for n, a, b, c in rows],
                title="GREMIO-E3: scheduling-policy ablation (speedup "
                      "over single-threaded)"))
    full = metrics["geomean/full"].value
    flat = metrics["geomean/flat"].value
    grouped = metrics["geomean/grouped"].value
    print("geomean: full %.3f, flat %.3f, region-grouped %.3f"
          % (full, flat, grouped))
    # The hierarchical scheduler is at least as good as the flat ablation
    # overall (the hierarchy is what contains communication inside loops).
    assert full >= flat * 0.97
    # Everything still runs correctly in every mode (checked inside).
    assert min(min(r[1:]) for r in rows) > 0.5
