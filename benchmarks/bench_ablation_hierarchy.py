"""GREMIO-E3: scheduling-policy ablations of the GREMIO reconstruction.

Compares the full scheduler against (a) flat (non-hierarchical) list
scheduling over the whole region and (b) control-dependence-region
grouping, isolating the value of the loop-nest hierarchy and of
instruction-granularity scheduling.
"""

from harness import BENCH_ORDER, run_once

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program, simulate_single
from repro.mtcg import generate
from repro.partition.gremio import GremioPartitioner
from repro.pipeline import normalize
from repro.report import table
from repro.stats import geomean
from repro.workloads import get_workload

ABLATION_BENCHES = ["ks", "181.mcf", "435.gromacs", "300.twolf",
                    "183.equake", "458.sjeng"]


def _speedup_with(workload, partitioner):
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    partition = partitioner.partition(function, pdg, profile, 2)
    program = generate(function, pdg, partition)
    st = simulate_single(function, ref.args, ref.memory)
    mt = simulate_program(program, ref.args, ref.memory)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


def _ablation():
    rows = []
    for name in ABLATION_BENCHES:
        workload = get_workload(name)
        full = _speedup_with(workload, GremioPartitioner(DEFAULT_CONFIG))
        flat = _speedup_with(workload, GremioPartitioner(
            DEFAULT_CONFIG, hierarchical=False))
        grouped = _speedup_with(workload, GremioPartitioner(
            DEFAULT_CONFIG, region_grouping=True))
        rows.append((name, full, flat, grouped))
    return rows


def test_hierarchy_ablation(benchmark):
    rows = run_once(benchmark, _ablation)
    print()
    print(table(["benchmark", "GREMIO", "flat list sched.",
                 "CD-region grouping"],
                [(n, "%.3f" % a, "%.3f" % b, "%.3f" % c)
                 for n, a, b, c in rows],
                title="GREMIO-E3: scheduling-policy ablation (speedup "
                      "over single-threaded)"))
    full = geomean([a for _, a, _, _ in rows])
    flat = geomean([b for _, _, b, _ in rows])
    grouped = geomean([c for _, _, _, c in rows])
    print("geomean: full %.3f, flat %.3f, region-grouped %.3f"
          % (full, flat, grouped))
    # The hierarchical scheduler is at least as good as the flat ablation
    # overall (the hierarchy is what contains communication inside loops).
    assert full >= flat * 0.97
    # Everything still runs correctly in every mode (checked inside).
    assert min(min(r[1:]) for r in rows) > 0.5
