"""EXT-E7: sensitivity of COCO to the profile source.

The companion text bases its min-cut costs on edge profiles but notes the
estimates "can be obtained through profiling or through static analyses,
which have been demonstrated to be also very accurate" (Wu & Larus).
This experiment runs COCO three ways — train-input profile (the papers'
methodology), reference-input profile (oracle), and the static estimator —
and compares the dynamic communication each placement yields.

Metric extraction lives in the ``profile_sensitivity`` spec
(:mod:`repro.bench.specs.ablations`), whose ``oracle`` source profiles
on the measurement inputs (= ref under the full mode).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import PROFILE_BENCHES
from repro.report import table


def test_profile_sensitivity(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("profile_sensitivity").collect(FULL))
    rows = [(name,
             int(metrics["comm/baseline/%s" % name].value),
             int(metrics["comm/train/%s" % name].value),
             int(metrics["comm/oracle/%s" % name].value),
             int(metrics["comm/static/%s" % name].value))
            for name in PROFILE_BENCHES]
    print()
    print(table(["benchmark", "MTCG", "COCO(train)", "COCO(ref)",
                 "COCO(static)"],
                [(n, b, t, r, s) for n, b, t, r, s in rows],
                title="EXT-E7: dynamic communication by COCO cost source "
                      "(DSWP, ref inputs)"))
    for name, base, train, ref, static in rows:
        # Profiled placements never exceed baseline (the guarantee).
        assert train <= base and ref <= base, name
        # The oracle (ref) profile is never worse than the train profile.
        assert ref <= train * 1.02, name
        # The static estimator captures most of the benefit (the paper's
        # Wu-Larus argument): within 25% of the train-profile placement,
        # and never a regression vs baseline beyond noise.
        assert static <= base * 1.05, name
    total_train = sum(r[2] for r in rows)
    total_static = sum(r[4] for r in rows)
    assert total_static <= total_train * 1.25
