"""EXT-E7: sensitivity of COCO to the profile source.

The companion text bases its min-cut costs on edge profiles but notes the
estimates "can be obtained through profiling or through static analyses,
which have been demonstrated to be also very accurate" (Wu & Larus).
This experiment runs COCO three ways — train-input profile (the papers'
methodology), reference-input profile (oracle), and the static estimator —
and compares the dynamic communication each placement yields.
"""

from harness import run_once

from repro.analysis import build_pdg
from repro.coco.driver import optimize as coco_optimize
from repro.interp import run_function, static_profile
from repro.machine import run_mt_program
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.pipeline import normalize, technique_config
from repro.report import table
from repro.workloads import get_workload

BENCHES = ("ks", "mpeg2enc", "188.ammp", "300.twolf")


def _comm_with_profile(workload, which):
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    config = technique_config("dswp")
    # The partition itself always uses the train profile (so only COCO's
    # cost source varies).
    train_profile = run_function(function, train.args,
                                 train.memory).profile
    pdg = build_pdg(function)
    partition = DSWPPartitioner(config).partition(function, pdg,
                                                  train_profile, 2)
    if which == "train":
        profile = train_profile
    elif which == "ref":
        profile = run_function(function, ref.args, ref.memory).profile
    else:
        profile = static_profile(function)
    coco = coco_optimize(function, pdg, partition, profile)
    program = generate(function, pdg, partition,
                       data_channels=coco.data_channels,
                       condition_covered=coco.condition_covered)
    result = run_mt_program(program, ref.args, ref.memory,
                            queue_capacity=config.sa_queue_size)
    return result.communication_instructions


def _baseline_comm(workload):
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    config = technique_config("dswp")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    partition = DSWPPartitioner(config).partition(function, pdg,
                                                  profile, 2)
    program = generate(function, pdg, partition)
    result = run_mt_program(program, ref.args, ref.memory,
                            queue_capacity=config.sa_queue_size)
    return result.communication_instructions


def _sweep():
    rows = []
    for name in BENCHES:
        workload = get_workload(name)
        base = _baseline_comm(workload)
        train = _comm_with_profile(workload, "train")
        ref = _comm_with_profile(workload, "ref")
        static = _comm_with_profile(workload, "static")
        rows.append((name, base, train, ref, static))
    return rows


def test_profile_sensitivity(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(table(["benchmark", "MTCG", "COCO(train)", "COCO(ref)",
                 "COCO(static)"],
                [(n, b, t, r, s) for n, b, t, r, s in rows],
                title="EXT-E7: dynamic communication by COCO cost source "
                      "(DSWP, ref inputs)"))
    for name, base, train, ref, static in rows:
        # Profiled placements never exceed baseline (the guarantee).
        assert train <= base and ref <= base, name
        # The oracle (ref) profile is never worse than the train profile.
        assert ref <= train * 1.02, name
        # The static estimator captures most of the benefit (the paper's
        # Wu-Larus argument): within 25% of the train-profile placement,
        # and never a regression vs baseline beyond noise.
        assert static <= base * 1.05, name
    total_train = sum(r[2] for r in rows)
    total_static = sum(r[4] for r in rows)
    assert total_static <= total_train * 1.25
