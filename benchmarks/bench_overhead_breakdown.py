"""GREMIO-E4: full dynamic overhead breakdown of generated MT code.

A finer-grained version of COCO-Fig1: every dynamically executed
instruction of the two-thread code is attributed to computation,
communication, replicated control (duplicated branches), or glue
(jumps/exits).  Shows where MTCG's overhead actually goes, and how COCO
shifts it.
"""

from harness import run_once

from repro.analysis import build_pdg
from repro.coco.driver import optimize as coco_optimize
from repro.interp import run_function
from repro.machine import run_mt_program
from repro.mtcg import generate
from repro.pipeline import make_partitioner, normalize, technique_config
from repro.report import table
from repro.stats import overhead_breakdown
from repro.workloads import get_workload

BENCHES = ("ks", "181.mcf", "188.ammp", "300.twolf", "458.sjeng")


def _breakdown(name, technique, coco):
    workload = get_workload(name)
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    config = technique_config(technique)
    partition = make_partitioner(technique, config).partition(
        function, pdg, profile, 2)
    if coco:
        result = coco_optimize(function, pdg, partition, profile)
        program = generate(function, pdg, partition,
                           data_channels=result.data_channels,
                           condition_covered=result.condition_covered)
    else:
        program = generate(function, pdg, partition)
    run = run_mt_program(program, ref.args, ref.memory,
                         queue_capacity=config.sa_queue_size,
                         count_per_instruction=True)
    return overhead_breakdown(program, run)


def _sweep():
    rows = []
    for name in BENCHES:
        base = _breakdown(name, "dswp", coco=False)
        coco = _breakdown(name, "dswp", coco=True)
        rows.append((name, base, coco))
    return rows


def test_overhead_breakdown(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    display = []
    for name, base, coco in rows:
        display.append((name,
                        "%.1f" % base["computation"],
                        "%.1f" % base["communication"],
                        "%.1f" % base["replicated_control"],
                        "%.1f" % base["glue"],
                        "%.1f" % coco["communication"],
                        "%.1f" % coco["replicated_control"]))
    print(table(["benchmark", "comp%", "comm%", "repl.ctl%", "glue%",
                 "comm% +COCO", "repl.ctl% +COCO"], display,
                title="GREMIO-E4: dynamic overhead breakdown "
                      "(DSWP, 2 threads)"))
    for name, base, coco in rows:
        # Classes account for everything.
        assert abs(sum(base.values()) - 100.0) < 1e-6
        # Computation dominates; overheads are material but not majority.
        assert base["computation"] > 40.0, name
        # COCO never increases the communication share materially.
        assert coco["communication"] <= base["communication"] + 1.0, name
