"""GREMIO-E4: full dynamic overhead breakdown of generated MT code.

A finer-grained version of COCO-Fig1: every dynamically executed
instruction of the two-thread code is attributed to computation,
communication, replicated control (duplicated branches), or glue
(jumps/exits).  Shows where MTCG's overhead actually goes, and how COCO
shifts it.

Metric extraction lives in the ``overhead_breakdown`` spec
(:mod:`repro.bench.specs.ablations`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import OVERHEAD_BENCHES
from repro.report import table


def test_overhead_breakdown(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("overhead_breakdown").collect(FULL))

    def base(name, klass):
        return metrics["pct/base/%s/%s" % (klass, name)].value

    def coco(name, klass):
        return metrics["pct/coco/%s/%s" % (klass, name)].value

    print()
    display = []
    for name in OVERHEAD_BENCHES:
        display.append((name,
                        "%.1f" % base(name, "computation"),
                        "%.1f" % base(name, "communication"),
                        "%.1f" % base(name, "replicated_control"),
                        "%.1f" % base(name, "glue"),
                        "%.1f" % coco(name, "communication"),
                        "%.1f" % coco(name, "replicated_control")))
    print(table(["benchmark", "comp%", "comm%", "repl.ctl%", "glue%",
                 "comm% +COCO", "repl.ctl% +COCO"], display,
                title="GREMIO-E4: dynamic overhead breakdown "
                      "(DSWP, 2 threads)"))
    for name in OVERHEAD_BENCHES:
        classes = ("computation", "communication", "replicated_control",
                   "glue")
        # Classes account for everything.
        assert abs(sum(base(name, k) for k in classes) - 100.0) < 1e-6
        # Computation dominates; overheads are material but not majority.
        assert base(name, "computation") > 40.0, name
        # COCO never increases the communication share materially.
        assert (coco(name, "communication")
                <= base(name, "communication") + 1.0), name
