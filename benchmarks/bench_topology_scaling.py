"""TOPO-E1: topology-aware thread scaling (flat vs clustered machines).

The papers evaluate a flat dual-core CMP whose synchronization array is
equidistant from every core.  This extension experiment scales both
techniques across the machine-topology presets — flat quads against the
clustered ``quad-2x2``/``octa-hier`` machines whose inter-cluster
crossings cost extra cycles — and compares the ``identity`` and
``affinity`` thread placers on the clustered quad.

Metric extraction lives in the ``topology_scaling`` spec
(:mod:`repro.bench.specs.scaling`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.scaling import (PLACER_TOPOLOGY, SCALING_BENCHES,
                                       TECHNIQUES, TOPOLOGY_CURVE,
                                       curve_threads)
from repro.report import table


def _metrics(benchmark):
    return run_once(
        benchmark, lambda: get_spec("topology_scaling").collect(FULL))


def test_topology_scaling_curves(benchmark):
    metrics = _metrics(benchmark)
    rows = []
    for technique in TECHNIQUES:
        for name in SCALING_BENCHES[:1]:
            for preset in TOPOLOGY_CURVE:
                entry = [technique, preset]
                for threads in (1, 2, 4, 8):
                    key = "mt_cycles/%s/%s/%s/%dt" % (technique, name,
                                                      preset, threads)
                    entry.append("%.0f" % metrics[key].value
                                 if key in metrics else "-")
                rows.append(entry)
    print()
    print(table(["technique", "topology", "1T", "2T", "4T", "8T"], rows,
                title="TOPO-E1: MT cycles across machine topologies"))
    for technique in TECHNIQUES:
        for name in SCALING_BENCHES[:1]:
            for preset in TOPOLOGY_CURVE:
                # The single-thread run never crosses clusters: its
                # cycles must match on every preset (the flat papers'
                # machine is the 1-cluster special case).
                assert metrics["mt_cycles/%s/%s/%s/1t"
                               % (technique, name, preset)].value \
                    == metrics["mt_cycles/%s/%s/%s/1t"
                               % (technique, name,
                                  TOPOLOGY_CURVE[0])].value
                for threads in curve_threads(preset):
                    assert metrics["mt_cycles/%s/%s/%s/%dt"
                                   % (technique, name, preset,
                                      threads)].value > 0


def test_affinity_placer_never_loses(benchmark):
    """The affinity placer falls back to the identity placement unless
    its estimated crossing cost strictly improves, so on the clustered
    quad it must never produce more cycles than identity."""
    metrics = _metrics(benchmark)
    rows = []
    for technique in TECHNIQUES:
        for name in SCALING_BENCHES[:1]:
            identity = metrics["placer_cycles/%s/%s/identity"
                               % (technique, name)].value
            affinity = metrics["placer_cycles/%s/%s/affinity"
                               % (technique, name)].value
            gain = metrics["placer_gain/%s/%s" % (technique, name)].value
            rows.append((technique, name, "%.0f" % identity,
                         "%.0f" % affinity, "%.0f" % gain))
            assert affinity <= identity
            assert gain == identity - affinity
    print()
    print(table(["technique", "benchmark", "identity", "affinity",
                 "gain"], rows,
                title="TOPO-E1b: thread placers on %s" % PLACER_TOPOLOGY))
    # At least one clustered cell must actually improve under the
    # affinity placer (the tentpole's acceptance bar).
    assert any(float(row[4]) > 0 for row in rows)
