"""COCO-Fig8: speedup over single-threaded execution, without and with
COCO, for GREMIO and DSWP (2 threads).

Paper shape to reproduce: COCO never hurts communication (speedups may
shift slightly either way through scheduling interactions, which the paper
also reports); the improvement from COCO is larger for GREMIO than for
DSWP on average; DSWP achieves solid pipeline speedups on several
benchmarks.
"""

from harness import BENCH_ORDER, evaluation, run_once

from repro.report import table
from repro.stats import geomean


def _speedups():
    rows = []
    for name in BENCH_ORDER:
        entry = [name]
        for technique in ("gremio", "dswp"):
            for coco in (False, True):
                entry.append(evaluation(name, technique, coco).speedup)
        rows.append(entry)
    return rows


def test_fig8_speedups(benchmark):
    rows = run_once(benchmark, _speedups)
    display = [[r[0]] + ["%.3f" % v for v in r[1:]] for r in rows]
    geomeans = ["geomean"] + [
        "%.3f" % geomean([r[i] for r in rows]) for i in range(1, 5)]
    print()
    print(table(
        ["benchmark", "GREMIO", "GREMIO+COCO", "DSWP", "DSWP+COCO"],
        display + [geomeans],
        title="Figure 8: speedup over single-threaded execution"))

    gremio_base = geomean([r[1] for r in rows])
    gremio_coco = geomean([r[2] for r in rows])
    dswp_base = geomean([r[3] for r in rows])
    dswp_coco = geomean([r[4] for r in rows])

    # COCO helps on average for both techniques and never hurts overall.
    # (Deviation vs the paper, recorded in EXPERIMENTS.md: the paper's
    # COCO gain is larger for GREMIO than DSWP; our reconstruction's
    # GREMIO emits mostly per-iteration-live channels, so its COCO gain
    # is smaller.)
    assert gremio_coco >= gremio_base * 0.999
    assert dswp_coco >= dswp_base * 0.999
    # Parallelization is profitable overall for both techniques.
    assert gremio_coco > 1.0
    assert dswp_coco > 1.0
    # DSWP extracts real pipeline parallelism somewhere.
    assert max(r[3] for r in rows) > 1.25
