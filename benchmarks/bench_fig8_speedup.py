"""COCO-Fig8: speedup over single-threaded execution, without and with
COCO, for GREMIO and DSWP (2 threads).

Paper shape to reproduce: COCO never hurts communication (speedups may
shift slightly either way through scheduling interactions, which the paper
also reports); the improvement from COCO is larger for GREMIO than for
DSWP on average; DSWP achieves solid pipeline speedups on several
benchmarks.

Metric extraction lives in the ``fig8_speedup`` spec
(:mod:`repro.bench.specs.paper`); this module renders the figure and
asserts the paper shape over the spec's machine-readable metrics.
"""

from harness import BENCH_ORDER, run_once

from repro.bench import FULL, get_spec
from repro.report import table

CONFIGS = ("gremio", "gremio+coco", "dswp", "dswp+coco")


def test_fig8_speedups(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("fig8_speedup").collect(FULL))
    display = [[name] + ["%.3f" % metrics["speedup/%s/%s"
                                          % (config, name)].value
                         for config in CONFIGS]
               for name in BENCH_ORDER]
    geomeans = ["geomean"] + ["%.3f" % metrics["geomean/%s"
                                               % config].value
                              for config in CONFIGS]
    print()
    print(table(
        ["benchmark", "GREMIO", "GREMIO+COCO", "DSWP", "DSWP+COCO"],
        display + [geomeans],
        title="Figure 8: speedup over single-threaded execution"))

    gremio_base = metrics["geomean/gremio"].value
    gremio_coco = metrics["geomean/gremio+coco"].value
    dswp_base = metrics["geomean/dswp"].value
    dswp_coco = metrics["geomean/dswp+coco"].value

    # COCO helps on average for both techniques and never hurts overall.
    # (Deviation vs the paper, recorded in EXPERIMENTS.md: the paper's
    # COCO gain is larger for GREMIO than DSWP; our reconstruction's
    # GREMIO emits mostly per-iteration-live channels, so its COCO gain
    # is smaller.)
    assert gremio_coco >= gremio_base * 0.999
    assert dswp_coco >= dswp_base * 0.999
