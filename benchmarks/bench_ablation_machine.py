"""EXT-E2: machine-parameter sensitivity.

Sweeps the synchronization-array access latency and the queue depth,
checking the monotonicities the hardware papers argue for: slower operand
networks never help, and deeper queues never hurt decoupling (they absorb
producer/consumer rate jitter — the reason the papers give DSWP 32-entry
queues).
"""

import dataclasses

from harness import run_once

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program, simulate_single
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.pipeline import normalize
from repro.report import table
from repro.workloads import get_workload

SWEEP_BENCH = "181.mcf"


def _prepare():
    workload = get_workload(SWEEP_BENCH)
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    partition = DSWPPartitioner(DEFAULT_CONFIG).partition(
        function, pdg, profile, 2)
    program = generate(function, pdg, partition)
    return function, program, ref


def _latency_sweep():
    function, program, ref = _prepare()
    st = simulate_single(function, ref.args, ref.memory)
    rows = []
    for latency in (1, 2, 4, 8, 16, 32):
        config = dataclasses.replace(DEFAULT_CONFIG,
                                     sa_access_latency=latency,
                                     sa_queue_size=32)
        mt = simulate_program(program, ref.args, ref.memory, config=config)
        assert mt.live_outs == st.live_outs
        rows.append((latency, mt.cycles, st.cycles / mt.cycles))
    return rows


def _queue_sweep():
    function, program, ref = _prepare()
    st = simulate_single(function, ref.args, ref.memory)
    rows = []
    for depth in (1, 2, 4, 8, 32, 128):
        config = dataclasses.replace(DEFAULT_CONFIG, sa_queue_size=depth)
        mt = simulate_program(program, ref.args, ref.memory, config=config)
        assert mt.live_outs == st.live_outs
        rows.append((depth, mt.cycles, st.cycles / mt.cycles))
    return rows


def test_comm_latency_sensitivity(benchmark):
    rows = run_once(benchmark, _latency_sweep)
    print()
    print(table(["SA latency", "MT cycles", "speedup"],
                [(l, "%.0f" % c, "%.3f" % s) for l, c, s in rows],
                title="EXT-E2a: operand-network latency sweep "
                      "(%s, DSWP)" % SWEEP_BENCH))
    cycles = [c for _, c, _ in rows]
    assert all(b >= a * 0.999 for a, b in zip(cycles, cycles[1:])), \
        "raising communication latency must not speed execution up"


def test_queue_depth_sensitivity(benchmark):
    rows = run_once(benchmark, _queue_sweep)
    print()
    print(table(["queue depth", "MT cycles", "speedup"],
                [(d, "%.0f" % c, "%.3f" % s) for d, c, s in rows],
                title="EXT-E2b: queue-depth sweep (%s, DSWP)"
                      % SWEEP_BENCH))
    cycles = [c for _, c, _ in rows]
    # Queue depth must never be a first-order slowdown: the whole sweep
    # stays within a small band of the best point (run-to-run variation
    # in the interleaving-order cache/port approximations is ~1-2%), and
    # the deepest configuration is at least as good as single-entry
    # queues up to that noise.
    assert max(cycles) <= min(cycles) * 1.05
    assert cycles[-1] <= cycles[0] * 1.02
