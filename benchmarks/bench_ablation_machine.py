"""EXT-E2: machine-parameter sensitivity.

Sweeps the synchronization-array access latency and the queue depth,
checking the monotonicities the hardware papers argue for: slower operand
networks never help, and deeper queues never hurt decoupling (they absorb
producer/consumer rate jitter — the reason the papers give DSWP 32-entry
queues).

Metric extraction lives in the ``ablation_machine`` spec
(:mod:`repro.bench.specs.ablations`).
"""

from harness import run_once

from repro.bench import FULL, get_spec
from repro.bench.specs.ablations import (LATENCIES, MACHINE_SWEEP_BENCH,
                                         QUEUE_DEPTHS)
from repro.report import table


def _sweep_rows(metrics, kind, points):
    st = metrics["st_cycles"].value
    rows = []
    for point in points:
        mt = metrics["mt_cycles/%s/%d" % (kind, point)].value
        rows.append((point, mt, st / mt))
    return rows


def test_comm_latency_sensitivity(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("ablation_machine").collect(FULL))
    rows = _sweep_rows(metrics, "latency", LATENCIES)
    print()
    print(table(["SA latency", "MT cycles", "speedup"],
                [(lat, "%.0f" % c, "%.3f" % s) for lat, c, s in rows],
                title="EXT-E2a: operand-network latency sweep "
                      "(%s, DSWP)" % MACHINE_SWEEP_BENCH))
    cycles = [c for _, c, _ in rows]
    assert all(b >= a * 0.999 for a, b in zip(cycles, cycles[1:])), \
        "raising communication latency must not speed execution up"


def test_queue_depth_sensitivity(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("ablation_machine").collect(FULL))
    rows = _sweep_rows(metrics, "queue", QUEUE_DEPTHS)
    print()
    print(table(["queue depth", "MT cycles", "speedup"],
                [(d, "%.0f" % c, "%.3f" % s) for d, c, s in rows],
                title="EXT-E2b: queue-depth sweep (%s, DSWP)"
                      % MACHINE_SWEEP_BENCH))
    cycles = [c for _, c, _ in rows]
    # Queue depth must never be a first-order slowdown: the whole sweep
    # stays within a small band of the best point (run-to-run variation
    # in the interleaving-order cache/port approximations is ~1-2%), and
    # the deepest configuration is at least as good as single-entry
    # queues up to that noise.
    assert max(cycles) <= min(cycles) * 1.05
    assert cycles[-1] <= cycles[0] * 1.02
