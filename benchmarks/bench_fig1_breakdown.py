"""COCO-Fig1: breakdown of dynamic instructions into computation vs
communication for code parallelized with (a) GREMIO and (b) DSWP under
baseline MTCG.

Paper shape to reproduce: communication is a significant fraction of
dynamic instructions — up to about one fourth — motivating COCO.
"""

from harness import BENCH_ORDER, evaluation, run_once

from repro.report import bar_chart


def _breakdown(technique):
    rows = []
    for name in BENCH_ORDER:
        ev = evaluation(name, technique, coco=False)
        rows.append((name, 100.0 * ev.communication_fraction))
    return rows


def test_fig1a_gremio_breakdown(benchmark):
    rows = run_once(benchmark, lambda: _breakdown("gremio"))
    print()
    print(bar_chart(rows, title="Figure 1(a): dynamic communication "
                                "instructions, GREMIO + MTCG (% of total)",
                    unit="%", reference=100.0))
    # Shape: communication is significant for parallelized benchmarks.
    parallelized = [value for _, value in rows if value > 1.0]
    assert parallelized, "GREMIO never parallelized anything"
    assert max(value for _, value in rows) <= 50.0


def test_fig1b_dswp_breakdown(benchmark):
    rows = run_once(benchmark, lambda: _breakdown("dswp"))
    print()
    print(bar_chart(rows, title="Figure 1(b): dynamic communication "
                                "instructions, DSWP + MTCG (% of total)",
                    unit="%", reference=100.0))
    parallelized = [value for _, value in rows if value > 1.0]
    assert len(parallelized) >= 8, "DSWP should parallelize most benchmarks"
    assert max(value for _, value in rows) <= 50.0
