"""COCO-Fig1: breakdown of dynamic instructions into computation vs
communication for code parallelized with (a) GREMIO and (b) DSWP under
baseline MTCG.

Paper shape to reproduce: communication is a significant fraction of
dynamic instructions — up to about one fourth — motivating COCO.

Metric extraction lives in the ``fig1_breakdown`` spec
(:mod:`repro.bench.specs.paper`).
"""

from harness import BENCH_ORDER, run_once

from repro.bench import FULL, get_spec
from repro.report import bar_chart


def _rows(metrics, technique):
    return [(name, metrics["comm_pct/%s/%s" % (technique, name)].value)
            for name in BENCH_ORDER]


def test_fig1a_gremio_breakdown(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("fig1_breakdown").collect(FULL))
    rows = _rows(metrics, "gremio")
    print()
    print(bar_chart(rows, title="Figure 1(a): dynamic communication "
                                "instructions, GREMIO + MTCG (% of total)",
                    unit="%", reference=100.0))
    # Shape: communication is significant for parallelized benchmarks.
    parallelized = [value for _, value in rows if value > 1.0]
    assert parallelized, "GREMIO never parallelized anything"
    assert metrics["comm_pct/gremio/max"].value <= 50.0


def test_fig1b_dswp_breakdown(benchmark):
    metrics = run_once(
        benchmark, lambda: get_spec("fig1_breakdown").collect(FULL))
    rows = _rows(metrics, "dswp")
    print()
    print(bar_chart(rows, title="Figure 1(b): dynamic communication "
                                "instructions, DSWP + MTCG (% of total)",
                    unit="%", reference=100.0))
    parallelized = [value for _, value in rows if value > 1.0]
    assert len(parallelized) >= 8, "DSWP should parallelize most benchmarks"
    assert metrics["comm_pct/dswp/max"].value <= 50.0
