"""Compilation-cost microbenchmarks (the papers' claim: COCO's min-cut
passes do not significantly increase compilation time).

These are true pytest-benchmark microbenchmarks (multiple rounds) over the
compile-side passes only — no simulation.
"""

from repro.analysis import build_pdg
from repro.coco.driver import optimize as coco_optimize
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.partition.gremio import GremioPartitioner
from repro.pipeline import normalize
from repro.workloads import get_workload

BENCH = "435.gromacs"  # the largest kernel in the suite


def _prepared():
    workload = get_workload(BENCH)
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    return function, profile, pdg


def test_pdg_construction_time(benchmark):
    workload = get_workload(BENCH)
    function = normalize(workload.build())
    result = benchmark(lambda: build_pdg(function))
    assert result.arcs


def test_gremio_partition_time(benchmark):
    function, profile, pdg = _prepared()
    partitioner = GremioPartitioner(DEFAULT_CONFIG)
    partition = benchmark(
        lambda: partitioner.partition(function, pdg, profile, 2))
    assert partition.n_threads == 2


def test_dswp_partition_time(benchmark):
    function, profile, pdg = _prepared()
    partitioner = DSWPPartitioner(DEFAULT_CONFIG)
    partition = benchmark(
        lambda: partitioner.partition(function, pdg, profile, 2))
    assert partition.n_threads == 2


def test_mtcg_codegen_time(benchmark):
    function, profile, pdg = _prepared()
    partition = GremioPartitioner(DEFAULT_CONFIG).partition(
        function, pdg, profile, 2)
    program = benchmark(lambda: generate(function, pdg, partition))
    assert program.n_threads == 2


def test_coco_optimization_time(benchmark):
    """COCO's Edmonds-Karp min cuts over every register's live range —
    the pass whose compile cost the paper sizes as acceptable."""
    function, profile, pdg = _prepared()
    partition = GremioPartitioner(DEFAULT_CONFIG).partition(
        function, pdg, profile, 2)
    result = benchmark(
        lambda: coco_optimize(function, pdg, partition, profile))
    assert result.iterations >= 1
