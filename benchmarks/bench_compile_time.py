"""Compilation-cost microbenchmarks (the papers' claim: COCO's min-cut
passes do not significantly increase compilation time).

These are true pytest-benchmark microbenchmarks (multiple rounds) over the
compile-side passes only — no simulation.  The headless counterpart is
the ``compile_time`` spec (:mod:`repro.bench.specs.hostperf`): single-
shot timings with wide tolerance bands for the regression gate.
"""

from repro.analysis import build_pdg
from repro.bench import SMOKE, get_spec
from repro.coco.driver import optimize as coco_optimize
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.partition.gremio import GremioPartitioner
from repro.api import normalize
from repro.workloads import get_workload

BENCH = "435.gromacs"  # the largest kernel in the suite


def _prepared():
    workload = get_workload(BENCH)
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    return function, profile, pdg


def test_pdg_construction_time(benchmark):
    workload = get_workload(BENCH)
    function = normalize(workload.build())
    result = benchmark(lambda: build_pdg(function))
    assert result.arcs


def test_gremio_partition_time(benchmark):
    function, profile, pdg = _prepared()
    partitioner = GremioPartitioner(DEFAULT_CONFIG)
    partition = benchmark(
        lambda: partitioner.partition(function, pdg, profile, 2))
    assert partition.n_threads == 2


def test_dswp_partition_time(benchmark):
    function, profile, pdg = _prepared()
    partitioner = DSWPPartitioner(DEFAULT_CONFIG)
    partition = benchmark(
        lambda: partitioner.partition(function, pdg, profile, 2))
    assert partition.n_threads == 2


def test_mtcg_codegen_time(benchmark):
    function, profile, pdg = _prepared()
    partition = GremioPartitioner(DEFAULT_CONFIG).partition(
        function, pdg, profile, 2)
    program = benchmark(lambda: generate(function, pdg, partition))
    assert program.n_threads == 2


def test_coco_optimization_time(benchmark):
    """COCO's Edmonds-Karp min cuts over every register's live range —
    the pass whose compile cost the paper sizes as acceptable."""
    function, profile, pdg = _prepared()
    partition = GremioPartitioner(DEFAULT_CONFIG).partition(
        function, pdg, profile, 2)
    result = benchmark(
        lambda: coco_optimize(function, pdg, partition, profile))
    assert result.iterations >= 1


def test_compile_time_spec_metrics(benchmark):
    """The headless spec times the same passes once each and tags them
    with the wall-time tolerance band (never an exact gate)."""
    metrics = benchmark.pedantic(
        lambda: get_spec("compile_time").collect(SMOKE),
        rounds=1, iterations=1)
    expected = {"seconds/pdg_build", "seconds/gremio_partition",
                "seconds/dswp_partition", "seconds/mtcg_codegen",
                "seconds/coco_optimize"}
    assert set(metrics) == expected
    for name, metric in metrics.items():
        assert metric.unit == "s"
        assert metric.tolerance and metric.tolerance > 0, name
        assert metric.value >= 0.0
