"""The result of MTCG: a multi-threaded program."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.cfg import Function
from ..partition.base import Partition
from .channels import CommChannel


class MTProgram:
    """Per-thread CFGs plus the communication channels connecting them.

    ``threads[i]`` is a complete :class:`Function` for thread ``i``; all
    thread functions share the original function's memory objects (same
    :class:`MemObject` instances, hence the same layout) and parameter
    list.  Live-outs are declared only on ``exit_thread``, the thread that
    owns the original ``exit`` instruction and therefore receives every
    live-out value.
    """

    def __init__(self, original: Function, partition: Partition,
                 threads: List[Function], channels: List[CommChannel],
                 exit_thread: int):
        self.original = original
        self.partition = partition
        self.threads = threads
        self.channels = channels
        self.exit_thread = exit_thread

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def n_queues(self) -> int:
        return len(self.channels)

    def channel_by_queue(self, queue: int) -> Optional[CommChannel]:
        for channel in self.channels:
            if channel.queue == queue:
                return channel
        return None

    def static_instruction_counts(self) -> Dict[str, int]:
        """Static computation vs communication instruction counts across
        all threads (jumps/synthesized glue count as computation)."""
        computation = 0
        communication = 0
        for thread in self.threads:
            for instruction in thread.instructions():
                if instruction.is_communication():
                    communication += 1
                else:
                    computation += 1
        return {"computation": computation, "communication": communication}

    def __repr__(self) -> str:  # pragma: no cover
        return "<MTProgram %s: %d threads, %d channels>" % (
            self.original.name, self.n_threads, len(self.channels))
