"""Communication channels: what MTCG inserts to satisfy cross-thread arcs.

A :class:`CommChannel` is one logical stream of values (or sync tokens)
between a pair of threads, satisfying one or more PDG arcs.  It owns a
queue and a set of *insertion points*; at every point, the source thread
executes a produce and the target thread the matching consume.  Because
both threads materialize the same points under the same control conditions,
produces and consumes pair up dynamically (the key MTCG invariant behind
correctness and deadlock freedom).

A :class:`Point` addresses a program position in the *original* CFG:
``Point(block, index)`` is "immediately before the instruction at
``index``"; ``index == 0`` is the block entry and ``index == len(block)-1``
is just before the terminator.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from ..analysis.pdg import PDG, DepKind, DependenceArc
from ..ir.cfg import Function
from ..partition.base import Partition


class Point(NamedTuple):
    block: str
    index: int


class CommChannel:
    """One produce/consume stream between two threads."""

    __slots__ = ("kind", "register", "source_thread", "target_thread",
                 "queue", "points", "arcs", "branch_iid", "source_iid")

    def __init__(self, kind: DepKind, source_thread: int, target_thread: int,
                 register: Optional[str], points: List[Point],
                 arcs: List[DependenceArc], queue: int = -1,
                 branch_iid: Optional[int] = None,
                 source_iid: Optional[int] = None):
        self.kind = kind
        self.source_thread = source_thread
        self.target_thread = target_thread
        self.register = register
        self.points = points
        self.arcs = arcs
        self.queue = queue
        self.branch_iid = branch_iid
        self.source_iid = source_iid

    def __repr__(self) -> str:  # pragma: no cover
        return "<Channel q%d %s %r T%d->T%d at %s>" % (
            self.queue, self.kind.value, self.register, self.source_thread,
            self.target_thread, list(self.points))


def default_point_after(function: Function, iid: int) -> Point:
    """The baseline MTCG placement: right after the source instruction."""
    block_of = function.block_of()
    position = function.position_of()
    return Point(block_of[iid], position[iid][1] + 1)


def default_point_before(function: Function, iid: int) -> Point:
    block_of = function.block_of()
    position = function.position_of()
    return Point(block_of[iid], position[iid][1])


def build_data_channels(function: Function, pdg: PDG, partition: Partition
                        ) -> List[CommChannel]:
    """Baseline channels for cross-thread register and memory arcs.

    Placement: at the source instruction, per the original MTCG algorithm.
    An instruction that sources several dependences of the same flavor into
    the same thread is communicated once (the paper's dedup optimization).
    """
    block_of = function.block_of()
    position = function.position_of()
    channels: Dict[Tuple, CommChannel] = {}
    for arc in pdg.arcs:
        source_thread = partition.thread_of(arc.source)
        target_thread = partition.thread_of(arc.target)
        if source_thread == target_thread:
            continue
        if arc.kind is DepKind.CONTROL:
            continue  # realized via relevant branches, not data channels
        point = Point(block_of[arc.source], position[arc.source][1] + 1)
        if arc.kind is DepKind.REGISTER:
            key = ("reg", arc.source, arc.register, target_thread)
        else:
            key = ("mem", arc.source, target_thread)
        channel = channels.get(key)
        if channel is None:
            channels[key] = CommChannel(arc.kind, source_thread,
                                        target_thread, arc.register,
                                        [point], [arc],
                                        source_iid=arc.source)
        else:
            channel.arcs.append(arc)
    ordered = [channels[key] for key in sorted(channels,
                                               key=lambda k: (k[0],) + tuple(
                                                   str(x) for x in k[1:]))]
    return ordered


def assign_queues(channels: List[CommChannel], start: int = 0) -> int:
    """Give each channel a dense queue id; returns the number used."""
    for offset, channel in enumerate(channels):
        channel.queue = start + offset
    return len(channels)
