"""Relevant branches, blocks, and points (Definitions 1 and 2).

A branch is *relevant* to a thread if the thread must contain it — because
it was assigned there, because it controls the insertion point of one of
the thread's input dependences, or because it controls another relevant
branch.  Relevant branches are exactly the branches a thread's generated
CFG replicates; every relevant branch not assigned to the thread needs its
condition communicated (the "transitive control dependences" of MTCG).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.control_dependence import (ControlDependenceGraph,
                                           control_dependence_graph)
from ..analysis.pdg import PDG, DepKind
from ..ir.cfg import Function
from ..partition.base import Partition
from .channels import CommChannel, Point


class RelevanceInfo:
    """Per-thread relevant branch/block sets for one partition."""

    def __init__(self, function: Function, partition: Partition,
                 cdg: ControlDependenceGraph,
                 relevant_branches: Dict[int, Set[str]],
                 relevant_blocks: Dict[int, Set[str]]):
        self.function = function
        self.partition = partition
        self.cdg = cdg
        # thread -> labels of blocks whose terminating branch the thread
        # must contain (assigned or duplicated).
        self.relevant_branches = relevant_branches
        self.relevant_blocks = relevant_blocks

    def branch_relevant_to(self, thread: int, branch_block: str) -> bool:
        return branch_block in self.relevant_branches.get(thread, set())

    def is_relevant_point(self, thread: int, block_label: str) -> bool:
        """Definition 2: a point is relevant iff every branch controlling it
        is a relevant branch of the thread."""
        controllers = self.cdg.transitive_controlling_branches(block_label)
        return controllers <= self.relevant_branches.get(thread, set())

    def duplicated_branches(self, thread: int) -> List[str]:
        """Relevant branch blocks whose branch is assigned elsewhere."""
        result = []
        for label in sorted(self.relevant_branches.get(thread, set())):
            branch = self.function.block(label).terminator
            if self.partition.thread_of(branch.iid) != thread:
                result.append(label)
        return result


def compute_relevance(function: Function, pdg: PDG, partition: Partition,
                      data_channels: List[CommChannel],
                      cdg: Optional[ControlDependenceGraph] = None
                      ) -> RelevanceInfo:
    """Compute relevant branches (Definition 1) and relevant blocks for
    every thread, given the chosen data-channel insertion points."""
    if cdg is None:
        cdg = pdg.cdg if pdg is not None else control_dependence_graph(
            function)
    block_of = function.block_of()
    n = partition.n_threads

    relevant_branches: Dict[int, Set[str]] = {t: set() for t in range(n)}

    def add_with_controllers(thread: int, branch_block: str) -> None:
        if branch_block in relevant_branches[thread]:
            return
        relevant_branches[thread].add(branch_block)
        for controller in cdg.transitive_controlling_branches(branch_block):
            add_with_controllers(thread, controller)

    # Rule 1: branches assigned to the thread (plus rule-3 closure).
    for instruction in function.instructions():
        if instruction.is_branch():
            thread = partition.thread_of(instruction.iid)
            label = block_of[instruction.iid]
            relevant_branches[thread].add(label)
            for controller in cdg.transitive_controlling_branches(label):
                add_with_controllers(thread, controller)

    # Cross-thread control arcs: the branch must be replicated in the
    # target thread (plus closure).
    for arc in pdg.arcs_of_kind(DepKind.CONTROL):
        source_thread = partition.thread_of(arc.source)
        target_thread = partition.thread_of(arc.target)
        if source_thread == target_thread:
            continue
        add_with_controllers(target_thread, block_of[arc.source])

    # Rule 2: branches controlling the insertion points of the thread's
    # input dependences (plus closure).
    for channel in data_channels:
        for point in channel.points:
            for controller in cdg.transitive_controlling_branches(
                    point.block):
                add_with_controllers(channel.target_thread, controller)

    # Relevant blocks: blocks holding the thread's instructions, blocks of
    # channel endpoints, and blocks of relevant branches.
    relevant_blocks: Dict[int, Set[str]] = {t: set() for t in range(n)}
    for instruction in function.instructions():
        relevant_blocks[partition.thread_of(instruction.iid)].add(
            block_of[instruction.iid])
    for channel in data_channels:
        for point in channel.points:
            relevant_blocks[channel.source_thread].add(point.block)
            relevant_blocks[channel.target_thread].add(point.block)
    for thread in range(n):
        relevant_blocks[thread] |= relevant_branches[thread]

    return RelevanceInfo(function, partition, cdg, relevant_branches,
                         relevant_blocks)


def control_channels(function: Function, partition: Partition,
                     relevance: RelevanceInfo,
                     condition_covered=frozenset()) -> List[CommChannel]:
    """One condition channel per (duplicated branch, target thread): the
    branch's home thread sends the condition register right before the
    branch; the target consumes it and executes the duplicate.

    ``condition_covered`` lists (branch block, thread) pairs whose
    condition operand already arrives via an optimized register channel
    (COCO's merging of branch operands into data communication) — those
    duplicates read the register directly and need no condition channel.
    """
    channels: List[CommChannel] = []
    position = function.position_of()
    for thread in range(partition.n_threads):
        for label in relevance.duplicated_branches(thread):
            if (label, thread) in condition_covered:
                continue
            branch = function.block(label).terminator
            home = partition.thread_of(branch.iid)
            point = Point(label, position[branch.iid][1])
            channels.append(CommChannel(
                DepKind.CONTROL, home, thread, branch.srcs[0], [point],
                arcs=[], branch_iid=branch.iid, source_iid=branch.iid))
    channels.sort(key=lambda c: (c.branch_iid, c.target_thread))
    return channels
