"""MTCG: multi-threaded code generation for arbitrary partitions."""

from .channels import (CommChannel, Point, assign_queues,
                       build_data_channels, default_point_after,
                       default_point_before)
from .codegen import ENTRY_LABEL, EXIT_LABEL, CodegenError, generate
from .program import MTProgram
from .queues import QueueAllocation, QueueAllocationError, allocate_queues
from .relevant import RelevanceInfo, compute_relevance, control_channels

__all__ = [
    "CommChannel", "Point", "assign_queues", "build_data_channels",
    "default_point_after", "default_point_before", "ENTRY_LABEL",
    "EXIT_LABEL", "CodegenError", "generate", "MTProgram",
    "QueueAllocation", "QueueAllocationError", "allocate_queues",
    "RelevanceInfo", "compute_relevance", "control_channels",
]
