"""Multi-Threaded Code Generation (MTCG), after Ottoni et al. (MICRO 2005).

Given any partition of a function's instructions into threads, produce one
CFG per thread plus the produce/consume communication that satisfies every
cross-thread PDG dependence:

1. each thread's CFG contains its *relevant blocks* (blocks holding its
   instructions, communication insertion points, and relevant branches);
2. instructions keep their original relative order;
3. register dependences communicate the register, memory dependences a
   sync token, and control dependences replicate the branch (consuming its
   condition register);
4. branch and jump targets are remapped to each thread's nearest relevant
   postdominator, with a synthesized entry/exit pair closing the CFG.

The generator also accepts externally chosen channel placements, which is
how the COCO extension plugs in optimized communication points.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import VIRTUAL_EXIT
from ..analysis.pdg import PDG, DepKind
from ..ir.cfg import Function
from ..ir.instructions import Instruction, Opcode
from ..ir.verify import verify_function
from ..partition.base import Partition
from .channels import CommChannel, Point, assign_queues, build_data_channels
from .program import MTProgram
from .relevant import RelevanceInfo, compute_relevance, control_channels

ENTRY_LABEL = "__mtcg_entry"
EXIT_LABEL = "__mtcg_exit"


class CodegenError(Exception):
    pass


def generate(function: Function, pdg: PDG, partition: Partition,
             data_channels: Optional[List[CommChannel]] = None,
             condition_covered=frozenset(),
             verify: bool = True,
             queue_allocation: str = "dense",
             config=None) -> MTProgram:
    """Run MTCG.  ``data_channels`` overrides the baseline at-the-source
    placement of register/memory communication (COCO passes optimized
    channels); control channels are always derived from the relevance
    computation.  ``condition_covered`` suppresses condition channels for
    duplicated branches whose operand a register channel already delivers.
    ``queue_allocation`` chooses between one physical queue per channel
    ("dense") and the sharing allocator ("shared", see
    :mod:`repro.mtcg.queues`).  ``config`` (a
    :class:`~repro.machine.config.MachineConfig`) enables the per-cluster
    queue-capacity check when it carries an explicit clustered topology —
    each cluster's synchronization-array slice only holds
    ``topology.sa_queues`` physical queues.
    """
    exit_thread = _exit_thread(function, partition)
    if data_channels is None:
        data_channels = build_data_channels(function, pdg, partition)
    relevance = compute_relevance(function, pdg, partition, data_channels)
    ctl_channels = control_channels(function, partition, relevance,
                                    condition_covered)
    channels = list(data_channels) + ctl_channels
    if queue_allocation == "shared":
        from .queues import allocate_queues
        allocate_queues(channels, function)
    elif queue_allocation == "dense":
        assign_queues(channels)
    else:
        raise CodegenError("unknown queue_allocation %r"
                           % (queue_allocation,))
    if config is not None and config.topology is not None:
        from .queues import check_cluster_capacity
        check_cluster_capacity(channels, config.topology)

    threads = [
        _generate_thread(function, partition, relevance, channels, thread,
                         exit_thread)
        for thread in range(partition.n_threads)
    ]
    if verify:
        for thread_function in threads:
            verify_function(thread_function, allow_comm=True)
    return MTProgram(function, partition, threads, channels, exit_thread)


def _exit_thread(function: Function, partition: Partition) -> int:
    exit_threads = {partition.thread_of(instruction.iid)
                    for instruction in function.instructions()
                    if instruction.op is Opcode.EXIT}
    if len(exit_threads) != 1:
        raise CodegenError(
            "all exit instructions must live on one thread, got %s"
            % sorted(exit_threads))
    return exit_threads.pop()


def _generate_thread(function: Function, partition: Partition,
                     relevance: RelevanceInfo,
                     channels: List[CommChannel], thread: int,
                     exit_thread: int) -> Function:
    relevant_blocks = relevance.relevant_blocks[thread]
    relevant_branches = relevance.relevant_branches[thread]
    postdom = relevance.cdg.postdom

    result = Function("%s__t%d" % (function.name, thread),
                      params=function.params,
                      live_outs=(function.live_outs
                                 if thread == exit_thread else []))
    # Share memory objects (and their layout) with the original function.
    result.mem_objects = function.mem_objects
    result.pointer_params = dict(function.pointer_params)
    result._next_iid = function._next_iid

    # Communication operations per insertion point, in queue order (the
    # same on both sides of every channel — the pairing invariant).
    point_ops: Dict[Point, List[Tuple[str, CommChannel]]] = defaultdict(list)
    for channel in channels:
        for point in channel.points:
            if channel.source_thread == thread:
                point_ops[point].append(("produce", channel))
            if channel.target_thread == thread:
                point_ops[point].append(("consume", channel))

    def next_relevant(label: str) -> str:
        """Nearest (inclusive) relevant postdominator, or the exit stub."""
        if not postdom.contains(label):
            return EXIT_LABEL
        for node in postdom.walk_up(label):
            if node == VIRTUAL_EXIT:
                return EXIT_LABEL
            if node in relevant_blocks:
                return node
        return EXIT_LABEL

    def fresh(instruction: Instruction) -> Instruction:
        result.assign_iid(instruction)
        return instruction

    def emit_comm(block, kind: str, channel: CommChannel) -> None:
        if kind == "produce":
            if channel.kind is DepKind.MEMORY:
                op = Instruction(Opcode.PRODUCE_SYNC, queue=channel.queue)
            else:
                op = Instruction(Opcode.PRODUCE, srcs=[channel.register],
                                 queue=channel.queue)
        else:
            if channel.kind is DepKind.MEMORY:
                op = Instruction(Opcode.CONSUME_SYNC, queue=channel.queue)
            else:
                op = Instruction(Opcode.CONSUME, dest=channel.register,
                                 queue=channel.queue)
        op.origin = channel.source_iid
        block.append(fresh(op))

    # Synthesized entry: jump to the first relevant point of the region.
    entry_block = result.add_block(ENTRY_LABEL)
    entry_block.append(fresh(Instruction(
        Opcode.JMP, labels=[next_relevant(function.entry.label)])))

    for block in function.blocks:
        if block.label not in relevant_blocks:
            continue
        new_block = result.add_block(block.label)
        terminator = block.terminator
        for index, instruction in enumerate(block.instructions):
            for kind, channel in point_ops.get(Point(block.label, index), ()):
                emit_comm(new_block, kind, channel)
            if instruction is terminator:
                break
            if partition.thread_of(instruction.iid) == thread:
                new_block.append(instruction.copy())

        # Terminator: keep, duplicate, or degrade to a jump.
        if terminator.op is Opcode.EXIT:
            if partition.thread_of(terminator.iid) == thread:
                new_block.append(terminator.copy())
            else:
                stub = Instruction(Opcode.EXIT)
                stub.origin = terminator.iid
                new_block.append(fresh(stub))
        elif terminator.op is Opcode.JMP:
            new_block.append(fresh(Instruction(
                Opcode.JMP, labels=[next_relevant(terminator.labels[0])])))
        else:  # a conditional branch
            if block.label in relevant_branches:
                labels = [next_relevant(label)
                          for label in terminator.labels]
                if labels[0] == labels[1]:
                    # Both arms converge within this thread; no branch
                    # needed even though it is "relevant" (can happen when
                    # relevance came from closure rules only).
                    new_block.append(fresh(Instruction(Opcode.JMP,
                                                       labels=[labels[0]])))
                elif partition.thread_of(terminator.iid) == thread:
                    branch = terminator.copy()
                    branch.labels = tuple(labels)
                    new_block.append(branch)
                else:
                    duplicate = Instruction(Opcode.BR,
                                            srcs=terminator.srcs,
                                            labels=labels)
                    duplicate.origin = terminator.iid
                    new_block.append(fresh(duplicate))
            else:
                # Irrelevant branch: both arms reach the same next relevant
                # block, namely the nearest relevant *strict* postdominator.
                if postdom.contains(block.label):
                    target = next_relevant(postdom.idom[block.label])
                else:
                    target = EXIT_LABEL
                new_block.append(fresh(Instruction(Opcode.JMP,
                                                   labels=[target])))

    exit_block = result.add_block(EXIT_LABEL)
    exit_block.append(fresh(Instruction(Opcode.EXIT)))
    return result
