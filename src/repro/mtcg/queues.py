"""Queue allocation: mapping communication channels to physical queues.

MTCG gives every channel its own queue for simplicity; the papers note
that "a queue-allocation algorithm can reduce the number of queues
necessary" (the synchronization array has 256).  This pass lets channels
share a physical queue when that is provably safe:

Two channels may share iff both of the following hold:

* they connect the **same producer thread to the same consumer thread** —
  then all pushes are ordered by the producer's program order and all
  pops by the consumer's, so the FIFO pairs them correctly; and
* every program point of one channel strictly precedes every point of
  the other in the CFG's acyclic (SCC-condensed) order — so their point
  regions never interleave across a loop.

Anything weaker is unsound: in particular, sharing a queue between
``T0 -> T1`` (early region) and ``T1 -> T0`` (late region) deadlocks even
though the *push* streams are ordered, because the two channels have
different consumer threads and the later consumer can race ahead of the
earlier one and steal its pending value from the shared FIFO.  (This was
observed on a real schedule; see tests/test_queue_allocation.py.)

Channels that do not satisfy the rule conflict; a greedy
interference-graph coloring assigns physical ids.  The allocator fails
loudly if the machine's queue count is exceeded.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..graphs import condense
from ..ir.cfg import Function
from .channels import CommChannel


class QueueAllocationError(Exception):
    pass


class QueueAllocation:
    """Result: physical id per channel plus accounting."""

    def __init__(self, physical: Dict[int, int], n_physical: int,
                 n_channels: int):
        self.physical = physical      # channel index -> physical queue id
        self.n_physical = n_physical
        self.n_channels = n_channels

    @property
    def queues_saved(self) -> int:
        return self.n_channels - self.n_physical

    def __repr__(self) -> str:  # pragma: no cover
        return "<QueueAllocation %d channels -> %d queues>" % (
            self.n_channels, self.n_physical)


def _block_scc_order(function: Function) -> Dict[str, int]:
    """Topological position of each block's CFG strongly connected
    component (blocks of one loop share a position)."""
    successors = {block.label: list(block.successors())
                  for block in function.blocks}
    _, component_of, _ = condense([b.label for b in function.blocks],
                                  successors)
    return component_of


def _channel_span(channel: CommChannel,
                  order: Dict[str, int]) -> Tuple[int, int]:
    positions = [order[point.block] for point in channel.points
                 if point.block in order]
    if not positions:
        return (0, 1 << 30)
    return (min(positions), max(positions))


def _may_share(first: CommChannel, second: CommChannel,
               order: Dict[str, int]) -> bool:
    """True iff the channels connect the same (producer, consumer) pair
    and their point regions are strictly ordered (see module docstring)."""
    if (first.source_thread, first.target_thread) \
            != (second.source_thread, second.target_thread):
        return False
    first_span = _channel_span(first, order)
    second_span = _channel_span(second, order)
    return (first_span[1] < second_span[0]
            or second_span[1] < first_span[0])


def allocate_queues(channels: Sequence[CommChannel], function: Function,
                    max_queues: int = 256,
                    allow_sharing: bool = True) -> QueueAllocation:
    """Assign physical queue ids to ``channels`` (mutates their ``queue``
    fields).  With ``allow_sharing`` disabled, this is a dense 1:1
    renumbering with a capacity check."""
    order = _block_scc_order(function)
    n = len(channels)
    physical: Dict[int, int] = {}
    # Greedy coloring in channel order; colors carry their member sets so
    # a channel must be shareable with *every* member of a color.
    color_members: List[List[int]] = []
    for index, channel in enumerate(channels):
        chosen = -1
        if allow_sharing:
            for color, members in enumerate(color_members):
                if all(_may_share(channels[m], channel, order)
                       for m in members):
                    chosen = color
                    break
        if chosen < 0:
            color_members.append([])
            chosen = len(color_members) - 1
        color_members[chosen].append(index)
        physical[index] = chosen

    n_physical = len(color_members)
    if n_physical > max_queues:
        raise QueueAllocationError(
            "%d physical queues needed, machine has %d"
            % (n_physical, max_queues))
    for index, channel in enumerate(channels):
        channel.queue = physical[index]
    return QueueAllocation(physical, n_physical, n)


def check_cluster_capacity(channels: Sequence[CommChannel], topology,
                           placement=None) -> Dict[int, int]:
    """Check the per-cluster queue budget of a clustered topology.

    Each physical queue lives in its *producer* core's cluster (the
    synchronization-array slice the produce writes into).  ``placement``
    maps thread -> core (identity by default).  Returns the per-cluster
    physical-queue counts; raises :class:`QueueAllocationError` when any
    cluster needs more queues than its slice provides.  Single-cluster
    topologies reduce to the global ``max_queues`` check above.
    """
    cores = getattr(placement, "cores", placement)
    per_cluster: Dict[int, set] = {}
    for channel in channels:
        if channel.queue is None:
            continue
        core = (cores[channel.source_thread] if cores is not None
                else channel.source_thread)
        cluster = topology.cluster_of(min(core, topology.n_cores - 1))
        per_cluster.setdefault(cluster, set()).add(channel.queue)
    counts = {cluster: len(queues)
              for cluster, queues in sorted(per_cluster.items())}
    for cluster, count in counts.items():
        if count > topology.sa_queues:
            raise QueueAllocationError(
                "cluster %d needs %d physical queues, its "
                "synchronization-array slice has %d (topology %r)"
                % (cluster, count, topology.sa_queues, topology.name))
    return counts
