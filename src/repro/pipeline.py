"""The end-to-end GMT scheduling pipeline.

One call takes a workload (or any IR function) through the whole stack:

    normalize CFG -> profile (train inputs) -> PDG -> partition (GREMIO or
    DSWP) -> [COCO] -> MTCG -> timed simulation on the CMP model (ref
    inputs) -> metrics

This is the API the examples and every benchmark harness use.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .analysis.pdg import PDG, build_pdg
from .coco.driver import CocoResult, optimize as coco_optimize
from .interp.interpreter import run_function
from .interp.profile import EdgeProfile, static_profile
from .ir.cfg import Function
from .ir.transforms import renumber_iids, split_critical_edges
from .machine.config import DEFAULT_CONFIG, MachineConfig
from .machine.timing import (TimedResult, simulate_program, simulate_single)
from .mtcg.codegen import generate
from .mtcg.program import MTProgram
from .partition.base import Partition, Partitioner
from .partition.dswp import DSWPPartitioner
from .partition.gremio import GremioPartitioner
from .workloads.common import Workload

TECHNIQUES = ("gremio", "gremio-flat", "dswp")


def make_partitioner(technique: str,
                     config: MachineConfig) -> Partitioner:
    if technique == "gremio":
        return GremioPartitioner(config)
    if technique == "gremio-flat":
        return GremioPartitioner(config, hierarchical=False)
    if technique == "dswp":
        return DSWPPartitioner(config)
    raise ValueError("unknown technique %r (use one of %s)"
                     % (technique, TECHNIQUES))


def technique_config(technique: str,
                     base: MachineConfig = DEFAULT_CONFIG) -> MachineConfig:
    """DSWP uses the 32-entry queue configuration; others single-entry."""
    return base.for_dswp() if technique == "dswp" else base


class Parallelization:
    """A parallelized function plus everything used to build it."""

    def __init__(self, function: Function, profile: EdgeProfile, pdg: PDG,
                 partition: Partition, program: MTProgram,
                 coco_result: Optional[CocoResult],
                 config: MachineConfig):
        self.function = function
        self.profile = profile
        self.pdg = pdg
        self.partition = partition
        self.program = program
        self.coco_result = coco_result
        self.config = config


def normalize(function: Function, optimize: bool = False) -> Function:
    """Prepare a freshly built function for the pipeline (in place):
    optionally run the classical scalar optimizer, then split critical
    edges and renumber instructions in program order."""
    if optimize:
        from .opt import optimize_function
        optimize_function(function)
    split_critical_edges(function)
    renumber_iids(function)
    return function


def parallelize(function: Function,
                technique: str = "gremio",
                n_threads: int = 2,
                profile: Optional[EdgeProfile] = None,
                profile_args: Mapping[str, object] = (),
                profile_memory: Mapping[str, object] = (),
                coco: bool = False,
                config: Optional[MachineConfig] = None,
                normalized: bool = False,
                alias_mode: str = "annotated") -> Parallelization:
    """Parallelize ``function`` into ``n_threads`` threads.

    ``profile`` may be supplied directly; otherwise the function is
    profiled by interpretation on ``profile_args``/``profile_memory``, or
    with the static estimator when no inputs are given either.
    ``alias_mode`` selects the memory-disambiguation power (see
    :class:`repro.analysis.AliasAnalysis`).
    """
    if not normalized:
        normalize(function)
    if config is None:
        config = technique_config(technique)
    config = config.with_threads(n_threads)
    if profile is None:
        if profile_args or profile_memory:
            profile = run_function(function, profile_args,
                                   profile_memory).profile
        else:
            profile = static_profile(function)
    from .analysis.alias import AliasAnalysis
    pdg = build_pdg(function, AliasAnalysis(function, alias_mode))
    partitioner = make_partitioner(technique, config)
    partition = partitioner.partition(function, pdg, profile, n_threads)

    coco_result = None
    data_channels = None
    condition_covered = frozenset()
    if coco:
        coco_result = coco_optimize(function, pdg, partition, profile)
        data_channels = coco_result.data_channels
        condition_covered = coco_result.condition_covered
    program = generate(function, pdg, partition,
                       data_channels=data_channels,
                       condition_covered=condition_covered)
    return Parallelization(function, profile, pdg, partition, program,
                           coco_result, config)


class Evaluation:
    """Measured results of one (workload, technique, coco) configuration."""

    def __init__(self, workload: Workload, technique: str, coco: bool,
                 n_threads: int, parallelization: Parallelization,
                 st_result: TimedResult, mt_result: TimedResult):
        self.workload = workload
        self.technique = technique
        self.coco = coco
        self.n_threads = n_threads
        self.parallelization = parallelization
        self.st_result = st_result
        self.mt_result = mt_result

    @property
    def speedup(self) -> float:
        if self.mt_result.cycles == 0:
            return 1.0
        return self.st_result.cycles / self.mt_result.cycles

    @property
    def communication_instructions(self) -> int:
        return self.mt_result.communication_instructions

    @property
    def computation_instructions(self) -> int:
        return self.mt_result.computation_instructions

    @property
    def communication_fraction(self) -> float:
        total = self.mt_result.dynamic_instructions
        if total == 0:
            return 0.0
        return self.mt_result.communication_instructions / total

    def __repr__(self) -> str:  # pragma: no cover
        return "<Evaluation %s/%s%s: speedup %.2fx, comm %.1f%%>" % (
            self.workload.name, self.technique,
            "+coco" if self.coco else "", self.speedup,
            100 * self.communication_fraction)


def evaluate_workload(workload: Workload, technique: str = "gremio",
                      n_threads: int = 2, coco: bool = False,
                      scale: str = "ref",
                      config: Optional[MachineConfig] = None,
                      check: bool = True,
                      alias_mode: str = "annotated",
                      local_schedule: Optional[str] = None) -> Evaluation:
    """Run the full methodology for one workload: profile on `train`,
    measure on ``scale`` (default `ref`), and verify the multi-threaded
    run produced the single-threaded results.

    ``local_schedule`` optionally runs the downstream local instruction
    scheduler over both the single-threaded baseline and every generated
    thread, with the given produce/consume priority ("early"/"late"/
    "neutral") — the papers' post-MT scheduling stage.
    """
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    measure = workload.make_inputs(scale)
    if config is None:
        config = technique_config(technique)
    result = parallelize(
        function, technique=technique, n_threads=n_threads,
        profile_args=train.args, profile_memory=train.memory,
        coco=coco, config=config, normalized=True,
        alias_mode=alias_mode)

    if local_schedule is not None:
        from .opt.scheduler import schedule_function, schedule_program
        schedule_program(result.program, config, local_schedule)
        schedule_function(function, config, local_schedule)

    st_result = simulate_single(function, measure.args, measure.memory,
                                config=config)
    mt_result = simulate_program(result.program, measure.args,
                                 measure.memory, config=config)
    if check:
        _check_results(workload, function, st_result, mt_result)
    return Evaluation(workload, technique, coco, n_threads, result,
                      st_result, mt_result)


def _check_results(workload: Workload, function: Function,
                   st_result: TimedResult,
                   mt_result: TimedResult) -> None:
    if mt_result.live_outs != st_result.live_outs:
        raise AssertionError(
            "%s: MT live-outs %r != ST %r"
            % (workload.name, mt_result.live_outs, st_result.live_outs))
    if mt_result.memory.snapshot() != st_result.memory.snapshot():
        raise AssertionError("%s: MT memory differs from ST"
                             % workload.name)
