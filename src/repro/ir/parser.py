"""Parser for the textual IR format produced by :mod:`repro.ir.printer`.

Round-trip guarantee (tested property): ``parse(print(f))`` is structurally
identical to ``f`` (same blocks, same instructions in the same order; fresh
iids are assigned in program order, which matches the builder's numbering
for functions built linearly).
"""

from __future__ import annotations

import re
from typing import List, Optional

from .builder import FunctionBuilder
from .cfg import Function
from .instructions import Opcode, SIGNATURES


class ParseError(Exception):
    def __init__(self, message: str, line_no: int, line: str):
        super().__init__("line %d: %s: %r" % (line_no, message, line))
        self.line_no = line_no


_FUNC_RE = re.compile(
    r"^func\s+(?P<name>\w+)\s*\((?P<params>[^)]*)\)"
    r"(?:\s*liveout\((?P<liveouts>[^)]*)\))?\s*\{$")
_MEM_RE = re.compile(
    r"^mem\s+(?P<name>\w+)\[(?P<size>\d+)\](?:\s*ptr\((?P<ptr>\w+)\))?$")
_LABEL_RE = re.compile(r"^(?P<label>[\w.]+):$")
_LOAD_RE = re.compile(
    r"^load\s+(?P<dest>\w+)\s*,\s*\[(?P<base>\w+)(?P<off>[+-]\d+)?\]"
    r"(?P<rest>.*)$")
_STORE_RE = re.compile(
    r"^store\s+\[(?P<base>\w+)(?P<off>[+-]\d+)?\]\s*,\s*(?P<src>\w+)"
    r"(?P<rest>.*)$")
_PRODUCE_RE = re.compile(r"^produce\s+\[q(?P<q>\d+)\]\s*,\s*(?P<src>\w+)$")
_CONSUME_RE = re.compile(r"^consume\s+(?P<dest>\w+)\s*,\s*\[q(?P<q>\d+)\]$")
_PSYNC_RE = re.compile(r"^produce\.sync\s+\[q(?P<q>\d+)\]$")
_CSYNC_RE = re.compile(r"^consume\.sync\s+\[q(?P<q>\d+)\]$")
_REGION_RE = re.compile(r"!region\((?P<region>\w+)\)")


def _parse_number(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_function(text: str) -> Function:
    """Parse one function from its textual form."""
    lines = text.splitlines()
    builder: Optional[FunctionBuilder] = None
    done = False
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split(";")[0].strip()
        if not line:
            continue
        if done:
            raise ParseError("content after closing brace", line_no, raw)
        if builder is None:
            match = _FUNC_RE.match(line)
            if not match:
                raise ParseError("expected function header", line_no, raw)
            params = _split_operands(match.group("params"))
            live_outs = _split_operands(match.group("liveouts") or "")
            builder = FunctionBuilder(match.group("name"), params, live_outs)
            continue
        if line == "}":
            done = True
            continue
        match = _MEM_RE.match(line)
        if match:
            builder.mem(match.group("name"), int(match.group("size")),
                        ptr=match.group("ptr"))
            continue
        match = _LABEL_RE.match(line)
        if match:
            builder.label(match.group("label"))
            continue
        _parse_instruction(builder, line, line_no, raw)
    if builder is None or not done:
        raise ParseError("unterminated function", len(lines), text[-40:])
    return builder.build()


def _parse_instruction(builder: FunctionBuilder, line: str, line_no: int,
                       raw: str) -> None:
    region = None
    region_match = _REGION_RE.search(line)
    if region_match:
        region = region_match.group("region")
        line = _REGION_RE.sub("", line).strip()

    match = _LOAD_RE.match(line)
    if match:
        offset = int(match.group("off") or 0)
        builder.load(match.group("dest"), match.group("base"), offset,
                     region=region)
        return
    match = _STORE_RE.match(line)
    if match:
        offset = int(match.group("off") or 0)
        builder.store(match.group("base"), match.group("src"), offset,
                      region=region)
        return
    match = _PRODUCE_RE.match(line)
    if match:
        builder.produce(int(match.group("q")), match.group("src"))
        return
    match = _CONSUME_RE.match(line)
    if match:
        builder.consume(match.group("dest"), int(match.group("q")))
        return
    match = _PSYNC_RE.match(line)
    if match:
        builder.produce_sync(int(match.group("q")))
        return
    match = _CSYNC_RE.match(line)
    if match:
        builder.consume_sync(int(match.group("q")))
        return

    parts = line.split(None, 1)
    mnemonic = parts[0]
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(operand_text)
    try:
        op = Opcode(mnemonic)
    except ValueError:
        raise ParseError("unknown opcode %r" % mnemonic, line_no, raw)

    if op is Opcode.BR:
        if len(operands) != 3:
            raise ParseError("br needs cond, taken, not-taken", line_no, raw)
        builder.br(operands[0], operands[1], operands[2])
        return
    if op is Opcode.JMP:
        if len(operands) != 1:
            raise ParseError("jmp needs one target", line_no, raw)
        builder.jmp(operands[0])
        return
    if op is Opcode.EXIT:
        builder.exit()
        return
    if op is Opcode.NOP:
        builder.nop()
        return
    if op is Opcode.MOVI:
        if len(operands) != 2:
            raise ParseError("movi needs dest, imm", line_no, raw)
        builder.movi(operands[0], _parse_number(operands[1]))
        return

    # Generic ALU form: dest, srcs..., optional trailing "#imm".
    signature = SIGNATURES[op]
    if not signature.has_dest or not operands:
        raise ParseError("cannot parse %r" % line, line_no, raw)
    dest = operands[0]
    rest = operands[1:]
    args: List[object] = []
    for index, operand in enumerate(rest):
        if operand.startswith("#"):
            if index != len(rest) - 1:
                raise ParseError("immediate must be last operand",
                                 line_no, raw)
            args.append(_parse_number(operand[1:]))
        else:
            args.append(operand)
    builder.alu(op.value, dest, *args)


def parse_functions(text: str) -> List[Function]:
    """Parse multiple functions separated by blank lines / comments."""
    functions: List[Function] = []
    chunk: List[str] = []
    for line in text.splitlines():
        chunk.append(line)
        if line.strip() == "}":
            functions.append(parse_function("\n".join(chunk)))
            chunk = []
    leftover = "\n".join(chunk).strip()
    if leftover:
        raise ParseError("trailing content", 0, leftover[:40])
    return functions
