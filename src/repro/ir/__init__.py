"""The mini-IR: instructions, basic blocks, CFGs, builder, printer, parser."""

from .instructions import (Instruction, Opcode, OpKind, SIGNATURES,
                           COMM_OPCODES, MEMORY_OPCODES, TERMINATOR_OPCODES)
from .cfg import BasicBlock, Function, MemObject
from .builder import BuildError, FunctionBuilder
from .printer import format_function, format_instruction
from .parser import ParseError, parse_function, parse_functions
from .verify import VerificationError, verify_function
from .interning import (InternedInstruction, intern_function,
                        intern_instruction, intern_program)

__all__ = [
    "Instruction", "Opcode", "OpKind", "SIGNATURES", "COMM_OPCODES",
    "MEMORY_OPCODES", "TERMINATOR_OPCODES", "BasicBlock", "Function",
    "MemObject", "BuildError", "FunctionBuilder", "format_function",
    "format_instruction", "ParseError", "parse_function", "parse_functions",
    "VerificationError", "verify_function", "InternedInstruction",
    "intern_function", "intern_instruction", "intern_program",
]
