"""Control-flow graph: basic blocks and functions.

A :class:`Function` is the unit both the papers and this reproduction
operate on — GMT scheduling is intraprocedural, applied to one hot function
(or loop nest) at a time.  A function owns an ordered list of basic blocks;
edges are implied by each block's terminator.  The block order is the layout
order and is preserved by every pass, which keeps the whole toolchain
deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .instructions import Instruction, Opcode


class BasicBlock:
    """A maximal straight-line sequence ending in one terminator."""

    __slots__ = ("label", "instructions")

    def __init__(self, label: str,
                 instructions: Optional[List[Instruction]] = None):
        self.label = label
        self.instructions: List[Instruction] = instructions or []

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    @property
    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if term is None:
            return ()
        return term.labels

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<BasicBlock %s: %d instrs>" % (self.label,
                                               len(self.instructions))


class MemObject:
    """A named memory object (array/struct) the function may touch.

    Memory is a flat word-addressed space; each object occupies
    ``[base, base + size)``.  Objects are the provenance roots of the alias
    analysis: a pointer parameter annotated with an object name is known to
    point into that object and nowhere else (this stands in for the
    allocation-site points-to facts a real compiler gets from whole-program
    pointer analysis).
    """

    __slots__ = ("name", "size", "base")

    def __init__(self, name: str, size: int, base: int = -1):
        self.name = name
        self.size = size
        self.base = base

    def __repr__(self) -> str:  # pragma: no cover
        return "<MemObject %s[%d] @%d>" % (self.name, self.size, self.base)


class Function:
    """A function: parameters, memory objects, and a CFG of basic blocks."""

    def __init__(self, name: str, params: Iterable[str] = (),
                 live_outs: Iterable[str] = ()):
        self.name = name
        self.params: List[str] = list(params)
        self.live_outs: List[str] = list(live_outs)
        self.blocks: List[BasicBlock] = []
        self._by_label: Dict[str, BasicBlock] = {}
        self.mem_objects: Dict[str, MemObject] = {}
        # Parameter register -> memory object it points to (provenance root).
        self.pointer_params: Dict[str, str] = {}
        self._next_iid = 0

    # -- construction -------------------------------------------------------

    def add_block(self, label: str, index: Optional[int] = None) -> BasicBlock:
        if label in self._by_label:
            raise ValueError("duplicate block label: %r" % label)
        block = BasicBlock(label)
        if index is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(index, block)
        self._by_label[label] = block
        return block

    def add_mem_object(self, name: str, size: int,
                       pointer_param: Optional[str] = None) -> MemObject:
        if name in self.mem_objects:
            raise ValueError("duplicate memory object: %r" % name)
        obj = MemObject(name, size)
        self.mem_objects[name] = obj
        if pointer_param is not None:
            self.pointer_params[pointer_param] = name
        return obj

    def assign_iid(self, instruction: Instruction) -> Instruction:
        """Give ``instruction`` a fresh id unique within this function."""
        instruction.iid = self._next_iid
        self._next_iid = self._next_iid + 1
        return instruction

    # -- lookup ---------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError("function %r has no blocks" % self.name)
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    def successors(self, label: str) -> Tuple[str, ...]:
        return self.block(label).successors()

    def predecessors_map(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {b.label: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block.label)
        return preds

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            for instruction in block:
                yield instruction

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def by_iid(self) -> Dict[int, Instruction]:
        return {i.iid: i for i in self.instructions()}

    def block_of(self) -> Dict[int, str]:
        """Map instruction iid -> containing block label."""
        result: Dict[int, str] = {}
        for block in self.blocks:
            for instruction in block:
                result[instruction.iid] = block.label
        return result

    def position_of(self) -> Dict[int, Tuple[int, int]]:
        """Map iid -> (block index, index within block): total program order
        within a block, partial across blocks.  Used for deterministic
        ordering decisions."""
        result: Dict[int, Tuple[int, int]] = {}
        for b_index, block in enumerate(self.blocks):
            for i_index, instruction in enumerate(block):
                result[instruction.iid] = (b_index, i_index)
        return result

    def exit_blocks(self) -> List[str]:
        return [b.label for b in self.blocks
                if b.terminator is not None and b.terminator.op is Opcode.EXIT]

    # -- memory layout ----------------------------------------------------------

    def layout_memory(self, start: int = 0, align: int = 16) -> int:
        """Assign base addresses to all memory objects; returns total words.

        Deterministic: objects are laid out in declaration order, aligned so
        objects do not share cache lines gratuitously.
        """
        cursor = start
        for obj in self.mem_objects.values():
            if cursor % align:
                cursor += align - cursor % align
            obj.base = cursor
            cursor += obj.size
        return cursor

    def __repr__(self) -> str:  # pragma: no cover
        return "<Function %s: %d blocks, %d instrs>" % (
            self.name, len(self.blocks), self.instruction_count())
