"""CFG normalization transforms.

The GMT pipeline splits critical edges before any analysis: with no critical
edges, every CFG edge is identified either with the end of its source block
or the entry of its target block, so every min-cut arc chosen by COCO maps
to a unique insertion point.
"""

from __future__ import annotations

from typing import Dict, List

from .cfg import Function
from .instructions import Instruction, Opcode


def split_critical_edges(function: Function) -> List[str]:
    """Split every critical edge (multi-successor source to multi-predecessor
    target) by inserting a forwarding block.  Mutates ``function`` in place;
    returns the labels of the inserted blocks."""
    preds = function.predecessors_map()
    inserted: List[str] = []
    # Snapshot: the block list mutates while we iterate.
    for block in list(function.blocks):
        terminator = block.terminator
        if terminator is None or len(terminator.labels) < 2:
            continue
        new_labels = list(terminator.labels)
        for position, target in enumerate(terminator.labels):
            if len(preds[target]) < 2:
                continue
            split_label = "%s__to__%s" % (block.label, target)
            if function.has_block(split_label):  # same target twice
                new_labels[position] = split_label
                continue
            # Insert the forwarding block right before its target to keep
            # the layout roughly topological.
            target_index = next(i for i, b in enumerate(function.blocks)
                                if b.label == target)
            split_block = function.add_block(split_label, index=target_index)
            jump = Instruction(Opcode.JMP, labels=[target])
            function.assign_iid(jump)
            split_block.append(jump)
            new_labels[position] = split_label
            inserted.append(split_label)
        terminator.labels = tuple(new_labels)
    return inserted


def has_critical_edges(function: Function) -> bool:
    preds = function.predecessors_map()
    for block in function.blocks:
        successors = block.successors()
        if len(successors) < 2:
            continue
        for target in successors:
            if len(preds[target]) > 1:
                return True
    return False


def renumber_iids(function: Function) -> Dict[int, int]:
    """Re-assign iids in program order; returns old->new mapping.  Run after
    transforms that insert instructions, before building the PDG, so iid
    order again matches program order (several heuristics use iid order as
    a deterministic tie-break)."""
    mapping: Dict[int, int] = {}
    function._next_iid = 0
    for block in function.blocks:
        for instruction in block:
            old = instruction.iid
            function.assign_iid(instruction)
            mapping[old] = instruction.iid
    return mapping
