"""Textual rendering of IR functions.

The format round-trips through :mod:`repro.ir.parser` and is used in test
fixtures, debug dumps, and the examples.
"""

from __future__ import annotations

from typing import List

from .cfg import Function
from .instructions import Instruction, Opcode


def _format_imm(imm) -> str:
    if isinstance(imm, float):
        return repr(imm)
    return str(imm)


def format_instruction(instruction: Instruction) -> str:
    op = instruction.op
    if op is Opcode.MOVI:
        return "movi %s, %s" % (instruction.dest, _format_imm(instruction.imm))
    if op is Opcode.LOAD:
        return "load %s, [%s%+d]" % (instruction.dest, instruction.srcs[0],
                                     instruction.imm or 0)
    if op is Opcode.STORE:
        return "store [%s%+d], %s" % (instruction.srcs[0],
                                      instruction.imm or 0,
                                      instruction.srcs[1])
    if op is Opcode.BR:
        return "br %s, %s, %s" % (instruction.srcs[0], instruction.labels[0],
                                  instruction.labels[1])
    if op is Opcode.JMP:
        return "jmp %s" % instruction.labels[0]
    if op is Opcode.EXIT:
        return "exit"
    if op is Opcode.NOP:
        return "nop"
    if op is Opcode.PRODUCE:
        return "produce [q%d], %s" % (instruction.queue, instruction.srcs[0])
    if op is Opcode.CONSUME:
        return "consume %s, [q%d]" % (instruction.dest, instruction.queue)
    if op is Opcode.PRODUCE_SYNC:
        return "produce.sync [q%d]" % instruction.queue
    if op is Opcode.CONSUME_SYNC:
        return "consume.sync [q%d]" % instruction.queue
    # Generic ALU/FP form: op dest, srcs..., imm?
    operands: List[str] = []
    if instruction.dest is not None:
        operands.append(instruction.dest)
    operands.extend(instruction.srcs)
    if instruction.imm is not None:
        operands.append("#%s" % _format_imm(instruction.imm))
    return "%s %s" % (op.value, ", ".join(operands))


def format_function(function: Function, show_iids: bool = False) -> str:
    lines: List[str] = []
    header = "func %s(%s)" % (function.name, ", ".join(function.params))
    if function.live_outs:
        header += " liveout(%s)" % ", ".join(function.live_outs)
    lines.append(header + " {")
    for obj in function.mem_objects.values():
        pointer = ""
        for param, target in function.pointer_params.items():
            if target == obj.name:
                pointer = " ptr(%s)" % param
                break
        lines.append("  mem %s[%d]%s" % (obj.name, obj.size, pointer))
    for block in function.blocks:
        lines.append("%s:" % block.label)
        for instruction in block:
            text = format_instruction(instruction)
            if instruction.region is not None and instruction.is_memory():
                text += " !region(%s)" % instruction.region
            if show_iids:
                text = "%-40s ; iid=%d" % (text, instruction.iid)
            lines.append("    " + text)
    lines.append("}")
    return "\n".join(lines)
