"""Flyweight interning of IR instructions.

MTCG output is where instruction objects multiply: every thread carries
copies of the duplicated control flow, sweeps evaluate the same program
under many configurations, and the multiprocess pool and artifact cache
pickle those programs over and over.  Interning collapses structurally
identical instructions to one immutable object per process, so

* equal instructions are pointer-equal — pickle's memo table then
  serializes each distinct instruction once per program instead of once
  per occurrence, shrinking pool payloads and cache artifacts;
* ``hash()`` is computed once per distinct instruction and cached
  (:class:`Instruction` hashing re-tuples seven fields every call);
* operand/label strings are ``sys.intern``-ed, making the hot ``regs``
  dictionary lookups in the simulators identity-fast.

Interning happens at one boundary: the end of the ``mtcg`` stage, on the
generated thread functions (see ``repro.pipeline.stages._run_mtcg``).
Everything upstream (builders, normalize, COCO, the partitioners)
mutates instructions freely — ``assign_iid`` writes ``iid`` after
construction — so builder-owned functions are never interned.
``Instruction.copy()`` deliberately constructs a plain mutable
``Instruction``, so downstream passes that clone-and-edit keep working
on interned input.

Interned instructions compare and hash exactly like their uninterned
equivalents, and pickling round-trips *through the intern table*
(:meth:`InternedInstruction.__reduce__`), so objects stay canonical
across process boundaries.  Stage fingerprints are text-based
(:mod:`repro.pipeline.fingerprint`) and unchanged by interning; both are
locked down by ``tests/test_ir_interning.py``.
"""

from __future__ import annotations

import sys
import threading
from typing import Optional, Sequence
from weakref import WeakValueDictionary

from .cfg import Function
from .instructions import Instruction, Opcode


def _intern_str(value: Optional[str]) -> Optional[str]:
    return sys.intern(value) if value is not None else value


class InternedInstruction(Instruction):
    """An immutable, hash-caching :class:`Instruction`.

    Created only by :func:`intern_instruction`; direct construction works
    but bypasses the canonical table.  Equality and hashing are inherited
    (and the hash precomputed), so interned and plain instructions mix
    freely in sets and dicts.
    """

    __slots__ = ("_hash", "__weakref__")

    def __init__(self, op: Opcode, dest: Optional[str] = None,
                 srcs: Sequence[str] = (), imm=None,
                 labels: Sequence[str] = (), queue: Optional[int] = None,
                 iid: int = -1, region: Optional[str] = None,
                 origin: Optional[int] = None):
        set_ = object.__setattr__
        set_(self, "op", op)
        set_(self, "dest", _intern_str(dest))
        set_(self, "srcs", tuple(_intern_str(s) for s in srcs))
        set_(self, "imm", imm)
        set_(self, "labels", tuple(_intern_str(lab) for lab in labels))
        set_(self, "queue", queue)
        set_(self, "iid", iid)
        set_(self, "region", _intern_str(region))
        set_(self, "origin", origin)
        set_(self, "_hash", Instruction.__hash__(self))

    def __setattr__(self, name, value):
        raise AttributeError(
            "InternedInstruction is immutable; use .copy() for a mutable "
            "Instruction (tried to set %r)" % name)

    def __delattr__(self, name):
        raise AttributeError("InternedInstruction is immutable")

    def __hash__(self) -> int:
        return self._hash

    __eq__ = Instruction.__eq__

    def __reduce__(self):
        # Unpickle through the intern table so a program shipped to a
        # pool worker (or loaded from the artifact cache) stays canonical
        # in the receiving process.
        return (intern_instruction_fields,
                (self.op, self.dest, self.srcs, self.imm, self.labels,
                 self.queue, self.iid, self.region, self.origin))


# Canonical instruction per full field tuple.  Weak values: instructions
# die with the last program referencing them, so long-lived services
# don't accumulate every program ever evaluated.  The key carries
# ``type(imm)`` because 1 == 1.0 but ``movi 1`` and ``movi 1.0`` are
# different programs.
_TABLE: "WeakValueDictionary[tuple, InternedInstruction]" = \
    WeakValueDictionary()
_LOCK = threading.Lock()


def intern_instruction_fields(op: Opcode, dest: Optional[str],
                              srcs: Sequence[str], imm,
                              labels: Sequence[str], queue: Optional[int],
                              iid: int, region: Optional[str],
                              origin: Optional[int]) -> InternedInstruction:
    """The canonical interned instruction with exactly these fields
    (all of them — iid/region/origin annotations are preserved)."""
    key = (op, dest, tuple(srcs), type(imm), imm, tuple(labels), queue,
           iid, region, origin)
    with _LOCK:
        instruction = _TABLE.get(key)
        if instruction is None:
            instruction = InternedInstruction(op, dest, srcs, imm, labels,
                                              queue, iid, region, origin)
            _TABLE[key] = instruction
        return instruction


def intern_instruction(instruction: Instruction) -> InternedInstruction:
    """Intern one instruction (identity for already-interned objects)."""
    if type(instruction) is InternedInstruction:
        return instruction
    return intern_instruction_fields(
        instruction.op, instruction.dest, instruction.srcs, instruction.imm,
        instruction.labels, instruction.queue, instruction.iid,
        instruction.region, instruction.origin)


def intern_function(function: Function) -> Function:
    """Replace every instruction of ``function`` with its interned
    flyweight, in place.  Only call on functions no pass will mutate
    instruction-wise again (MTCG output threads)."""
    for block in function.blocks:
        block.instructions[:] = [intern_instruction(instruction)
                                 for instruction in block.instructions]
    return function


def intern_program(program) -> object:
    """Intern all thread functions of an :class:`repro.mtcg.MTProgram`."""
    for thread in program.threads:
        intern_function(thread)
    return program


def intern_table_size() -> int:
    """Live distinct instructions (diagnostic; used by tests)."""
    return len(_TABLE)
