"""Structural verification of IR functions.

The verifier enforces the invariants every pass in the toolchain relies on:
exactly one terminator per block, at the end; branch targets exist; operand
shapes match opcode signatures; iids are unique; every register is defined
on every path before use (ignoring communication, whose consumes count as
definitions).  MTCG output is verified with ``allow_comm=True``.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .cfg import Function
from .instructions import Opcode


class VerificationError(Exception):
    pass


def verify_function(function: Function, allow_comm: bool = False,
                    check_defined_use: bool = True) -> None:
    if not function.blocks:
        raise VerificationError("function %s has no blocks" % function.name)

    seen_iids: Set[int] = set()
    labels = {block.label for block in function.blocks}
    exit_seen = False

    for block in function.blocks:
        if not block.instructions:
            raise VerificationError("empty block %r" % block.label)
        terminator = block.instructions[-1]
        if not terminator.is_terminator():
            raise VerificationError("block %r lacks a terminator"
                                    % block.label)
        for index, instruction in enumerate(block):
            if instruction.is_terminator() and index != len(block) - 1:
                raise VerificationError(
                    "terminator in the middle of block %r" % block.label)
            _verify_shape(instruction, block.label)
            if instruction.is_communication() and not allow_comm:
                raise VerificationError(
                    "communication op %s outside MTCG output"
                    % instruction.op.value)
            if instruction.iid in seen_iids:
                raise VerificationError("duplicate iid %d" % instruction.iid)
            if instruction.iid >= 0:
                seen_iids.add(instruction.iid)
            for target in instruction.labels:
                if target not in labels:
                    raise VerificationError(
                        "branch to unknown block %r in %r"
                        % (target, block.label))
        if terminator.op is Opcode.EXIT:
            exit_seen = True

    if not exit_seen:
        raise VerificationError("function %s has no exit" % function.name)

    for param, obj_name in function.pointer_params.items():
        if param not in function.params:
            raise VerificationError("pointer param %r not a parameter"
                                    % param)
        if obj_name not in function.mem_objects:
            raise VerificationError("pointer param %r targets unknown "
                                    "memory object %r" % (param, obj_name))

    if check_defined_use:
        _verify_defined_before_use(function)


def _verify_shape(instruction, block_label: str) -> None:
    signature = instruction.signature
    if signature.has_dest != (instruction.dest is not None):
        raise VerificationError("bad dest for %s in %r"
                                % (instruction.op.value, block_label))
    n_srcs = len(instruction.srcs)
    has_imm = instruction.imm is not None
    if instruction.op.value in ("load", "store"):
        # The offset immediate is always considered present (default 0).
        has_imm = False
    effective = n_srcs + (1 if has_imm else 0)
    if has_imm and not signature.allows_imm:
        raise VerificationError("unexpected immediate for %s"
                                % instruction.op.value)
    if signature.requires_imm and instruction.imm is None:
        raise VerificationError("missing immediate for %s"
                                % instruction.op.value)
    if not signature.requires_imm and not (
            signature.min_srcs <= effective <= signature.max_srcs
            or signature.min_srcs <= n_srcs <= signature.max_srcs):
        raise VerificationError("bad arity for %s (srcs=%d)"
                                % (instruction.op.value, n_srcs))
    if len(instruction.labels) != signature.n_labels:
        raise VerificationError("bad label count for %s"
                                % instruction.op.value)
    if signature.has_queue and instruction.queue is None:
        raise VerificationError("missing queue for %s"
                                % instruction.op.value)


def _verify_defined_before_use(function: Function) -> None:
    """Forward may-be-undefined analysis: flag a register used where no
    definition reaches it on *any* path (certain bug); registers defined on
    only some paths are accepted, matching real compilers' leniency."""
    defined_out: Dict[str, Set[str]] = {}
    params = set(function.params)
    preds = function.predecessors_map()
    changed = True
    # Iterate to a fixed point of the *union* of definitions (may-defined).
    while changed:
        changed = False
        for block in function.blocks:
            incoming: Set[str] = set(params)
            for pred in preds[block.label]:
                incoming |= defined_out.get(pred, set())
            current = set(incoming)
            for instruction in block:
                current.update(instruction.defined_registers())
            if defined_out.get(block.label) != current:
                defined_out[block.label] = current
                changed = True

    for block in function.blocks:
        incoming = set(params)
        for pred in preds[block.label]:
            incoming |= defined_out.get(pred, set())
        current = set(incoming)
        for instruction in block:
            for register in instruction.used_registers():
                if register not in current:
                    raise VerificationError(
                        "register %r used in block %r before any "
                        "definition may reach it" % (register, block.label))
            current.update(instruction.defined_registers())


def find_undefined_liveouts(function: Function) -> List[str]:
    """Return declared live-out registers never defined anywhere."""
    defined: Set[str] = set(function.params)
    for instruction in function.instructions():
        defined.update(instruction.defined_registers())
    return [register for register in function.live_outs
            if register not in defined]
