"""Fluent construction API for IR functions.

The workload kernels (``repro.workloads``) are written against this builder.
Instructions are appended to the *current* block, opened with
:meth:`FunctionBuilder.label`.  Binary operations accept a Python number as
their second operand, which becomes the instruction's immediate::

    b = FunctionBuilder("saxpy", params=["p_x", "p_y", "r_n", "r_a"])
    b.mem("x", 1024, ptr="p_x")
    b.mem("y", 1024, ptr="p_y")
    b.label("entry")
    b.movi("r_i", 0)
    b.jmp("loop")
    b.label("loop")
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "body", "done")
    ...
    function = b.build()
"""

from __future__ import annotations

from numbers import Number
from typing import Optional, Sequence

from .cfg import BasicBlock, Function
from .instructions import Instruction, Opcode, SIGNATURES


class BuildError(Exception):
    """Raised on misuse of the builder or malformed operands."""


class FunctionBuilder:
    def __init__(self, name: str, params: Sequence[str] = (),
                 live_outs: Sequence[str] = ()):
        self._function = Function(name, params, live_outs)
        self._current: Optional[BasicBlock] = None

    # -- declarations ---------------------------------------------------------

    def mem(self, name: str, size: int, ptr: Optional[str] = None) -> None:
        """Declare a memory object; ``ptr`` names the parameter register that
        holds its base address (and will be bound to it at run time)."""
        self._function.add_mem_object(name, size, pointer_param=ptr)

    # -- blocks ------------------------------------------------------------------

    def label(self, label: str) -> None:
        """Open a new basic block; subsequent emissions go into it."""
        if self._current is not None and self._current.terminator is None:
            raise BuildError("block %r is not terminated" %
                             self._current.label)
        self._current = self._function.add_block(label)

    # -- generic emission -----------------------------------------------------

    def emit(self, op: Opcode, dest: Optional[str] = None,
             srcs: Sequence[str] = (), imm=None,
             labels: Sequence[str] = (), queue: Optional[int] = None,
             region: Optional[str] = None) -> Instruction:
        if self._current is None:
            raise BuildError("no open block (call label() first)")
        if self._current.terminator is not None:
            raise BuildError("block %r already terminated" %
                             self._current.label)
        instruction = Instruction(op, dest, srcs, imm, labels, queue,
                                  region=region)
        self._function.assign_iid(instruction)
        self._current.append(instruction)
        return instruction

    def alu(self, op_name: str, dest: str, *operands, region=None):
        """Emit any ALU/FP operation by opcode name.  The trailing operand
        may be a number, which is emitted as the immediate."""
        op = Opcode(op_name)
        signature = SIGNATURES[op]
        srcs = list(operands)
        imm = None
        if srcs and isinstance(srcs[-1], Number):
            if not signature.allows_imm:
                raise BuildError("%s does not take an immediate" % op_name)
            imm = srcs.pop()
        for operand in srcs:
            if not isinstance(operand, str):
                raise BuildError("register operand expected, got %r"
                                 % (operand,))
        if not (signature.min_srcs <= len(srcs) + (imm is not None)
                and len(srcs) <= signature.max_srcs):
            raise BuildError("bad arity for %s" % op_name)
        return self.emit(op, dest, srcs, imm, region=region)

    # -- data movement ----------------------------------------------------------

    def mov(self, dest: str, src):
        if isinstance(src, Number):
            return self.movi(dest, src)
        return self.emit(Opcode.MOV, dest, [src])

    def movi(self, dest: str, imm):
        return self.emit(Opcode.MOVI, dest, imm=imm)

    # -- common ALU shorthands ----------------------------------------------------

    def add(self, dest, a, b):
        return self.alu("add", dest, a, b)

    def sub(self, dest, a, b):
        return self.alu("sub", dest, a, b)

    def mul(self, dest, a, b):
        return self.alu("mul", dest, a, b)

    def idiv(self, dest, a, b):
        return self.alu("idiv", dest, a, b)

    def imod(self, dest, a, b):
        return self.alu("imod", dest, a, b)

    def shl(self, dest, a, b):
        return self.alu("shl", dest, a, b)

    def shr(self, dest, a, b):
        return self.alu("shr", dest, a, b)

    def and_(self, dest, a, b):
        return self.alu("and", dest, a, b)

    def or_(self, dest, a, b):
        return self.alu("or", dest, a, b)

    def xor(self, dest, a, b):
        return self.alu("xor", dest, a, b)

    def neg(self, dest, a):
        return self.alu("neg", dest, a)

    def abs(self, dest, a):
        return self.alu("abs", dest, a)

    def min(self, dest, a, b):
        return self.alu("min", dest, a, b)

    def max(self, dest, a, b):
        return self.alu("max", dest, a, b)

    def cmpeq(self, dest, a, b):
        return self.alu("cmpeq", dest, a, b)

    def cmpne(self, dest, a, b):
        return self.alu("cmpne", dest, a, b)

    def cmplt(self, dest, a, b):
        return self.alu("cmplt", dest, a, b)

    def cmple(self, dest, a, b):
        return self.alu("cmple", dest, a, b)

    def cmpgt(self, dest, a, b):
        return self.alu("cmpgt", dest, a, b)

    def cmpge(self, dest, a, b):
        return self.alu("cmpge", dest, a, b)

    def fadd(self, dest, a, b):
        return self.alu("fadd", dest, a, b)

    def fsub(self, dest, a, b):
        return self.alu("fsub", dest, a, b)

    def fmul(self, dest, a, b):
        return self.alu("fmul", dest, a, b)

    def fdiv(self, dest, a, b):
        return self.alu("fdiv", dest, a, b)

    def fsqrt(self, dest, a):
        return self.alu("fsqrt", dest, a)

    def fabs(self, dest, a):
        return self.alu("fabs", dest, a)

    def itof(self, dest, a):
        return self.alu("itof", dest, a)

    def ftoi(self, dest, a):
        return self.alu("ftoi", dest, a)

    # -- memory ------------------------------------------------------------------

    def load(self, dest: str, base: str, offset: int = 0,
             region: Optional[str] = None):
        return self.emit(Opcode.LOAD, dest, [base], offset, region=region)

    def store(self, base: str, value: str, offset: int = 0,
              region: Optional[str] = None):
        return self.emit(Opcode.STORE, None, [base, value], offset,
                         region=region)

    # -- control flow --------------------------------------------------------------

    def br(self, cond: str, taken: str, not_taken: str):
        return self.emit(Opcode.BR, None, [cond], labels=[taken, not_taken])

    def jmp(self, target: str):
        return self.emit(Opcode.JMP, labels=[target])

    def exit(self):
        return self.emit(Opcode.EXIT)

    def nop(self):
        return self.emit(Opcode.NOP)

    # -- communication (used by MTCG and by tests, not by front-ends) ---------

    def produce(self, queue: int, src: str):
        return self.emit(Opcode.PRODUCE, srcs=[src], queue=queue)

    def consume(self, dest: str, queue: int):
        return self.emit(Opcode.CONSUME, dest, queue=queue)

    def produce_sync(self, queue: int):
        return self.emit(Opcode.PRODUCE_SYNC, queue=queue)

    def consume_sync(self, queue: int):
        return self.emit(Opcode.CONSUME_SYNC, queue=queue)

    # -- structured control flow -------------------------------------------------

    def _fresh_label(self, prefix: str) -> str:
        reserved = getattr(self, "_reserved_labels", None)
        if reserved is None:
            reserved = set()
            self._reserved_labels = reserved
        index = 0
        while (self._function.has_block("%s%d" % (prefix, index))
               or "%s%d" % (prefix, index) in reserved):
            index += 1
        label = "%s%d" % (prefix, index)
        reserved.add(label)
        return label

    def if_then(self, cond: str, then_body) -> None:
        """Emit ``if (cond) { then_body() }``; continues in the join block.
        ``then_body`` is a callback that emits the arm's instructions."""
        then_label = self._fresh_label("__then")
        join_label = self._fresh_label("__endif")
        self.br(cond, then_label, join_label)
        self.label(then_label)
        then_body()
        self.jmp(join_label)
        self.label(join_label)

    def if_then_else(self, cond: str, then_body, else_body) -> None:
        """Emit a full hammock; continues in the join block."""
        then_label = self._fresh_label("__then")
        else_label = self._fresh_label("__else")
        join_label = self._fresh_label("__endif")
        self.br(cond, then_label, else_label)
        self.label(then_label)
        then_body()
        self.jmp(join_label)
        self.label(else_label)
        else_body()
        self.jmp(join_label)
        self.label(join_label)

    def for_range(self, index_reg: str, start, bound, body) -> None:
        """Emit ``for (i = start; i < bound; i++) { body() }``; continues
        in the loop-exit block.  ``start`` may be a register or number;
        ``bound`` likewise."""
        header = self._fresh_label("__for")
        body_label = self._fresh_label("__forbody")
        done_label = self._fresh_label("__fordone")
        cond = "r%s_cond" % header
        self.mov(index_reg, start)
        self.jmp(header)
        self.label(header)
        self.cmplt(cond, index_reg, bound)
        self.br(cond, body_label, done_label)
        self.label(body_label)
        body()
        self.add(index_reg, index_reg, 1)
        self.jmp(header)
        self.label(done_label)

    # -- finalization -----------------------------------------------------------------

    def build(self, verify: bool = True) -> Function:
        if self._current is not None and self._current.terminator is None:
            raise BuildError("block %r is not terminated" %
                             self._current.label)
        if verify:
            from .verify import verify_function
            verify_function(self._function)
        return self._function
