"""Loop outlining: extracting a loop nest into a standalone function.

The papers parallelize *regions* — whole procedures (GREMIO) or loop
nests (DSWP).  This module turns any natural loop of a function into a
self-contained :class:`Function` that the whole pipeline (profile → PDG →
partition → MTCG → simulate) can consume directly:

* parameters = the registers live into the loop header (initial values of
  loop-carried variables included) plus the original pointer parameters;
* live-outs = loop-defined registers that are live at any loop exit,
  plus — when the loop has several distinct exit targets — a synthetic
  ``r__exit_id`` register recording which exit was taken, so a caller
  could resume the right continuation;
* every memory object is shared (the loop may touch any of them).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.liveness import liveness
from ..analysis.loops import Loop, loop_nest_forest
from .cfg import Function
from .instructions import Instruction, Opcode

EXIT_ID_REGISTER = "r__exit_id"


class OutlineError(Exception):
    pass


class ExtractedLoop:
    """An outlined loop: the standalone function plus its interface."""

    def __init__(self, function: Function, header: str,
                 live_ins: List[str], exit_targets: List[str],
                 exit_register: Optional[str]):
        self.function = function
        self.header = header
        self.live_ins = live_ins
        self.exit_targets = exit_targets
        self.exit_register = exit_register

    def __repr__(self) -> str:  # pragma: no cover
        return "<ExtractedLoop %s: %d live-ins, %d exits>" % (
            self.header, len(self.live_ins), len(self.exit_targets))


def extract_loop(function: Function, header: str) -> ExtractedLoop:
    """Outline the natural loop headed at ``header`` (with all nested
    loops) into a new function.  The original function is not modified.
    """
    forest = loop_nest_forest(function)
    loop = forest.by_header.get(header)
    if loop is None:
        raise OutlineError("no natural loop headed at %r" % header)

    live = liveness(function)
    loop_blocks = [block for block in function.blocks
                   if block.label in loop.blocks]

    defined_inside = {register
                      for block in loop_blocks
                      for instruction in block
                      for register in instruction.defined_registers()}

    # Live-ins: whatever is live at the header (loop-carried initials and
    # invariant inputs alike).
    live_ins = sorted(live.block_live_in[header])

    # Exit edges: (source block, target outside the loop).
    exit_edges: List[Tuple[str, str]] = []
    for block in loop_blocks:
        for successor in block.successors():
            if successor not in loop.blocks:
                exit_edges.append((block.label, successor))
    exit_targets = sorted({target for _, target in exit_edges})
    if not exit_targets:
        raise OutlineError("loop %r has no exits (would not terminate)"
                           % header)

    live_outs = sorted(register
                       for register in defined_inside
                       if any(register in live.block_live_in[target]
                              for target in exit_targets))
    exit_register = EXIT_ID_REGISTER if len(exit_targets) > 1 else None
    declared_outs = live_outs + ([exit_register] if exit_register else [])

    pointer_params = [param for param in function.params
                      if param in function.pointer_params]
    scalar_params = [register for register in live_ins
                     if register not in pointer_params]

    outlined = Function("%s__loop_%s" % (function.name, header),
                        params=scalar_params + pointer_params,
                        live_outs=declared_outs)
    outlined.mem_objects = function.mem_objects
    outlined.pointer_params = dict(function.pointer_params)

    exit_label_of = {target: "__loopexit_%s" % target
                     for target in exit_targets}

    entry = outlined.add_block("__loopentry")
    jump = Instruction(Opcode.JMP, labels=[header])
    outlined.assign_iid(jump)
    entry.append(jump)

    for block in loop_blocks:
        clone = outlined.add_block(block.label)
        for instruction in block:
            copy = instruction.copy()
            outlined.assign_iid(copy)
            if copy.labels:
                copy.labels = tuple(exit_label_of.get(label, label)
                                    for label in copy.labels)
            clone.append(copy)

    for index, target in enumerate(exit_targets):
        stub = outlined.add_block(exit_label_of[target])
        if exit_register is not None:
            set_id = Instruction(Opcode.MOVI, exit_register, imm=index)
            outlined.assign_iid(set_id)
            stub.append(set_id)
        leave = Instruction(Opcode.EXIT)
        outlined.assign_iid(leave)
        stub.append(leave)

    from .verify import verify_function
    verify_function(outlined)
    return ExtractedLoop(outlined, header, live_ins, exit_targets,
                         exit_register)


def outline_hottest_loop(function: Function, profile) -> ExtractedLoop:
    """Convenience: outline the top-level loop with the largest
    profile-weighted body."""
    forest = loop_nest_forest(function)
    if not forest.top_level:
        raise OutlineError("function %r has no loops" % function.name)

    def weight(loop: Loop) -> float:
        return sum(profile.block_weight(label) for label in loop.blocks)

    hottest = max(forest.top_level, key=weight)
    return extract_loop(function, hottest.header)
