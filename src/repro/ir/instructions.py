"""Instruction set of the mini-IR.

The IR is a low-level, assembly-like register machine in the spirit of the
VELOCITY compiler's intermediate representation that the GMT scheduling
papers operate on: virtual registers, explicit loads/stores against a flat
word-addressed memory, two-way conditional branches, and (in generated
multi-threaded code only) ``produce``/``consume`` operations against the
synchronization-array queues.

Every instruction is an :class:`Instruction` with an opcode drawn from
:class:`Opcode`.  Opcode *signatures* (operand arity, whether an immediate or
queue id is carried, how many branch labels) are declared in
:data:`SIGNATURES` and enforced by :func:`repro.ir.verify.verify_function`.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple


class Opcode(str, enum.Enum):
    """All operations understood by the interpreter and the machine model."""

    # Data movement.
    MOV = "mov"          # dest = src
    MOVI = "movi"        # dest = imm

    # Integer / generic ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    IDIV = "idiv"        # truncating integer division
    IMOD = "imod"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    ITOF = "itof"        # int -> float

    # Comparisons (result is 0/1; operate on ints or floats).
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FTOI = "ftoi"        # float -> int (truncation)

    # Memory.
    LOAD = "load"        # dest = mem[src0 + imm]
    STORE = "store"      # mem[src0 + imm] = src1

    # Control flow (block terminators).
    BR = "br"            # if src0 != 0 goto labels[0] else labels[1]
    JMP = "jmp"          # goto labels[0]
    EXIT = "exit"        # leave the region

    # Inter-thread communication (inserted by MTCG, never by front-ends).
    PRODUCE = "produce"            # queue[q].push(src0)
    CONSUME = "consume"            # dest = queue[q].pop()
    PRODUCE_SYNC = "produce.sync"  # queue[q].push(token), release semantics
    CONSUME_SYNC = "consume.sync"  # queue[q].pop(), acquire semantics

    NOP = "nop"


class OpKind(enum.Enum):
    """Coarse classification used by the PDG builder and the timing model."""

    ALU = enum.auto()
    FP = enum.auto()
    LOAD = enum.auto()
    STORE = enum.auto()
    BRANCH = enum.auto()
    JUMP = enum.auto()
    EXIT = enum.auto()
    COMM = enum.auto()
    NOP = enum.auto()


class Signature:
    """Operand-shape contract of one opcode."""

    __slots__ = ("has_dest", "min_srcs", "max_srcs", "allows_imm",
                 "requires_imm", "n_labels", "has_queue", "kind")

    def __init__(self, has_dest: bool, min_srcs: int, max_srcs: int,
                 allows_imm: bool, requires_imm: bool, n_labels: int,
                 has_queue: bool, kind: OpKind):
        self.has_dest = has_dest
        self.min_srcs = min_srcs
        self.max_srcs = max_srcs
        self.allows_imm = allows_imm
        self.requires_imm = requires_imm
        self.n_labels = n_labels
        self.has_queue = has_queue
        self.kind = kind


def _alu2(kind: OpKind = OpKind.ALU) -> Signature:
    # Binary op; the second operand may be an immediate instead of a register.
    return Signature(True, 1, 2, True, False, 0, False, kind)


def _alu1(kind: OpKind = OpKind.ALU) -> Signature:
    return Signature(True, 1, 1, False, False, 0, False, kind)


SIGNATURES = {
    Opcode.MOV: _alu1(),
    Opcode.MOVI: Signature(True, 0, 0, True, True, 0, False, OpKind.ALU),
    Opcode.ADD: _alu2(), Opcode.SUB: _alu2(), Opcode.MUL: _alu2(),
    Opcode.IDIV: _alu2(), Opcode.IMOD: _alu2(),
    Opcode.NEG: _alu1(), Opcode.ABS: _alu1(),
    Opcode.MIN: _alu2(), Opcode.MAX: _alu2(),
    Opcode.AND: _alu2(), Opcode.OR: _alu2(), Opcode.XOR: _alu2(),
    Opcode.NOT: _alu1(), Opcode.SHL: _alu2(), Opcode.SHR: _alu2(),
    Opcode.ITOF: _alu1(OpKind.FP),
    Opcode.CMPEQ: _alu2(), Opcode.CMPNE: _alu2(), Opcode.CMPLT: _alu2(),
    Opcode.CMPLE: _alu2(), Opcode.CMPGT: _alu2(), Opcode.CMPGE: _alu2(),
    Opcode.FADD: _alu2(OpKind.FP), Opcode.FSUB: _alu2(OpKind.FP),
    Opcode.FMUL: _alu2(OpKind.FP), Opcode.FDIV: _alu2(OpKind.FP),
    Opcode.FSQRT: _alu1(OpKind.FP), Opcode.FNEG: _alu1(OpKind.FP),
    Opcode.FABS: _alu1(OpKind.FP), Opcode.FMIN: _alu2(OpKind.FP),
    Opcode.FMAX: _alu2(OpKind.FP), Opcode.FTOI: _alu1(OpKind.FP),
    Opcode.LOAD: Signature(True, 1, 1, True, False, 0, False, OpKind.LOAD),
    Opcode.STORE: Signature(False, 2, 2, True, False, 0, False, OpKind.STORE),
    Opcode.BR: Signature(False, 1, 1, False, False, 2, False, OpKind.BRANCH),
    Opcode.JMP: Signature(False, 0, 0, False, False, 1, False, OpKind.JUMP),
    Opcode.EXIT: Signature(False, 0, 0, False, False, 0, False, OpKind.EXIT),
    Opcode.PRODUCE: Signature(False, 1, 1, False, False, 0, True, OpKind.COMM),
    Opcode.CONSUME: Signature(True, 0, 0, False, False, 0, True, OpKind.COMM),
    Opcode.PRODUCE_SYNC: Signature(False, 0, 0, False, False, 0, True,
                                   OpKind.COMM),
    Opcode.CONSUME_SYNC: Signature(False, 0, 0, False, False, 0, True,
                                   OpKind.COMM),
    Opcode.NOP: Signature(False, 0, 0, False, False, 0, False, OpKind.NOP),
}

COMM_OPCODES = frozenset({Opcode.PRODUCE, Opcode.CONSUME,
                          Opcode.PRODUCE_SYNC, Opcode.CONSUME_SYNC})
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE})
TERMINATOR_OPCODES = frozenset({Opcode.BR, Opcode.JMP, Opcode.EXIT})


class Instruction:
    """One IR instruction.

    Attributes:
        op: the :class:`Opcode`.
        dest: destination virtual register name, or ``None``.
        srcs: tuple of source register names.
        imm: immediate operand (``int`` or ``float``), or ``None``.  For
            ``load``/``store`` it is the constant address offset.
        labels: branch target block labels (``br``: taken, not-taken).
        queue: synchronization-array queue id for communication opcodes.
        iid: instruction id, unique within a function; assigned by the
            builder / CFG and stable across passes.  The PDG and partitions
            are keyed by iid.
        region: optional may-alias region annotation for memory opcodes.
            ``None`` means "let the alias analysis derive it"; the analysis
            falls back to a single conservative region when it cannot.
        origin: for instructions produced by MTCG, the iid of the original
            instruction this one implements (a duplicated branch, or the
            source of the dependence a produce/consume pair satisfies).
    """

    __slots__ = ("op", "dest", "srcs", "imm", "labels", "queue", "iid",
                 "region", "origin")

    def __init__(self, op: Opcode, dest: Optional[str] = None,
                 srcs: Sequence[str] = (), imm=None,
                 labels: Sequence[str] = (), queue: Optional[int] = None,
                 iid: int = -1, region: Optional[str] = None,
                 origin: Optional[int] = None):
        self.op = op
        self.dest = dest
        self.srcs: Tuple[str, ...] = tuple(srcs)
        self.imm = imm
        self.labels: Tuple[str, ...] = tuple(labels)
        self.queue = queue
        self.iid = iid
        self.region = region
        self.origin = origin

    # -- classification helpers -------------------------------------------

    @property
    def signature(self) -> Signature:
        return SIGNATURES[self.op]

    @property
    def kind(self) -> OpKind:
        return SIGNATURES[self.op].kind

    def is_terminator(self) -> bool:
        return self.op in TERMINATOR_OPCODES

    def is_branch(self) -> bool:
        return self.op is Opcode.BR

    def is_memory(self) -> bool:
        return self.op in MEMORY_OPCODES

    def is_communication(self) -> bool:
        return self.op in COMM_OPCODES

    def defined_registers(self) -> Tuple[str, ...]:
        return (self.dest,) if self.dest is not None else ()

    def used_registers(self) -> Tuple[str, ...]:
        return self.srcs

    # -- copying ------------------------------------------------------------

    def copy(self) -> "Instruction":
        """Shallow copy keeping iid/region/origin annotations."""
        return Instruction(self.op, self.dest, self.srcs, self.imm,
                           self.labels, self.queue, self.iid, self.region,
                           self.origin)

    def retargeted(self, labels: Sequence[str]) -> "Instruction":
        """Copy with branch/jump targets replaced."""
        clone = self.copy()
        clone.labels = tuple(labels)
        return clone

    # -- rendering ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import format_instruction
        return "<%d: %s>" % (self.iid, format_instruction(self))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.op is other.op and self.dest == other.dest
                and self.srcs == other.srcs and self.imm == other.imm
                and self.labels == other.labels and self.queue == other.queue
                and self.region == other.region)

    def __hash__(self) -> int:
        return hash((self.op, self.dest, self.srcs, self.imm, self.labels,
                     self.queue, self.region))
