"""The headless bench runner behind ``python -m repro bench``.

For every selected spec: bulk-prewarm its evaluation-matrix cells
through ``evaluate_matrix`` (``--jobs N`` fans them across a process
pool; the persistent artifact cache keeps repeat runs cheap), then time
the spec's metric extractor.  The merged per-stage telemetry and cache
traffic of the whole run land in the results' host section — the
``BENCH_RESULTS.json`` perf trajectory tracks the pipeline's own
wall-clock and cache behavior alongside the paper metrics.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional

from ..api import (DEFAULT_BACKEND, MatrixCell, get_cache,
                   global_telemetry, reset_global_telemetry)
from .harness import prewarm, set_backend
from .results import BenchResults, SpecResult
from .spec import BenchMode, BenchSpec, all_specs, get_spec

ProgressFn = Optional[Callable[[str], None]]


def select_specs(spec_ids: Optional[Iterable[str]] = None
                 ) -> List[BenchSpec]:
    if not spec_ids:
        return all_specs()
    return [get_spec(spec_id) for spec_id in spec_ids]


def run_bench(mode: BenchMode, jobs: int = 1,
              spec_ids: Optional[Iterable[str]] = None,
              backend: str = DEFAULT_BACKEND,
              progress: ProgressFn = None) -> BenchResults:
    """Execute the selected specs under ``mode`` and return the
    machine-readable results document.  ``backend`` selects the
    simulator for the whole session; paper metrics are bit-identical
    across backends, only the host timings move."""
    specs = select_specs(spec_ids)
    telemetry = reset_global_telemetry()
    cache = get_cache()
    cache.stats.reset()
    host = BenchResults.host_info()
    host["backend"] = backend
    results = BenchResults(mode=mode.name, host=host)
    started = time.perf_counter()

    previous_backend = set_backend(backend)
    try:
        cells: List[MatrixCell] = []
        seen = set()
        for spec in specs:
            for cell in spec.prewarm_cells(mode):
                if cell not in seen:
                    seen.add(cell)
                    cells.append(cell)
        if cells:
            if progress:
                progress("prewarming %d evaluation cells (jobs=%d, "
                         "backend=%s)" % (len(cells), jobs, backend))
            prewarm(cells=cells, jobs=jobs)

        for spec in specs:
            if progress:
                progress("collecting %s" % spec.id)
            spec_started = time.perf_counter()
            metrics = spec.collect(mode)
            results.specs[spec.id] = SpecResult(
                spec_id=spec.id, title=spec.title,
                seconds=time.perf_counter() - spec_started,
                metrics=metrics)
    finally:
        set_backend(previous_backend)

    results.total_seconds = time.perf_counter() - started
    results.telemetry = global_telemetry()
    stats = cache.stats
    # Under --jobs the cache traffic happens in worker processes; the
    # merged telemetry still carries it (see repro.pipeline.matrix).
    results.cache = {
        "hits": max(stats.hits, telemetry.cache_hits),
        "misses": max(stats.misses, telemetry.cache_misses),
        "invalidations": stats.invalidations,
        "stores": stats.stores,
        "enabled": int(cache.enabled),
    }
    return results
