"""The ``BenchSpec`` interface: machine-readable benchmark definitions.

Every experiment of the papers' evaluation (the 16 ``benchmarks/``
modules) is registered here as a :class:`BenchSpec` — an id, the matrix
cells it evaluates (so a runner can prewarm them through
``evaluate_matrix``), and a *metric extractor* that returns a flat
``{name: Metric}`` mapping.  The pytest benchmark modules and the
headless ``python -m repro bench`` runner both drive the same specs, so
the printed figure tables and the ``BENCH_RESULTS.json`` perf
trajectory can never drift apart.

Metric names are ``/``-separated paths (``speedup/gremio/181.mcf``);
benchmark names may contain dots, so ``.`` is *not* a separator.

Tolerances select the comparator's regression policy per metric:

* ``0.0`` — exact: any change is a regression (deterministic simulator
  metrics: cycles, instruction counts, speedups derived from them);
* ``t > 0`` — relative band: a regression iff the value moved by more
  than ``t * |baseline|`` (for ``unit="s"`` wall-time metrics only an
  *increase* beyond the band regresses — getting faster never fails);
* ``None`` — informational: recorded and diffed, never gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..api import MatrixCell

#: Exact comparison (deterministic simulator metrics).
EXACT = 0.0
#: Default relative band for host wall-time metrics: a 5x slowdown
#: gates, scheduler jitter on shared CI runners does not.
TIME_BAND = 4.0
#: The ``--host-strict`` band: on a quiet, dedicated host a 2x slowdown
#: is a real regression, not jitter.  The comparator substitutes this
#: for any looser wall-time tolerance when host-strict comparison is
#: requested (baselines recorded on the same host; see
#: ``docs/performance.md``).
STRICT_TIME_BAND = 1.0


@dataclass(frozen=True)
class Metric:
    """One measured value with its comparison policy."""

    value: float
    unit: str = ""                       # "x", "%", "cycles", "count", "s"
    tolerance: Optional[float] = EXACT   # see module docstring

    def as_dict(self) -> Dict[str, object]:
        return {"value": self.value, "unit": self.unit,
                "tolerance": self.tolerance}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Metric":
        return cls(value=data["value"], unit=data.get("unit", ""),
                   tolerance=data.get("tolerance", EXACT))


@dataclass(frozen=True)
class BenchMode:
    """How a bench run is scaled: the CI smoke configuration measures on
    ``train`` inputs and truncated benchmark lists; the full
    configuration reproduces the papers' methodology (``ref`` inputs,
    every benchmark)."""

    name: str           # "smoke" | "full"
    scale: str          # measurement inputs ("train" | "ref")
    smoke_limit: int    # per-spec benchmark-list truncation under smoke

    @property
    def is_smoke(self) -> bool:
        return self.name == "smoke"

    def pick(self, benches: Sequence[str],
             limit: Optional[int] = None) -> List[str]:
        """The benchmark subset this mode evaluates."""
        benches = list(benches)
        if not self.is_smoke:
            return benches
        return benches[:limit if limit is not None else self.smoke_limit]


SMOKE = BenchMode("smoke", scale="train", smoke_limit=2)
FULL = BenchMode("full", scale="ref", smoke_limit=10 ** 9)

MODES = {"smoke": SMOKE, "full": FULL}

MetricMap = Dict[str, Metric]


@dataclass(frozen=True)
class BenchSpec:
    """One registered experiment.

    ``collect`` runs the experiment under a :class:`BenchMode` and
    returns the metrics; ``cells`` (optional) names the evaluation-
    matrix cells the experiment consumes, so the runner can bulk-prewarm
    them across a process pool before collecting serially.
    """

    id: str
    title: str
    source: str          # the benchmarks/ module this spec reproduces
    collect: Callable[[BenchMode], MetricMap]
    cells: Optional[Callable[[BenchMode], List[MatrixCell]]] = None
    tags: Sequence[str] = field(default_factory=tuple)

    def prewarm_cells(self, mode: BenchMode) -> List[MatrixCell]:
        return self.cells(mode) if self.cells is not None else []


_REGISTRY: Dict[str, BenchSpec] = {}


def register(spec: BenchSpec) -> BenchSpec:
    if spec.id in _REGISTRY:
        raise ValueError("duplicate bench spec id: %s" % spec.id)
    _REGISTRY[spec.id] = spec
    return spec


def bench_spec(id: str, title: str, source: str,
               cells: Optional[Callable[[BenchMode],
                                        List[MatrixCell]]] = None,
               tags: Sequence[str] = ()) -> Callable:
    """Decorator form: registers the decorated collect function."""
    def wrap(collect: Callable[[BenchMode], MetricMap]) -> BenchSpec:
        return register(BenchSpec(id=id, title=title, source=source,
                                  collect=collect, cells=cells,
                                  tags=tuple(tags)))
    return wrap


def _ensure_loaded() -> None:
    # Spec modules register themselves on import; importing the package
    # lazily here keeps `repro.bench.spec` import-cheap and cycle-free.
    from . import specs  # noqa: F401


def get_spec(spec_id: str) -> BenchSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[spec_id]
    except KeyError:
        raise KeyError("unknown bench spec %r (known: %s)"
                       % (spec_id, ", ".join(sorted(_REGISTRY))))


def all_specs() -> List[BenchSpec]:
    _ensure_loaded()
    return [_REGISTRY[spec_id] for spec_id in sorted(_REGISTRY)]


def spec_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)
