"""The baseline comparator: diff a fresh ``BenchResults`` against a
committed baseline, per-metric, under each metric's tolerance band.

Statuses:

* ``ok`` — inside the band (``same`` when bit-identical);
* ``regression`` — outside the band (for ``unit="s"`` wall-time
  metrics only an increase regresses), or present in the baseline but
  missing from the current run;
* ``info`` — tolerance ``None``: diffed for the record, never gates;
* ``new`` — present now but absent from the baseline: never gates
  (commit a refreshed baseline to start tracking it).

The rendered markdown table names every offending metric — it is what
CI writes to ``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..stats import relative_delta, within_band
from .results import BenchResults, SchemaError
from .spec import STRICT_TIME_BAND, Metric

OK = "ok"
SAME = "same"
REGRESSION = "regression"
MISSING = "missing"          # rendered as a regression
INFO = "info"
NEW = "new"

_GATING = (REGRESSION, MISSING)


@dataclass
class MetricDelta:
    """One compared metric."""

    spec_id: str
    name: str
    status: str
    baseline: Optional[float]
    current: Optional[float]
    unit: str = ""
    tolerance: Optional[float] = 0.0

    @property
    def gates(self) -> bool:
        return self.status in _GATING

    @property
    def delta(self) -> float:
        if self.baseline is None or self.current is None:
            return math.nan
        return relative_delta(self.current, self.baseline)


def _compare_metric(spec_id: str, name: str, base: Metric,
                    current: Metric,
                    host_strict: bool = False) -> MetricDelta:
    tolerance = current.tolerance
    unit = current.unit or base.unit
    if (host_strict and unit == "s" and tolerance is not None
            and tolerance > STRICT_TIME_BAND):
        # --host-strict: on a quiet dedicated host, tighten every
        # wall-time band to STRICT_TIME_BAND (the CI default stays
        # generous to absorb shared-runner jitter).
        tolerance = STRICT_TIME_BAND
    delta = MetricDelta(spec_id, name, OK, base.value, current.value,
                        unit=unit, tolerance=tolerance)
    if base.value == current.value:
        delta.status = SAME
    elif tolerance is None:
        delta.status = INFO
    elif within_band(current.value, base.value, tolerance,
                     one_sided=(current.unit == "s")):
        delta.status = OK
    else:
        delta.status = REGRESSION
    return delta


@dataclass
class Comparison:
    """Every per-metric verdict of one baseline diff."""

    baseline_mode: str
    current_mode: str
    deltas: List[MetricDelta]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if delta.gates]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.status] = counts.get(delta.status, 0) + 1
        return counts

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        counts = self.counts()
        parts = ["%d %s" % (counts[status], status)
                 for status in (SAME, OK, REGRESSION, MISSING, INFO, NEW)
                 if counts.get(status)]
        verdict = ("OK" if self.ok
                   else "REGRESSION (%d metrics)" % len(self.regressions))
        return "bench compare [%s]: %s" % (", ".join(parts) or "empty",
                                           verdict)

    def markdown_table(self, include_unchanged: bool = False) -> str:
        """The regression table (markdown).  By default only rows that
        moved (regressions, info drifts, new/missing metrics) are
        listed; ``include_unchanged`` dumps everything."""
        lines = ["| status | spec | metric | baseline | current | Δ | "
                 "tolerance |",
                 "|---|---|---|---|---|---|---|"]
        shown = 0
        for delta in self.deltas:
            if not include_unchanged and delta.status in (SAME, OK):
                continue
            shown += 1
            lines.append(
                "| %s | %s | `%s` | %s | %s | %s | %s |"
                % (_badge(delta.status), delta.spec_id, delta.name,
                   _number(delta.baseline, delta.unit),
                   _number(delta.current, delta.unit),
                   _percent(delta.delta), _tolerance(delta.tolerance)))
        if not shown:
            return ("All %d metrics within tolerance of the baseline."
                    % len(self.deltas))
        return "\n".join(lines)


def _badge(status: str) -> str:
    return {REGRESSION: "❌ regression", MISSING: "❌ missing",
            INFO: "ℹ️ info", NEW: "🆕 new", SAME: "✅ same",
            OK: "✅ ok"}.get(status, status)


def _number(value: Optional[float], unit: str) -> str:
    if value is None:
        return "—"
    text = ("%d" % value if float(value).is_integer()
            else "%.4f" % value)
    return text + (" %s" % unit if unit else "")


def _percent(delta: float) -> str:
    if math.isnan(delta):
        return "—"
    if math.isinf(delta):
        return "∞"
    return "%+.2f%%" % (100.0 * delta)


def _tolerance(tolerance: Optional[float]) -> str:
    if tolerance is None:
        return "info"
    if tolerance == 0:
        return "exact"
    return "±%.0f%%" % (100.0 * tolerance)


def compare(baseline: BenchResults, current: BenchResults,
            host_strict: bool = False) -> Comparison:
    """Diff ``current`` against ``baseline``.

    ``host_strict`` tightens every wall-time (``unit="s"``) band to
    :data:`~repro.bench.spec.STRICT_TIME_BAND` — for baselines recorded
    on the same quiet host, where the default CI jitter band would mask
    real slowdowns.

    Raises :class:`~repro.bench.results.SchemaError` when the two
    documents are not comparable (schema or mode mismatch) — smoke
    numbers measured on train inputs are meaningless against a full
    ref-scale baseline.
    """
    if baseline.schema != current.schema:
        raise SchemaError("schema mismatch: baseline %r vs current %r"
                          % (baseline.schema, current.schema))
    if baseline.mode != current.mode:
        raise SchemaError("mode mismatch: baseline is %r, current run "
                          "is %r — compare like with like"
                          % (baseline.mode, current.mode))
    deltas: List[MetricDelta] = []
    current_index = {(spec_id, name): metric
                     for spec_id, name, metric in current.metric_items()}
    for spec_id, name, base_metric in baseline.metric_items():
        current_metric = current_index.pop((spec_id, name), None)
        if current_metric is None:
            deltas.append(MetricDelta(spec_id, name, MISSING,
                                      base_metric.value, None,
                                      unit=base_metric.unit,
                                      tolerance=base_metric.tolerance))
        else:
            deltas.append(_compare_metric(spec_id, name, base_metric,
                                          current_metric,
                                          host_strict=host_strict))
    for (spec_id, name), metric in sorted(current_index.items()):
        deltas.append(MetricDelta(spec_id, name, NEW, None, metric.value,
                                  unit=metric.unit,
                                  tolerance=metric.tolerance))
    return Comparison(baseline.mode, current.mode, deltas)
