"""TOPO-E1: topology-aware thread scaling (flat vs clustered machines).

Thread-scaling curves at 1/2/4/8 threads over the machine-topology
presets (:data:`repro.machine.topology.TOPOLOGIES`): the flat presets
(``paper-dual``, ``quad-flat``) keep the papers' uniform
synchronization array, the clustered presets (``quad-2x2``,
``octa-hier``) split it with an inter-cluster crossing penalty and
per-cluster L3 domains.  The cycle counts are deterministic simulator
output (exact tolerance), so the spec doubles as a regression gate for
the clustered machine model.

The second half compares the ``identity`` and ``affinity`` thread
placers on the clustered quad machine — the affinity placer must never
lose to identity (it falls back to the identity placement unless the
estimated crossing cost strictly improves), which
``benchmarks/bench_topology_scaling.py`` and the CI scaling-smoke job
assert from these metrics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...api import MatrixCell, TOPOLOGIES
from ..harness import evaluation
from ..spec import BenchMode, Metric, MetricMap, bench_spec

TECHNIQUES = ("gremio", "dswp")

#: Small, pipeline-heavy kernels so the full 1/2/4/8-thread x preset
#: product stays cheap; the smoke mode truncates to the first entry.
SCALING_BENCHES = ("ks", "adpcmdec")

#: The presets on the scaling curve, flat first.  Thread counts are the
#: powers of two the preset has cores for.
TOPOLOGY_CURVE: Tuple[str, ...] = ("paper-dual", "quad-flat",
                                   "quad-2x2", "octa-hier")

#: The clustered cell the identity-vs-affinity comparison runs on.
PLACER_TOPOLOGY = "quad-2x2"
PLACER_THREADS = 4


def curve_threads(preset: str) -> List[int]:
    """The 1/2/4/8-thread curve truncated to the preset's core count."""
    n_cores = TOPOLOGIES[preset].n_cores
    return [n for n in (1, 2, 4, 8) if n <= n_cores]


def _presets(mode: BenchMode) -> List[str]:
    # Smoke keeps one flat and one clustered preset (the quad pair
    # shares thread counts, so the flat-vs-clustered delta is direct).
    if mode.is_smoke:
        return ["quad-flat", "quad-2x2"]
    return list(TOPOLOGY_CURVE)


def _benches(mode: BenchMode) -> List[str]:
    return mode.pick(list(SCALING_BENCHES), limit=1)


def _scaling_cells(mode: BenchMode) -> List[MatrixCell]:
    cells = [MatrixCell(name, technique, False, threads, mode.scale,
                        topology=preset)
             for name in _benches(mode)
             for technique in TECHNIQUES
             for preset in _presets(mode)
             for threads in curve_threads(preset)]
    cells += [MatrixCell(name, technique, False, PLACER_THREADS,
                         mode.scale, topology=PLACER_TOPOLOGY,
                         placer=placer)
              for name in _benches(mode)
              for technique in TECHNIQUES
              for placer in ("identity", "affinity")]
    return cells


@bench_spec(
    id="topology_scaling",
    title="TOPO-E1: thread scaling across machine topologies",
    source="benchmarks/bench_topology_scaling.py",
    cells=_scaling_cells)
def collect_topology_scaling(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for technique in TECHNIQUES:
        for name in _benches(mode):
            for preset in _presets(mode):
                for threads in curve_threads(preset):
                    ev = evaluation(name, technique,
                                    n_threads=threads,
                                    scale=mode.scale, topology=preset)
                    prefix = "%s/%s/%s/%dt" % (technique, name, preset,
                                               threads)
                    metrics["mt_cycles/" + prefix] = Metric(
                        float(ev.mt_result.cycles), unit="cycles")
                    metrics["speedup/" + prefix] = Metric(ev.speedup,
                                                          unit="x")
            placed: Dict[str, float] = {}
            for placer in ("identity", "affinity"):
                ev = evaluation(name, technique,
                                n_threads=PLACER_THREADS,
                                scale=mode.scale,
                                topology=PLACER_TOPOLOGY, placer=placer)
                placed[placer] = float(ev.mt_result.cycles)
                metrics["placer_cycles/%s/%s/%s" %
                        (technique, name, placer)] = Metric(
                    placed[placer], unit="cycles")
            # Cycles the affinity placer saved over identity on the
            # clustered quad (>= 0 by the placer's fallback contract).
            metrics["placer_gain/%s/%s" % (technique, name)] = Metric(
                placed["identity"] - placed["affinity"], unit="cycles")
    return metrics
