"""Host-performance specs: compile-side pass wall times.

These are the only spec metrics that measure the *host*, not the
simulated machine, so they carry the generous :data:`~repro.bench.spec
.TIME_BAND` tolerance — the regression gate trips on a pathological
slowdown (an accidental quadratic pass), not on CI scheduler jitter.
The papers' claim being tracked: COCO's min-cut passes do not
significantly increase compilation time.
"""

from __future__ import annotations

import time

from ...analysis import build_pdg
from ...coco.driver import optimize as coco_optimize
from ...interp import run_function
from ...machine import DEFAULT_CONFIG
from ...mtcg import generate
from ...partition.dswp import DSWPPartitioner
from ...partition.gremio import GremioPartitioner
from ...api import normalize
from ...workloads import get_workload
from ..spec import TIME_BAND, BenchMode, Metric, MetricMap, bench_spec

COMPILE_BENCH = "435.gromacs"  # the largest kernel in the suite


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


@bench_spec(
    id="compile_time",
    title="Compile-side pass wall times (PDG/partition/MTCG/COCO)",
    source="benchmarks/bench_compile_time.py")
def collect_compile_time(mode: BenchMode) -> MetricMap:
    workload = get_workload(COMPILE_BENCH)
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    gremio = GremioPartitioner(DEFAULT_CONFIG)
    dswp = DSWPPartitioner(DEFAULT_CONFIG)
    partition = gremio.partition(function, pdg, profile, 2)

    seconds = {
        "pdg_build": _timed(lambda: build_pdg(function)),
        "gremio_partition": _timed(
            lambda: gremio.partition(function, pdg, profile, 2)),
        "dswp_partition": _timed(
            lambda: dswp.partition(function, pdg, profile, 2)),
        "mtcg_codegen": _timed(
            lambda: generate(function, pdg, partition)),
        "coco_optimize": _timed(
            lambda: coco_optimize(function, pdg, partition, profile)),
    }
    return {"seconds/%s" % name: Metric(value, unit="s",
                                        tolerance=TIME_BAND)
            for name, value in seconds.items()}
