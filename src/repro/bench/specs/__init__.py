"""Spec definitions, one module per experiment family.  Importing this
package registers every spec with :mod:`repro.bench.spec`."""

from . import (ablations, hostperf, paper, scaling,  # noqa: F401
               synthetic, trace, tune)

#: Every spec id, grouped the way the benchmarks/ directory is.
FAMILIES = {
    "paper": ["fig6_setup", "fig1_breakdown", "fig7_comm_reduction",
              "fig8_speedup", "gremio_speedup", "gremio_vs_dswp"],
    "ablations": ["ext_scaling", "ablation_hierarchy",
                  "ablation_machine", "branch_prediction",
                  "memory_disambiguation", "region_selection",
                  "scheduler_interaction", "profile_sensitivity",
                  "overhead_breakdown"],
    "hostperf": ["compile_time"],
    "trace": ["trace_attribution"],
    "scaling": ["topology_scaling"],
    "tune": ["tune_smoke"],
    "synthetic": ["synthetic_frontend"],
}
