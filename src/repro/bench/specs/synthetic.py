"""FE-E1: the frontend-compiled ``synthetic`` workload family.

Speedup and cycle metrics for every :mod:`repro.workloads.synthetic`
kernel under both techniques.  The cycle counts are deterministic
simulator output over frontend-*emitted* IR, so this spec is the bench
gate for frontend lowering: a change that alters emitted code shows up
as a cycle delta here (and as a correctness failure in the evaluation
check long before that).

All evaluations run with the oracle check on — CPython executing the
kernel source is the reference — which is the same contract the
frontend differential fuzzer enforces, applied to the full pipeline.
"""

from __future__ import annotations

from typing import List

from ...workloads.synthetic import SYNTHETIC_NAMES
from ..harness import evaluation
from ..spec import BenchMode, Metric, MetricMap, bench_spec

TECHNIQUES = ("gremio", "dswp")


def _benches(mode: BenchMode) -> List[str]:
    return mode.pick(list(SYNTHETIC_NAMES))


@bench_spec(
    id="synthetic_frontend",
    title="FE-E1: frontend-compiled synthetic kernels",
    source="benchmarks/bench_synthetic_frontend.py")
def collect_synthetic(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for technique in TECHNIQUES:
        for name in _benches(mode):
            ev = evaluation(name, technique, n_threads=2,
                            scale=mode.scale)
            key = "%s/%s" % (technique, name)
            metrics["mt_cycles/" + key] = Metric(
                float(ev.mt_result.cycles), unit="cycles")
            metrics["st_cycles/" + key] = Metric(
                float(ev.st_result.cycles), unit="cycles")
            metrics["speedup/" + key] = Metric(ev.speedup, unit="x")
    return metrics
