"""Specs for the ablation and sensitivity experiments (GREMIO-E3/E4,
EXT-E1..E7): custom pipeline assemblies that bypass the evaluation
matrix (variant partitioners, machine-parameter sweeps, outlined
regions, profile-source swaps).

Under the smoke mode these measure on ``train`` inputs and truncated
benchmark lists; the full mode reproduces the papers' methodology
exactly (``ref`` inputs, complete lists).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Tuple

from ...analysis import build_pdg
from ...coco.driver import optimize as coco_optimize
from ...interp import run_function, static_profile
from ...interp.context import ThreadContext
from ...interp.profile import EdgeProfile
from ...interp.state import bind_params, make_memory
from ...ir import Opcode
from ...ir.outline import OutlineError, outline_hottest_loop
from ...machine import DEFAULT_CONFIG, run_mt_program
from ...machine.backend import simulate_program_fn, simulate_single_fn
from ...mtcg import generate
from ...opt.scheduler import (CommPriority, schedule_function,
                              schedule_program)
from ...partition.dswp import DSWPPartitioner
from ...partition.gremio import GremioPartitioner
from ...api import (MatrixCell, make_partitioner, normalize,
                    technique_config)
from ...stats import geomean, overhead_breakdown
from ...workloads import get_workload
from ..harness import active_backend, evaluation
from ..spec import BenchMode, Metric, MetricMap, bench_spec


def simulate_program(*args, **kwargs):
    """The bench session's active simulator backend (bit-identical to
    the reference; see tests/test_backend_equivalence.py)."""
    return simulate_program_fn(active_backend())(*args, **kwargs)


def simulate_single(*args, **kwargs):
    return simulate_single_fn(active_backend())(*args, **kwargs)


# Per-process memo of the derivation chain every ablation repeats for a
# workload: the train-input profile and the PDG of its normalized
# function.  Workload builds are deterministic — the persistent pipeline
# cache already applies cached profiles/PDGs to freshly built functions —
# so the shared objects are valid against any fresh build; call sites
# still rebuild the Function itself because downstream passes may mutate
# it (local scheduling, outlining).
_TRAIN_DERIVATIONS: dict = {}


def _train_derivation(workload) -> tuple:
    """(train profile, PDG) for the workload's normalized function."""
    cached = _TRAIN_DERIVATIONS.get(workload.name)
    if cached is None:
        function = normalize(workload.build())
        train = workload.make_inputs("train")
        profile = run_function(function, train.args,
                               train.memory).profile
        cached = (profile, build_pdg(function))
        _TRAIN_DERIVATIONS[workload.name] = cached
    return cached

SCALING_BENCHES = ["ks", "181.mcf", "435.gromacs", "188.ammp"]
HIERARCHY_BENCHES = ["ks", "181.mcf", "435.gromacs", "300.twolf",
                     "183.equake", "458.sjeng"]
BRANCH_BENCHES = ["458.sjeng", "183.equake"]
MEMDIS_BENCHES = ["181.mcf", "435.gromacs", "183.equake"]
REGION_BENCHES = ["181.mcf", "183.equake", "adpcmdec", "mpeg2enc"]
SCHEDULER_BENCHES = ["181.mcf", "435.gromacs", "ks", "188.ammp"]
PROFILE_BENCHES = ["ks", "mpeg2enc", "188.ammp", "300.twolf"]
OVERHEAD_BENCHES = ["ks", "181.mcf", "188.ammp", "300.twolf",
                    "458.sjeng"]
MACHINE_SWEEP_BENCH = "181.mcf"
ALIAS_MODES = ("annotated", "provenance", "none")
LATENCIES = (1, 2, 4, 8, 16, 32)
QUEUE_DEPTHS = (1, 2, 4, 8, 32, 128)


def _prepare_dswp(name: str, mode: BenchMode,
                  config=None) -> Tuple[object, object, object]:
    """(function, generated MT program, measure inputs) for the fixed
    DSWP assembly the machine/branch sweeps study."""
    workload = get_workload(name)
    function = normalize(workload.build())
    measure = workload.make_inputs(mode.scale)
    profile, pdg = _train_derivation(workload)
    partition = DSWPPartitioner(config or DEFAULT_CONFIG).partition(
        function, pdg, profile, 2)
    program = generate(function, pdg, partition)
    return function, program, measure


# -- EXT-E1: thread-count scaling ------------------------------------------


def _scaling_cells(mode: BenchMode) -> List[MatrixCell]:
    benches = mode.pick(SCALING_BENCHES)
    cells = [MatrixCell(name, technique, False, threads, mode.scale)
             for name in benches
             for technique in ("gremio", "dswp")
             for threads in (2, 3, 4)]
    cells += [MatrixCell(name, "dswp", True, threads, mode.scale)
              for name in benches for threads in (2, 4)]
    return cells


@bench_spec(
    id="ext_scaling",
    title="EXT-E1: thread-count scaling (2/3/4 threads)",
    source="benchmarks/bench_ext_scaling.py",
    cells=_scaling_cells)
def collect_ext_scaling(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for technique in ("gremio", "dswp"):
        for name in mode.pick(SCALING_BENCHES):
            for threads in (2, 3, 4):
                ev = evaluation(name, technique, coco=False,
                                n_threads=threads, scale=mode.scale)
                prefix = "%s/%s/%dt" % (technique, name, threads)
                metrics["speedup/" + prefix] = Metric(ev.speedup,
                                                      unit="x")
                metrics["comm_pct/" + prefix] = Metric(
                    100.0 * ev.communication_fraction, unit="%")
    for threads in (2, 4):
        removed = 0
        for name in mode.pick(SCALING_BENCHES):
            base = evaluation(name, "dswp", coco=False,
                              n_threads=threads, scale=mode.scale)
            opt = evaluation(name, "dswp", coco=True, n_threads=threads,
                             scale=mode.scale)
            delta = (base.communication_instructions
                     - opt.communication_instructions)
            # COCO never increases communication at any thread count.
            assert delta >= 0, (name, threads)
            removed += delta
        metrics["coco_removed/%dt" % threads] = Metric(removed,
                                                       unit="count")
    return metrics


# -- GREMIO-E3: scheduling-policy ablation ---------------------------------


def _speedup_with(workload, partitioner, mode: BenchMode) -> float:
    function = normalize(workload.build())
    measure = workload.make_inputs(mode.scale)
    profile, pdg = _train_derivation(workload)
    partition = partitioner.partition(function, pdg, profile, 2)
    program = generate(function, pdg, partition)
    st = simulate_single(function, measure.args, measure.memory)
    mt = simulate_program(program, measure.args, measure.memory)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


@bench_spec(
    id="ablation_hierarchy",
    title="GREMIO-E3: scheduling-policy ablation (full/flat/region)",
    source="benchmarks/bench_ablation_hierarchy.py")
def collect_ablation_hierarchy(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    per_variant: Dict[str, List[float]] = {"full": [], "flat": [],
                                           "grouped": []}
    for name in mode.pick(HIERARCHY_BENCHES):
        workload = get_workload(name)
        variants = {
            "full": GremioPartitioner(DEFAULT_CONFIG),
            "flat": GremioPartitioner(DEFAULT_CONFIG,
                                      hierarchical=False),
            "grouped": GremioPartitioner(DEFAULT_CONFIG,
                                         region_grouping=True),
        }
        for variant, partitioner in variants.items():
            speedup = _speedup_with(workload, partitioner, mode)
            metrics["speedup/%s/%s" % (variant, name)] = \
                Metric(speedup, unit="x")
            per_variant[variant].append(speedup)
    for variant, values in per_variant.items():
        metrics["geomean/%s" % variant] = Metric(geomean(values),
                                                 unit="x")
    return metrics


# -- EXT-E2: machine-parameter sensitivity ---------------------------------


@bench_spec(
    id="ablation_machine",
    title="EXT-E2: operand-network latency and queue-depth sweeps",
    source="benchmarks/bench_ablation_machine.py")
def collect_ablation_machine(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    function, program, measure = _prepare_dswp(MACHINE_SWEEP_BENCH, mode)
    st = simulate_single(function, measure.args, measure.memory)
    metrics["st_cycles"] = Metric(st.cycles, unit="cycles")
    for latency in LATENCIES:
        config = dataclasses.replace(DEFAULT_CONFIG,
                                     sa_access_latency=latency,
                                     sa_queue_size=32)
        mt = simulate_program(program, measure.args, measure.memory,
                              config=config)
        assert mt.live_outs == st.live_outs
        metrics["mt_cycles/latency/%d" % latency] = Metric(mt.cycles,
                                                           unit="cycles")
    for depth in QUEUE_DEPTHS:
        config = dataclasses.replace(DEFAULT_CONFIG, sa_queue_size=depth)
        mt = simulate_program(program, measure.args, measure.memory,
                              config=config)
        assert mt.live_outs == st.live_outs
        metrics["mt_cycles/queue/%d" % depth] = Metric(mt.cycles,
                                                       unit="cycles")
    return metrics


# -- EXT-E5: branch-handling sensitivity -----------------------------------


@bench_spec(
    id="branch_prediction",
    title="EXT-E5: branch-handling models (static/bimodal/perfect)",
    source="benchmarks/bench_branch_prediction.py")
def collect_branch_prediction(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for name in mode.pick(BRANCH_BENCHES):
        function, program, measure = _prepare_dswp(
            name, mode, config=DEFAULT_CONFIG.for_dswp())
        for predictor in ("static", "bimodal", "perfect"):
            config = dataclasses.replace(DEFAULT_CONFIG.for_dswp(),
                                         branch_predictor=predictor)
            st = simulate_single(function, measure.args, measure.memory,
                                 config=config)
            mt = simulate_program(program, measure.args, measure.memory,
                                  config=config)
            assert mt.live_outs == st.live_outs
            metrics["st_cycles/%s/%s" % (predictor, name)] = \
                Metric(st.cycles, unit="cycles")
            metrics["speedup/%s/%s" % (predictor, name)] = \
                Metric(st.cycles / mt.cycles, unit="x")
    return metrics


# -- EXT-E3: memory-disambiguation sensitivity -----------------------------


@bench_spec(
    id="memory_disambiguation",
    title="EXT-E3: DSWP speedup vs memory-disambiguation power",
    source="benchmarks/bench_memory_disambiguation.py",
    cells=lambda mode: [MatrixCell(name, "dswp", False, 2, mode.scale,
                                   alias)
                        for name in mode.pick(MEMDIS_BENCHES)
                        for alias in ALIAS_MODES])
def collect_memory_disambiguation(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for name in mode.pick(MEMDIS_BENCHES):
        for alias in ALIAS_MODES:
            ev = evaluation(name, "dswp", scale=mode.scale,
                            alias_mode=alias)
            metrics["speedup/%s/%s" % (alias, name)] = \
                Metric(ev.speedup, unit="x")
    return metrics


# -- EXT-E6: region selection ----------------------------------------------


def _profile_with_memory(function, args, memory) -> EdgeProfile:
    """Interpret with a pre-built memory image (objects already laid
    out)."""
    mem_copy = copy.deepcopy(memory)
    regs = dict(args)
    for param, obj_name in function.pointer_params.items():
        regs[param] = function.mem_objects[obj_name].base
    context = ThreadContext(function, regs, mem_copy, None)
    profile = EdgeProfile(function)
    profile.count_block(context.block.label)
    while not context.exited:
        previous = context.block.label
        result = context.step()
        instruction = result.instruction
        if instruction is not None and instruction.op in (Opcode.BR,
                                                          Opcode.JMP):
            profile.count_edge(previous, context.block.label)
            profile.count_block(context.block.label)
    return profile


def _image_to_initial(function, memory):
    return {name: memory.read_array(obj.base, obj.size)
            for name, obj in function.mem_objects.items()}


def _whole_function_speedup(workload, mode: BenchMode) -> float:
    function = normalize(workload.build())
    measure = workload.make_inputs(mode.scale)
    profile, pdg = _train_derivation(workload)
    config = DEFAULT_CONFIG.for_dswp()
    partition = DSWPPartitioner(config).partition(function, pdg,
                                                  profile, 2)
    program = generate(function, pdg, partition)
    st = simulate_single(function, measure.args, measure.memory,
                         config=config)
    mt = simulate_program(program, measure.args, measure.memory,
                          config=config)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


def _outlined_loop_speedup(workload, mode: BenchMode) -> float:
    """Outline the hottest loop of the (normalized) function, then run
    the pipeline on the outlined region alone (see the EXT-E6 module
    docstring for the replay caveats)."""
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    profile, _ = _train_derivation(workload)
    extracted = outline_hottest_loop(function, profile)
    loop_fn = extracted.function

    def loop_args(inputs):
        # Re-derive the loop's live-in values: interpret the enclosing
        # function until the loop header is first reached (the kernels
        # initialize loop-carried registers in straight-line setup code).
        memory = make_memory(function, inputs.memory)
        regs = bind_params(function, dict(inputs.args))
        context = ThreadContext(function, regs, memory, None)
        while context.block.label != extracted.header:
            context.step()
        return ({name: regs.get(name, 0)
                 for name in loop_fn.params
                 if name not in loop_fn.pointer_params}, memory)

    args, memory = loop_args(workload.make_inputs(mode.scale))
    profile_args, profile_memory = loop_args(train)
    config = DEFAULT_CONFIG.for_dswp()
    pdg = build_pdg(loop_fn)
    loop_profile = _profile_with_memory(loop_fn, profile_args,
                                        profile_memory)
    partition = DSWPPartitioner(config).partition(loop_fn, pdg,
                                                  loop_profile, 2)
    program = generate(loop_fn, pdg, partition)
    st = simulate_single(loop_fn, args,
                         _image_to_initial(loop_fn,
                                           copy.deepcopy(memory)),
                         config=config)
    mt = simulate_program(program, args,
                          _image_to_initial(program.original,
                                            copy.deepcopy(memory)),
                          config=config)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


@bench_spec(
    id="region_selection",
    title="EXT-E6: whole procedure vs outlined hottest loop",
    source="benchmarks/bench_region_selection.py")
def collect_region_selection(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for name in mode.pick(REGION_BENCHES):
        workload = get_workload(name)
        metrics["speedup/whole/%s" % name] = \
            Metric(_whole_function_speedup(workload, mode), unit="x")
        try:
            loop = _outlined_loop_speedup(workload, mode)
        except OutlineError:
            loop = float("nan")
        metrics["speedup/outlined/%s" % name] = Metric(loop, unit="x")
    return metrics


# -- EXT-E4: local-scheduler interaction -----------------------------------


def _scheduled_speedup(name: str, comm_priority,
                       mode: BenchMode) -> float:
    workload = get_workload(name)
    function = normalize(workload.build())
    measure = workload.make_inputs(mode.scale)
    profile, pdg = _train_derivation(workload)
    config = technique_config("dswp")
    partition = make_partitioner("dswp", config).partition(
        function, pdg, profile, 2)
    coco = coco_optimize(function, pdg, partition, profile)
    program = generate(function, pdg, partition,
                       data_channels=coco.data_channels,
                       condition_covered=coco.condition_covered)
    if comm_priority is not None:
        schedule_program(program, config, comm_priority)
        # Schedule the single-threaded baseline too: the comparison is
        # between equally-optimized codes, as in the papers' toolchain.
        schedule_function(function, config, comm_priority)
    st = simulate_single(function, measure.args, measure.memory,
                         config=config)
    mt = simulate_program(program, measure.args, measure.memory,
                          config=config)
    assert mt.live_outs == st.live_outs
    return st.cycles / mt.cycles


@bench_spec(
    id="scheduler_interaction",
    title="EXT-E4: COCO x downstream local scheduler priorities",
    source="benchmarks/bench_scheduler_interaction.py")
def collect_scheduler_interaction(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    priorities = (("none", None), ("early", CommPriority.EARLY),
                  ("late", CommPriority.LATE))
    for name in mode.pick(SCHEDULER_BENCHES):
        for label, priority in priorities:
            metrics["speedup/%s/%s" % (label, name)] = \
                Metric(_scheduled_speedup(name, priority, mode),
                       unit="x")
    return metrics


# -- EXT-E7: COCO profile-source sensitivity -------------------------------


def _comm_with_profile(workload, which: str, mode: BenchMode) -> int:
    function = normalize(workload.build())
    measure = workload.make_inputs(mode.scale)
    config = technique_config("dswp")
    # The partition itself always uses the train profile (so only COCO's
    # cost source varies).
    train_profile, pdg = _train_derivation(workload)
    partition = DSWPPartitioner(config).partition(function, pdg,
                                                  train_profile, 2)
    if which == "baseline":
        program = generate(function, pdg, partition)
    else:
        if which == "train":
            profile = train_profile
        elif which == "oracle":
            profile = run_function(function, measure.args,
                                   measure.memory).profile
        else:
            profile = static_profile(function)
        coco = coco_optimize(function, pdg, partition, profile)
        program = generate(function, pdg, partition,
                           data_channels=coco.data_channels,
                           condition_covered=coco.condition_covered)
    result = run_mt_program(program, measure.args, measure.memory,
                            queue_capacity=config.sa_queue_size)
    return result.communication_instructions


@bench_spec(
    id="profile_sensitivity",
    title="EXT-E7: COCO cost source (train/oracle/static profiles)",
    source="benchmarks/bench_profile_sensitivity.py")
def collect_profile_sensitivity(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for name in mode.pick(PROFILE_BENCHES):
        workload = get_workload(name)
        for source in ("baseline", "train", "oracle", "static"):
            metrics["comm/%s/%s" % (source, name)] = \
                Metric(_comm_with_profile(workload, source, mode),
                       unit="count")
    return metrics


# -- GREMIO-E4: dynamic overhead breakdown ---------------------------------


def _breakdown(name: str, technique: str, coco: bool,
               mode: BenchMode) -> Dict[str, float]:
    workload = get_workload(name)
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    measure = workload.make_inputs(mode.scale)
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    config = technique_config(technique)
    partition = make_partitioner(technique, config).partition(
        function, pdg, profile, 2)
    if coco:
        result = coco_optimize(function, pdg, partition, profile)
        program = generate(function, pdg, partition,
                           data_channels=result.data_channels,
                           condition_covered=result.condition_covered)
    else:
        program = generate(function, pdg, partition)
    run = run_mt_program(program, measure.args, measure.memory,
                         queue_capacity=config.sa_queue_size,
                         count_per_instruction=True)
    return overhead_breakdown(program, run)


@bench_spec(
    id="overhead_breakdown",
    title="GREMIO-E4: dynamic overhead breakdown of generated MT code",
    source="benchmarks/bench_overhead_breakdown.py")
def collect_overhead_breakdown(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for name in mode.pick(OVERHEAD_BENCHES):
        base = _breakdown(name, "dswp", coco=False, mode=mode)
        coco = _breakdown(name, "dswp", coco=True, mode=mode)
        for klass, value in base.items():
            metrics["pct/base/%s/%s" % (klass, name)] = Metric(value,
                                                               unit="%")
        for klass in ("communication", "replicated_control"):
            metrics["pct/coco/%s/%s" % (klass, name)] = \
                Metric(coco[klass], unit="%")
    return metrics
