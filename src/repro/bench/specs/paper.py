"""Specs for the papers' headline figures: experimental setup (Fig 6),
communication breakdown (Fig 1), COCO communication reduction (Fig 7),
speedups (Fig 8), and the GREMIO experiments (E1/E2).

All of these ride on the memoized evaluation harness, so the runner can
prewarm the whole (workload x technique x coco) matrix through
``evaluate_matrix --jobs N`` before the extractors run serially.
"""

from __future__ import annotations

from typing import Dict, List

from ...machine import DEFAULT_CONFIG
from ...api import MatrixCell
from ...stats import arithmetic_mean, geomean
from ...workloads import all_workloads
from ..harness import BENCH_ORDER, evaluation, relative_communication
from ..spec import BenchMode, Metric, MetricMap, bench_spec

TECHNIQUES = ("gremio", "dswp")


def _benches(mode: BenchMode) -> List[str]:
    # The evaluation-matrix specs share one memoized/cached matrix, so
    # even the smoke configuration keeps the full benchmark list — only
    # the measurement inputs shrink (train scale).
    return list(BENCH_ORDER)


def _matrix_cells(mode: BenchMode,
                  coco: tuple = (False, True),
                  n_threads: tuple = (2,)) -> List[MatrixCell]:
    return [MatrixCell(name, technique, use_coco, threads, mode.scale)
            for name in _benches(mode)
            for technique in TECHNIQUES
            for use_coco in coco
            for threads in n_threads]


@bench_spec(
    id="fig6_setup",
    title="Figure 6: machine configuration and benchmark functions",
    source="benchmarks/bench_fig6_setup.py")
def collect_fig6(mode: BenchMode) -> MetricMap:
    return {
        # Only the hand-ported paper benchmarks: the frontend-compiled
        # `synthetic` suite is covered by its own spec family.
        "workloads/count": Metric(
            len([w for w in all_workloads() if w.suite != "synthetic"]),
            unit="count"),
        "machine/sa_queues": Metric(DEFAULT_CONFIG.sa_queues,
                                    unit="count"),
        "machine/sa_queue_size": Metric(DEFAULT_CONFIG.sa_queue_size,
                                        unit="count"),
        "machine/sa_access_latency": Metric(
            DEFAULT_CONFIG.sa_access_latency, unit="cycles"),
    }


@bench_spec(
    id="fig1_breakdown",
    title="Figure 1: dynamic communication share under baseline MTCG",
    source="benchmarks/bench_fig1_breakdown.py",
    cells=lambda mode: _matrix_cells(mode, coco=(False,)))
def collect_fig1(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for technique in TECHNIQUES:
        shares = []
        for name in _benches(mode):
            ev = evaluation(name, technique, coco=False,
                            scale=mode.scale)
            share = 100.0 * ev.communication_fraction
            metrics["comm_pct/%s/%s" % (technique, name)] = \
                Metric(share, unit="%")
            shares.append(share)
        metrics["comm_pct/%s/max" % technique] = Metric(max(shares),
                                                        unit="%")
    return metrics


@bench_spec(
    id="fig7_comm_reduction",
    title="Figure 7: dynamic communication after COCO, relative to MTCG",
    source="benchmarks/bench_fig7_comm_reduction.py",
    cells=_matrix_cells)
def collect_fig7(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for technique in TECHNIQUES:
        values = []
        for name in _benches(mode):
            base = evaluation(name, technique, coco=False,
                              scale=mode.scale)
            if base.communication_instructions == 0:
                continue  # not parallelized: nothing to optimize
            relative = relative_communication(name, technique,
                                              scale=mode.scale)
            metrics["relcomm/%s/%s" % (technique, name)] = \
                Metric(relative, unit="%")
            values.append(relative)
        metrics["relcomm/%s/mean" % technique] = \
            Metric(arithmetic_mean(values), unit="%")
    return metrics


@bench_spec(
    id="fig8_speedup",
    title="Figure 8: speedup over single-threaded, without/with COCO",
    source="benchmarks/bench_fig8_speedup.py",
    cells=_matrix_cells)
def collect_fig8(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for technique in TECHNIQUES:
        for coco in (False, True):
            config = technique + ("+coco" if coco else "")
            speedups = []
            for name in _benches(mode):
                ev = evaluation(name, technique, coco=coco,
                                scale=mode.scale)
                metrics["speedup/%s/%s" % (config, name)] = \
                    Metric(ev.speedup, unit="x")
                speedups.append(ev.speedup)
            metrics["geomean/%s" % config] = Metric(geomean(speedups),
                                                    unit="x")
    return metrics


@bench_spec(
    id="gremio_speedup",
    title="GREMIO-E1: GREMIO speedup over single-threaded",
    source="benchmarks/bench_gremio_speedup.py",
    cells=lambda mode: _matrix_cells(mode, coco=(False,)))
def collect_gremio_speedup(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    speedups = []
    parallelized = 0
    for name in _benches(mode):
        ev = evaluation(name, "gremio", coco=False, scale=mode.scale)
        metrics["speedup/%s" % name] = Metric(ev.speedup, unit="x")
        speedups.append(ev.speedup)
        if ev.communication_instructions > 100:
            parallelized += 1
    metrics["geomean"] = Metric(geomean(speedups), unit="x")
    metrics["min"] = Metric(min(speedups), unit="x")
    metrics["max"] = Metric(max(speedups), unit="x")
    metrics["parallelized/count"] = Metric(parallelized, unit="count")
    return metrics


@bench_spec(
    id="gremio_vs_dswp",
    title="GREMIO-E2: GREMIO vs DSWP on the same dual-core model",
    source="benchmarks/bench_gremio_vs_dswp.py",
    cells=lambda mode: _matrix_cells(mode, coco=(False,)))
def collect_gremio_vs_dswp(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    wins: Dict[str, int] = {"gremio": 0, "dswp": 0}
    per_technique: Dict[str, List[float]] = {"gremio": [], "dswp": []}
    for name in _benches(mode):
        values = {}
        for technique in TECHNIQUES:
            ev = evaluation(name, technique, coco=False,
                            scale=mode.scale)
            values[technique] = ev.speedup
            per_technique[technique].append(ev.speedup)
            metrics["speedup/%s/%s" % (technique, name)] = \
                Metric(ev.speedup, unit="x")
        if values["gremio"] > values["dswp"] + 0.02:
            wins["gremio"] += 1
        elif values["dswp"] > values["gremio"] + 0.02:
            wins["dswp"] += 1
    for technique in TECHNIQUES:
        metrics["geomean/%s" % technique] = \
            Metric(geomean(per_technique[technique]), unit="x")
        metrics["wins/%s" % technique] = Metric(wins[technique],
                                                unit="count")
    return metrics
