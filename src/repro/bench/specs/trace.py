"""Trace-derived observability metrics: dynamic critical-path length
and the dominant stall reason per (technique, workload).

All metrics are **informational** (``tolerance=None``): they explain
bench deltas rather than gate them, so attribution-model refinements
never fail CI.  The top stall reason is encoded as its index in the
canonical :data:`repro.trace.STALL_CATEGORIES` order so the metric
*names* stay stable across runs (the comparator gates on missing
names, not on informational values).
"""

from __future__ import annotations

from typing import List

from ...api import EvaluateRequest, ProgramSpec, evaluate
from ...trace import STALL_CATEGORIES
from ..spec import BenchMode, Metric, MetricMap, bench_spec

TECHNIQUES = ("gremio", "dswp")

#: Small, pipeline-heavy kernels: tracing skips the artifact cache, so
#: the spec stays cheap even under --full.
_BENCHES = ("adpcmdec", "ks")


def _benches(mode: BenchMode) -> List[str]:
    return mode.pick(list(_BENCHES))


@bench_spec(
    id="trace_attribution",
    title="Trace: dynamic critical path and dominant stall reason",
    source="benchmarks/bench_trace_attribution.py")
def collect_trace(mode: BenchMode) -> MetricMap:
    metrics: MetricMap = {}
    for technique in TECHNIQUES:
        for name in _benches(mode):
            result = evaluate(EvaluateRequest(
                program=ProgramSpec.registry(name),
                technique=technique, scale=mode.scale, trace=True))
            summary = result.trace or {}
            key = "%s/%s" % (technique, name)
            metrics["critical_path_cycles/" + key] = Metric(
                float(summary.get("critical_path_cycles", 0.0)),
                unit="cycles", tolerance=None)
            reason = summary.get("top_stall_reason")
            code = (STALL_CATEGORIES.index(reason)
                    if reason in STALL_CATEGORIES else -1)
            metrics["top_stall_code/" + key] = Metric(
                float(code), unit="enum", tolerance=None)
            metrics["top_stall_cycles/" + key] = Metric(
                float(summary.get("top_stall_cycles", 0.0)),
                unit="cycles", tolerance=None)
    return metrics
