"""TUNE-E1: search-based auto-tuning vs the paper-default schedulers.

Runs the seeded ``repro tune`` search (:mod:`repro.tune`) over its
smoke workloads and records, per workload, the best-found cycle count
against the default GREMIO and DSWP baselines it always contains.  The
search is deterministic (fixed seed, fixed budget, pool-invariant
scoring), so every metric is exact-tolerance: any drift means the
search itself — the knob space, a strategy, or the evaluation stack
under it — changed behavior.

``improvement_vs_*_pct`` is the headline: how much headroom the
cost-model-guided search finds over each fixed heuristic (Durbhakula;
Eremeev et al. — see PAPERS.md).  It is >= 0 by construction, since
the baselines are seeded into the search before any strategy proposal.
"""

from __future__ import annotations

from ...api import TuneRequest, tune
from ..harness import active_backend
from ..spec import BenchMode, Metric, MetricMap, bench_spec

#: Fixed search shape: the CLI ``--smoke`` configuration (so the CI
#: determinism gate, this spec, and the docs all describe one search).
TUNE_WORKLOADS = ("adpcmdec", "ks")
TUNE_SEED = 0
TUNE_STRATEGY = "greedy"
TUNE_BUDGET = {"smoke": 24, "full": 48}


def _request(mode: BenchMode) -> TuneRequest:
    return TuneRequest(
        workloads=tuple(mode.pick(list(TUNE_WORKLOADS))),
        strategy=TUNE_STRATEGY,
        budget=TUNE_BUDGET["smoke" if mode.is_smoke else "full"],
        seed=TUNE_SEED, scale=mode.scale, backend=active_backend())


@bench_spec(
    id="tune_smoke",
    title="TUNE-E1: auto-tuned configuration vs paper defaults",
    source="benchmarks/bench_tune_smoke.py")
def collect_tune_smoke(mode: BenchMode) -> MetricMap:
    result = tune(_request(mode))
    metrics: MetricMap = {
        "candidates_evaluated": Metric(float(result.evaluated),
                                       unit="count"),
    }
    for workload, best in sorted(result.best.items()):
        metrics["best_cycles/" + workload] = Metric(
            best["metrics"]["mt_cycles"], unit="cycles")
        for label, cycles in sorted(
                best["baseline_mt_cycles"].items()):
            metrics["%s_cycles/%s" % (label, workload)] = Metric(
                cycles, unit="cycles")
        for label, pct in sorted(best["improvement_pct"].items()):
            metrics["improvement_vs_%s_pct/%s"
                    % (label, workload)] = Metric(pct, unit="%")
    return metrics
