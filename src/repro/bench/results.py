"""``BENCH_RESULTS.json``: the schema-versioned, machine-readable form
of one bench run.

The document captures both kinds of metrics the papers' evaluation (and
this repo's perf trajectory) cares about:

* **paper metrics** per spec — speedups, relative communication,
  simulated cycles, PDG/channel counts — all deterministic, gated
  exactly by the comparator;
* **host metrics** — per-stage wall seconds and artifact-cache traffic
  from :class:`repro.pipeline.telemetry.Telemetry`, plus total wall
  time — recorded for trajectory, compared only within generous bands
  (or not at all, for environment-dependent cache counts).

``SCHEMA`` is bumped on any incompatible layout change; the comparator
refuses to diff documents with mismatched schemas or modes.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..api import Telemetry
from .spec import Metric, MetricMap

SCHEMA = "repro.bench/v1"


class SchemaError(ValueError):
    """The document is not a compatible BENCH_RESULTS.json."""


@dataclass
class SpecResult:
    """Metrics + wall time of one spec's collect() run."""

    spec_id: str
    title: str
    seconds: float
    metrics: MetricMap = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"title": self.title, "seconds": round(self.seconds, 4),
                "metrics": {name: metric.as_dict()
                            for name, metric in self.metrics.items()}}

    @classmethod
    def from_dict(cls, spec_id: str,
                  data: Dict[str, object]) -> "SpecResult":
        return cls(spec_id=spec_id, title=data.get("title", spec_id),
                   seconds=float(data.get("seconds", 0.0)),
                   metrics={name: Metric.from_dict(fields)
                            for name, fields in
                            data.get("metrics", {}).items()})


@dataclass
class BenchResults:
    """One bench run: every spec's metrics plus the host section."""

    mode: str                                   # "smoke" | "full"
    specs: Dict[str, SpecResult] = field(default_factory=dict)
    telemetry: Optional[Telemetry] = None       # merged pipeline stages
    cache: Dict[str, int] = field(default_factory=dict)
    total_seconds: float = 0.0
    host: Dict[str, str] = field(default_factory=dict)
    schema: str = SCHEMA

    @staticmethod
    def host_info() -> Dict[str, str]:
        return {"python": platform.python_version(),
                "platform": platform.platform()}

    # -- flat views --------------------------------------------------------

    def metric_items(self) -> List:
        """Flat ``(spec_id, metric_name, Metric)`` triples, sorted."""
        triples = []
        for spec_id in sorted(self.specs):
            result = self.specs[spec_id]
            for name in sorted(result.metrics):
                triples.append((spec_id, name, result.metrics[name]))
        return triples

    # -- serialization -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "mode": self.mode,
            "host": dict(self.host),
            "specs": {spec_id: result.as_dict()
                      for spec_id, result in sorted(self.specs.items())},
            "pipeline": {
                "telemetry": (self.telemetry.to_dict()
                              if self.telemetry is not None else None),
                "cache": dict(self.cache),
                "total_seconds": round(self.total_seconds, 4),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchResults":
        if not isinstance(data, dict) or "schema" not in data:
            raise SchemaError("not a BENCH_RESULTS document "
                              "(missing 'schema')")
        schema = data["schema"]
        if schema != SCHEMA:
            raise SchemaError("schema mismatch: document has %r, this "
                              "tool speaks %r — regenerate the baseline "
                              "(python -m repro bench --update-baseline)"
                              % (schema, SCHEMA))
        pipeline = data.get("pipeline", {})
        telemetry_data = pipeline.get("telemetry")
        return cls(
            mode=data.get("mode", "smoke"),
            specs={spec_id: SpecResult.from_dict(spec_id, fields)
                   for spec_id, fields in data.get("specs", {}).items()},
            telemetry=(Telemetry.from_dict(telemetry_data)
                       if telemetry_data is not None else None),
            cache={key: int(value)
                   for key, value in pipeline.get("cache", {}).items()},
            total_seconds=float(pipeline.get("total_seconds", 0.0)),
            host=dict(data.get("host", {})),
            schema=schema)

    @classmethod
    def from_json(cls, text: str) -> "BenchResults":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SchemaError("invalid JSON: %s" % error)
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "BenchResults":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
