"""``repro.bench`` — the machine-readable benchmark subsystem.

The papers' entire evaluation (GREMIO/DSWP speedups, COCO communication
reduction, the ablation and sensitivity studies) is registered as
:class:`BenchSpec` objects on a common interface: an id, the
evaluation-matrix cells to prewarm, and a metric extractor.  Two
frontends drive the same specs:

* the pytest modules under ``benchmarks/`` — human-readable figure
  tables plus the paper-shape assertions;
* ``python -m repro bench [--smoke|--full] [--jobs N]`` — a headless
  runner that emits a schema-versioned ``BENCH_RESULTS.json`` and,
  with ``--compare baselines/bench_baseline.json``, gates against a
  committed baseline under per-metric tolerance bands.

See ``docs/benchmarking.md`` for the schema and the baseline-update
workflow.
"""

from .compare import Comparison, MetricDelta, compare
from .harness import (BENCH_ORDER, active_backend, clear_memo,
                      evaluation, prewarm, relative_communication,
                      set_backend)
from .results import SCHEMA, BenchResults, SchemaError, SpecResult
from .runner import run_bench, select_specs
from .spec import (EXACT, FULL, MODES, SMOKE, STRICT_TIME_BAND,
                   TIME_BAND, BenchMode, BenchSpec, Metric, all_specs,
                   bench_spec, get_spec, register, spec_ids)

__all__ = [
    # specs
    "BenchSpec", "BenchMode", "Metric", "MODES", "SMOKE", "FULL",
    "EXACT", "TIME_BAND", "STRICT_TIME_BAND", "register", "bench_spec",
    "get_spec",
    "all_specs", "spec_ids",
    # harness
    "BENCH_ORDER", "evaluation", "prewarm", "relative_communication",
    "clear_memo", "set_backend", "active_backend",
    # results + comparison
    "SCHEMA", "BenchResults", "SpecResult", "SchemaError",
    "Comparison", "MetricDelta", "compare",
    # runner
    "run_bench", "select_specs",
]
