"""Shared evaluation machinery for the benchmark specs.

This is the in-process memo the old ``benchmarks/harness.py`` kept
privately: evaluations are expensive (profile + partition + COCO + two
timed simulations), so identical cells are computed once per process.
Under the memo, every evaluation still runs through the staged
pipeline's persistent artifact cache (see :mod:`repro.pipeline`), so
repeated bench sessions also skip redundant stage work *across*
processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from ..api import (DEFAULT_BACKEND, Evaluation, MatrixCell,
                   evaluate_matrix, evaluate_workload, get_workload,
                   validate_backend)
from ..stats import relative_communication as _relative_communication

# Benchmark display order (the papers' figure order).
BENCH_ORDER = ["adpcmdec", "adpcmenc", "ks", "mpeg2enc", "177.mesa",
               "181.mcf", "183.equake", "188.ammp", "300.twolf",
               "435.gromacs", "458.sjeng"]

_MEMO: Dict[MatrixCell, Evaluation] = {}

# Simulator backend the specs evaluate under.  Specs call evaluation()
# without naming one, so the bench runner sets this for the whole
# session (set_backend) and every memo key carries it — reference and
# fast timings never alias when both run in one process.
_ACTIVE_BACKEND = DEFAULT_BACKEND


def set_backend(backend: str) -> str:
    """Select the simulator backend for subsequent harness evaluations;
    returns the previous selection so callers can restore it."""
    global _ACTIVE_BACKEND
    validate_backend(backend)
    previous = _ACTIVE_BACKEND
    _ACTIVE_BACKEND = backend
    return previous


def active_backend() -> str:
    return _ACTIVE_BACKEND


def clear_memo() -> None:
    """Drop the per-process evaluation memo (tests; long sessions)."""
    _MEMO.clear()


def evaluation(name: str, technique: str, coco: bool = False,
               n_threads: int = 2, scale: str = "ref",
               alias_mode: str = "annotated", topology=None,
               placer: str = "identity") -> Evaluation:
    """The memoized full-methodology evaluation of one matrix cell."""
    cell = MatrixCell(name, technique, coco, n_threads, scale,
                      alias_mode, topology=topology, placer=placer,
                      backend=_ACTIVE_BACKEND)
    if cell not in _MEMO:
        _MEMO[cell] = evaluate_workload(
            get_workload(name), technique=technique, coco=coco,
            n_threads=n_threads, scale=scale, alias_mode=alias_mode,
            topology=topology, placer=placer, backend=_ACTIVE_BACKEND)
    return _MEMO[cell]


def prewarm(cells: Iterable[MatrixCell] = (),
            names: Iterable[str] = (),
            techniques: Sequence[str] = ("gremio", "dswp"),
            coco: Sequence[bool] = (False, True),
            n_threads: Sequence[int] = (2,),
            scale: str = "ref", jobs: int = 1,
            mt_check: bool = False) -> None:
    """Bulk-populate the memo via ``evaluate_matrix`` — with ``jobs > 1``
    the cells run on a process pool, so a benchmark session can
    front-load every evaluation it will need.  Pass explicit ``cells``
    (the spec runner does) or let the (names x techniques x coco x
    n_threads) product be built.  ``mt_check`` additionally runs the
    static MT validators over every generated program while prewarming."""
    cells = list(cells)
    if not cells:
        cells = [MatrixCell(name, technique, use_coco, threads, scale,
                            mt_check=mt_check)
                 for name in (names or BENCH_ORDER)
                 for technique in techniques
                 for use_coco in coco
                 for threads in n_threads]
    # Normalize onto the session backend so prewarmed keys match the
    # evaluation() calls the spec collectors make afterwards.
    cells = [cell._replace(backend=_ACTIVE_BACKEND) for cell in cells]
    todo = [cell for cell in cells if cell not in _MEMO]
    for cell, result in zip(todo, evaluate_matrix(todo, jobs=jobs)):
        _MEMO[cell] = result


def relative_communication(name: str, technique: str,
                           n_threads: int = 2,
                           scale: str = "ref") -> float:
    """COCO's dynamic communication relative to baseline MTCG, in %
    (delegates the arithmetic to :func:`repro.stats
    .relative_communication`)."""
    base = evaluation(name, technique, coco=False, n_threads=n_threads,
                      scale=scale)
    opt = evaluation(name, technique, coco=True, n_threads=n_threads,
                     scale=scale)
    return _relative_communication(opt, base)
