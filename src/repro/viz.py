"""Graphviz (dot) export of the toolchain's graphs.

Produces plain-text ``.dot`` sources for CFGs, PDGs, thread graphs, and
multi-threaded programs — handy for inspecting what the partitioners and
MTCG actually built (render with ``dot -Tsvg``).
"""

from __future__ import annotations

from typing import Dict, Optional

from .analysis.pdg import PDG, DepKind
from .ir.cfg import Function
from .ir.printer import format_instruction
from .mtcg.program import MTProgram
from .partition.base import Partition

_KIND_STYLE = {
    DepKind.REGISTER: 'color="black"',
    DepKind.MEMORY: 'color="red", style=dashed',
    DepKind.CONTROL: 'color="blue", style=dotted',
}

_THREAD_COLORS = ["lightblue", "lightyellow", "lightgreen", "lightpink",
                  "lavender", "mistyrose", "honeydew", "aliceblue"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(function: Function, profile=None) -> str:
    """One node per basic block (instructions as the label), edges from
    terminators; profile weights annotate edges when supplied."""
    lines = ["digraph \"%s\" {" % _escape(function.name),
             '  node [shape=box, fontname="monospace", fontsize=9];']
    for block in function.blocks:
        body = "\\l".join(_escape(format_instruction(i)) for i in block)
        lines.append('  "%s" [label="%s:\\l%s\\l"];'
                     % (block.label, _escape(block.label), body))
    for block in function.blocks:
        for successor in block.successors():
            attributes = ""
            if profile is not None:
                weight = profile.edge_weight(block.label, successor)
                attributes = ' [label="%.0f"]' % weight
            lines.append('  "%s" -> "%s"%s;'
                         % (block.label, successor, attributes))
    lines.append("}")
    return "\n".join(lines)


def pdg_to_dot(pdg: PDG, partition: Optional[Partition] = None) -> str:
    """One node per instruction, arcs styled by dependence kind; nodes are
    colored by thread when a partition is supplied."""
    function = pdg.function
    by_iid = function.by_iid()
    lines = ["digraph \"pdg_%s\" {" % _escape(function.name),
             '  node [shape=ellipse, fontname="monospace", fontsize=9];']
    for iid in pdg.nodes:
        label = "%d: %s" % (iid, _escape(format_instruction(by_iid[iid])))
        color = ""
        if partition is not None:
            thread = partition.thread_of(iid)
            color = (', style=filled, fillcolor="%s"'
                     % _THREAD_COLORS[thread % len(_THREAD_COLORS)])
        lines.append('  n%d [label="%s"%s];' % (iid, label, color))
    for arc in pdg.arcs:
        style = _KIND_STYLE[arc.kind]
        label = arc.register or ""
        lines.append('  n%d -> n%d [%s, label="%s"];'
                     % (arc.source, arc.target, style, _escape(label)))
    lines.append("}")
    return "\n".join(lines)


def thread_graph_to_dot(pdg: PDG, partition: Partition) -> str:
    """The COCO thread graph: one node per thread, one arc per direction
    with communication present, labeled by arc counts per kind."""
    counts: Dict[tuple, Dict[DepKind, int]] = {}
    for arc in pdg.arcs:
        source = partition.thread_of(arc.source)
        target = partition.thread_of(arc.target)
        if source == target:
            continue
        per_kind = counts.setdefault((source, target), {})
        per_kind[arc.kind] = per_kind.get(arc.kind, 0) + 1
    lines = ["digraph thread_graph {", "  node [shape=circle];"]
    for thread in range(partition.n_threads):
        lines.append('  t%d [label="T%d"];' % (thread, thread))
    for (source, target), per_kind in sorted(counts.items()):
        label = ", ".join("%s:%d" % (kind.value[:3], count)
                          for kind, count in sorted(
                              per_kind.items(), key=lambda kv: kv[0].value))
        lines.append('  t%d -> t%d [label="%s"];'
                     % (source, target, label))
    lines.append("}")
    return "\n".join(lines)


def program_to_dot(program: MTProgram) -> str:
    """Every thread's CFG in one graph, clustered per thread, with the
    communication channels drawn between the producing and consuming
    blocks."""
    lines = ["digraph \"mt_%s\" {" % _escape(program.original.name),
             '  node [shape=box, fontname="monospace", fontsize=8];',
             "  compound=true;"]
    for index, thread in enumerate(program.threads):
        color = _THREAD_COLORS[index % len(_THREAD_COLORS)]
        lines.append("  subgraph cluster_t%d {" % index)
        lines.append('    label="thread %d"; style=filled; color="%s";'
                     % (index, color))
        for block in thread.blocks:
            body = "\\l".join(_escape(format_instruction(i)) for i in block)
            lines.append('    "t%d_%s" [label="%s:\\l%s\\l"];'
                         % (index, block.label, _escape(block.label), body))
        for block in thread.blocks:
            for successor in block.successors():
                lines.append('    "t%d_%s" -> "t%d_%s";'
                             % (index, block.label, index, successor))
        lines.append("  }")
    for channel in program.channels:
        for point in channel.points:
            source = "t%d_%s" % (channel.source_thread, point.block)
            target = "t%d_%s" % (channel.target_thread, point.block)
            lines.append('  "%s" -> "%s" [color="purple", style=bold, '
                         'label="q%d"];' % (source, target, channel.queue))
    lines.append("}")
    return "\n".join(lines)
