"""GREMIO: Global multi-threaded instruction scheduling (MICRO 2007).

*** Reconstruction note *********************************************
The MICRO 2007 text was not available to this reproduction (the supplied
full text was the companion ASPLOS 2008 COCO paper).  This module
reconstructs GREMIO from the titled paper's known shape — hierarchical,
list-scheduling-based global MT scheduling over the loop nest, allowing
cyclic inter-thread dependences, generating code via MTCG — with the
following concrete choices, all flagged in DESIGN.md:

* The scheduling hierarchy is the loop-nest forest.  Each level schedules
  the instructions exclusive to that level plus one *supernode* per inner
  loop.
* Each level's dependence graph (the PDG projected onto the level's items)
  is condensed into SCCs; SCCs are indivisible scheduling units (splitting
  a dependence cycle across cores costs an operand-network round trip per
  iteration, which the cost model never wins on).
* Units are list-scheduled onto ``n`` threads: priority is the classic
  "bottom level" (longest latency-weighted path to a sink), and each unit
  goes to the thread with the earliest estimated finish time, charging the
  operand-network latency on cross-thread dependences.
* A loop supernode is either placed *atomically* on one thread or
  *recursively split* across all threads, whichever the cost model
  estimates faster (split estimate: per-iteration list-schedule makespan x
  iterations; pipeline fill ignored).
**********************************************************************
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.loops import Loop, loop_nest_forest
from ..analysis.pdg import PDG
from ..graphs import condense, topological_sort
from ..interp.profile import EdgeProfile
from ..ir.cfg import Function
from ..machine.config import DEFAULT_CONFIG, MachineConfig
from .base import Partition, Partitioner


class _Item:
    """One schedulable unit at some hierarchy level: either a single
    instruction or a loop supernode.  Weights are in estimated cycles *per
    entry of the level being scheduled*; ``count`` is the unit's execution
    frequency per level entry (used to charge per-execution communication
    overhead on cross-thread dependences)."""

    __slots__ = ("key", "iids", "loop", "weight", "order", "count")

    def __init__(self, key, iids: List[int], loop: Optional[Loop],
                 weight: float, order: Tuple, count: float):
        self.key = key
        self.iids = iids
        self.loop = loop
        self.weight = weight
        self.order = order
        self.count = count


class GremioPartitioner(Partitioner):
    name = "gremio"

    def __init__(self, config: MachineConfig = DEFAULT_CONFIG,
                 split_threshold: float = 1.0,
                 occupancy_factor: float = 1.5,
                 hierarchical: bool = True,
                 region_grouping: bool = False,
                 latency_factor: float = 1.0):
        """``hierarchical=False`` degrades to flat list scheduling over the
        whole region with loops kept atomic only if they are dependence
        cycles (the ablation of experiment GREMIO-E3).

        ``split_threshold`` scales the atomic cost a recursive loop split
        must beat (1.0 = split at estimated parity, favoring parallelism,
        as a latency-oriented list scheduler does).  ``occupancy_factor``
        scales the issue-slot charge of communication instructions — on a
        6-issue core, produces/consumes largely fill spare slots, so the
        full charge overestimates their cost.

        ``region_grouping`` schedules conditionally-executed regions
        (hammock arms and other control-equivalent instruction groups) as
        atomic units.  Instruction granularity (the default) lets the
        forward-flow discipline and occupancy charges do the clustering
        and measures better on the CMP model; the flag remains as an
        ablation (see benchmarks/bench_ablation_hierarchy.py).
        """
        self.config = config
        self.split_threshold = split_threshold
        self.occupancy_factor = occupancy_factor
        self.hierarchical = hierarchical
        self.region_grouping = region_grouping
        # Scales the charged operand-network latency in the EFT model.
        # Values > 1 discourage chains that zig-zag between cores (each
        # crossing adds real latency the steady-state estimate otherwise
        # underweights).
        self.latency_factor = latency_factor

    # -- public API ---------------------------------------------------------

    def partition(self, function: Function, pdg: PDG,
                  profile: EdgeProfile, n_threads: int) -> Partition:
        self._function = function
        self._pdg = pdg
        self._profile = profile
        self._n = max(1, n_threads)
        # Topology-aware operand-network latency per thread pair (identity
        # thread->core assumption — the placement stage may later refine
        # the mapping, but at partition time identity is the estimate):
        # the scalar comm_latency plus the clusters' crossing penalty.
        # On any flat topology every entry is comm_latency * latency_factor,
        # i.e. exactly the legacy scalar model.
        topo = self.config.resolve_topology()
        last_core = topo.n_cores - 1
        self._comm_matrix = [
            [(float(self.config.comm_latency)
              + topo.crossing(min(a, last_core), min(b, last_core)))
             * self.latency_factor
             for b in range(self._n)]
            for a in range(self._n)]
        self._block_of = function.block_of()
        self._position = function.position_of()
        self._by_iid = function.by_iid()
        forest = loop_nest_forest(function)

        assignment: Dict[int, int] = {}
        if self.hierarchical:
            top_blocks = set(b.label for b in function.blocks)
            for loop in forest.top_level:
                top_blocks -= loop.blocks
            entry_weight = max(
                profile.block_weight(function.entry.label), 1.0)
            self._schedule_level(top_blocks, forest.top_level, entry_weight,
                                 assignment)
        else:
            items = [self._instruction_item(instruction.iid, 1.0)
                     for instruction in function.instructions()]
            self._list_schedule(items, assignment, commit=True)

        for instruction in function.instructions():
            assignment.setdefault(instruction.iid, 0)
        return Partition(function, n_threads, assignment)

    # -- item construction ------------------------------------------------------

    def _instruction_weight(self, iid: int, scale: float) -> float:
        instruction = self._by_iid[iid]
        count = max(self._profile.block_weight(self._block_of[iid]), 0.0)
        return self.config.latency_of(instruction) * count * scale

    def _instruction_item(self, iid: int, scale: float) -> _Item:
        count = max(
            self._profile.block_weight(self._block_of[iid]), 0.0) * scale
        return _Item(("i", iid), [iid], None,
                     self._instruction_weight(iid, scale),
                     self._position[iid], count)

    def _loop_item(self, loop: Loop, scale: float) -> _Item:
        iids = [instruction.iid
                for label in sorted(loop.blocks)
                for instruction in self._function.block(label)]
        weight = sum(self._instruction_weight(iid, scale) for iid in iids)
        order = min(self._position[iid] for iid in iids)
        # A loop supernode communicates per loop *entry*, not per iteration.
        entries = 0.0
        preds = self._function.predecessors_map()
        for pred in preds.get(loop.header, ()):
            if pred not in loop.blocks:
                entries += self._profile.edge_weight(pred, loop.header)
        count = max(entries, 1.0) * scale
        return _Item(("loop", loop.header), iids, loop, weight, order, count)

    def _level_items(self, region_blocks: Set[str],
                     child_loops: Sequence[Loop],
                     scale: float,
                     level_loop: Optional[Loop] = None) -> List[_Item]:
        items: List[_Item] = []
        region_groups: Dict[frozenset, List[int]] = {}
        # Control dependences shared by the whole level (the loop's own
        # continuation conditions) do not distinguish regions.
        baseline_deps: frozenset = frozenset()
        if level_loop is not None:
            baseline_deps = frozenset(
                self._pdg.cdg.deps_of(level_loop.header))
        for label in sorted(region_blocks):
            if self.region_grouping:
                deps = frozenset(self._pdg.cdg.deps_of(label)
                                 - baseline_deps)
                deps = frozenset(d for d in deps
                                 if d[0] in region_blocks)
            else:
                deps = frozenset()
            for instruction in self._function.block(label):
                if deps:
                    region_groups.setdefault(deps, []).append(
                        instruction.iid)
                else:
                    items.append(self._instruction_item(instruction.iid,
                                                        scale))
        for deps in sorted(region_groups, key=sorted):
            iids = region_groups[deps]
            weight = math.fsum(self._instruction_weight(iid, scale)
                               for iid in iids)
            count = max(
                max(self._profile.block_weight(self._block_of[iid]), 0.0)
                * scale for iid in iids)
            order = min(self._position[iid] for iid in iids)
            items.append(_Item(("cd", min(iids)), sorted(iids), None,
                               weight, order, count))
        for loop in child_loops:
            items.append(self._loop_item(loop, scale))
        return items

    # -- hierarchical scheduling ---------------------------------------------------

    def _schedule_level(self, region_blocks: Set[str],
                        child_loops: Sequence[Loop], entry_weight: float,
                        assignment: Dict[int, int],
                        level_loop: Optional[Loop] = None) -> float:
        """Schedule one hierarchy level (commits assignments and recurses
        into loops the scheduler decided to split); returns the estimated
        makespan per entry of the level."""
        scale = 1.0 / max(entry_weight, 1e-12)
        items = self._level_items(region_blocks, child_loops, scale,
                                  level_loop)
        makespan, split_loops = self._list_schedule(
            items, assignment, commit=True, scale=scale,
            pipelined=level_loop is not None)
        for loop in child_loops:
            if loop.header in split_loops:
                header_weight = max(
                    self._profile.block_weight(loop.header), 1.0)
                self._schedule_level(loop.exclusive_blocks, loop.children,
                                     header_weight, assignment,
                                     level_loop=loop)
        return makespan

    def _estimate_split(self, loop: Loop, scale: float) -> float:
        """Estimated cycles-per-level-entry if the loop body is scheduled
        across all threads, comparable to the supernode's atomic weight."""
        header_weight = max(self._profile.block_weight(loop.header), 1.0)
        body_scale = 1.0 / header_weight
        items = self._level_items(loop.exclusive_blocks, loop.children,
                                  body_scale, level_loop=loop)
        per_iteration, _ = self._list_schedule(items, assignment={},
                                               commit=False,
                                               scale=body_scale,
                                               pipelined=True)
        # per_iteration is cycles per header execution; the loop executes
        # header_weight times overall; scale converts to per-level-entry.
        return per_iteration * header_weight * scale

    # -- list scheduling of one level ----------------------------------------------

    # Per-dynamic-execution issue-slot overhead when a dependence crosses
    # threads: a communicated value costs a produce + a consume (charged
    # once per distinct (defining instruction, register) — MTCG dedups
    # repeats); a replicated branch costs its condition communication plus
    # the duplicate itself (charged once per branch, however many
    # instructions it controls).
    _DATA_CHANNEL_OVERHEAD = 2.0
    _CONTROL_CHANNEL_OVERHEAD = 3.0

    def _project_arcs(self, items: List[_Item]
                      ) -> Tuple[Dict[object, Set[object]],
                                 Dict[Tuple[object, object], Set[Tuple]]]:
        """Project PDG arcs to item-level adjacency.  The second result
        maps (source item, target item) to the distinct communication
        *channels* the crossing would require: ("d", def iid, register)
        for data, ("c", branch iid) for control replication."""
        from ..analysis.pdg import DepKind
        item_of: Dict[int, object] = {}
        for item in items:
            for iid in item.iids:
                item_of[iid] = item.key
        successors: Dict[object, Set[object]] = {item.key: set()
                                                 for item in items}
        channels: Dict[Tuple[object, object], Set[Tuple]] = {}
        for arc in self._pdg.arcs:
            source = item_of.get(arc.source)
            target = item_of.get(arc.target)
            if source is None or target is None or source == target:
                continue
            successors[source].add(target)
            if arc.kind is DepKind.CONTROL:
                channel = ("c", arc.source)
            else:
                channel = ("d", arc.source, arc.register)
            channels.setdefault((source, target), set()).add(channel)
        # Deterministic adjacency order (set iteration order depends on
        # the hash seed, which would leak into SCC numbering and FP sums).
        ordered = {key: sorted(targets, key=repr)
                   for key, targets in successors.items()}
        return ordered, channels

    def _list_schedule(self, items: List[_Item], assignment: Dict[int, int],
                       commit: bool,
                       scale: float = 1.0,
                       pipelined: bool = False) -> Tuple[float, Set[str]]:
        """Greedy EFT list scheduling onto n threads.

        Returns ``(makespan, split loop headers)``.  When ``commit`` is
        set, thread choices for covered instructions are written into
        ``assignment`` (instructions of split loops are left to the
        recursion).  ``scale`` converts raw profile counts to
        per-level-entry frequencies (for communication-overhead charges).

        ``pipelined`` marks loop-body levels: the body executes many
        iterations, and cross-thread dependences within one iteration are
        pipelineable (dependence cycles were condensed into single units),
        so the operand-network *latency* is a one-time skew, not a
        per-iteration cost — the scheduler then optimizes throughput
        (balance + communication occupancy) rather than latency.  Acyclic
        levels run once, where latency is the real cost.

        Pipelined levels additionally enforce *forward-only* cross-thread
        flow (a unit may only be placed on a thread >= all its producers'
        threads): values zig-zagging between cores would re-couple the
        threads with a round-trip operand latency per iteration, which
        destroys the decoupling the split exists for.
        """
        n = self._n
        # Per-pair operand-network latency (see partition()); in pipelined
        # loop bodies the latency — including any inter-cluster crossing —
        # is a one-time skew rather than a per-iteration cost, so it does
        # not gate the throughput estimate.
        comm = self._comm_matrix if not pipelined else None
        by_key = {item.key: item for item in items}
        successors, arc_channels = self._project_arcs(items)
        components, component_of, dag = condense(
            [item.key for item in items], successors)

        # Aggregate required communication channels to the unit level.
        unit_channels: Dict[Tuple[int, int], Set[Tuple]] = {}
        for (source_key, target_key), channel_set in arc_channels.items():
            source_unit = component_of[source_key]
            target_unit = component_of[target_key]
            if source_unit == target_unit:
                continue
            unit_channels.setdefault(
                (source_unit, target_unit), set()).update(channel_set)

        def channel_cost(channel: Tuple) -> float:
            source_iid = channel[1]
            frequency = max(self._profile.block_weight(
                self._block_of[source_iid]), 0.0) * scale
            factor = (self._CONTROL_CHANNEL_OVERHEAD if channel[0] == "c"
                      else self._DATA_CHANNEL_OVERHEAD)
            return factor * frequency * self.occupancy_factor

        unit_weight = [math.fsum(by_key[key].weight for key in component)
                       for component in components]
        unit_order = [min(by_key[key].order for key in component)
                      for component in components]

        bottom: List[float] = [0.0] * len(components)
        for index in reversed(range(len(components))):
            succ_best = max((bottom[succ] for succ in dag[index]),
                            default=0.0)
            bottom[index] = unit_weight[index] + succ_best

        order = topological_sort(
            range(len(components)), dag,
            priority={i: (-bottom[i], unit_order[i])
                      for i in range(len(components))})

        predecessors: Dict[int, List[int]] = {i: [] for i in dag}
        for source, targets in dag.items():
            for target in targets:
                predecessors[target].append(source)

        thread_ready = [0.0] * n
        finish: Dict[int, float] = {}
        unit_thread: Dict[int, int] = {}
        split_loops: Set[str] = set()
        total_weight = sum(unit_weight)
        scheduled_weight = 0.0
        # Channels already charged, per receiving thread (MTCG communicates
        # each channel once per target thread, however many units use it).
        paid: Set[Tuple[Tuple, int]] = set()

        def pending_channels(index: int, thread: int) -> List[Tuple]:
            required: List[Tuple] = []
            for pred in predecessors[index]:
                if unit_thread.get(pred, thread) == thread:
                    continue
                for channel in unit_channels.get((pred, index), ()):
                    if (channel, thread) not in paid:
                        required.append(channel)
            return required

        for index in order:
            weight = unit_weight[index]
            component = components[index]
            lone_loop = (len(component) == 1
                         and by_key[component[0]].loop is not None)

            # Earliest-finish-time thread choice; cross-thread dependences
            # pay the operand-network latency once plus per-execution
            # communication occupancy (charged once per channel per
            # receiving thread).
            minimum_thread = 0
            if pipelined:
                for pred in predecessors[index]:
                    minimum_thread = max(minimum_thread,
                                         unit_thread.get(pred, 0))

            best_thread, best_finish, best_start = 0, float("inf"), 0.0
            for thread in range(minimum_thread, n):
                start = thread_ready[thread]
                # math.fsum: exact, hence independent of set iteration
                # order (keeps the scheduler deterministic across runs).
                occupancy = math.fsum(
                    channel_cost(c)
                    for c in set(pending_channels(index, thread)))
                if not pipelined:
                    # One-shot level: intra-level precedence and operand
                    # latency gate the start.  (In a pipelined loop body,
                    # iteration i+1 overlaps iteration i, so precedence
                    # within one iteration costs throughput nothing.)
                    for pred in predecessors[index]:
                        arrival = finish.get(pred, 0.0)
                        pred_thread = unit_thread.get(pred, thread)
                        if pred_thread != thread:
                            arrival += comm[pred_thread][thread]
                        start = max(start, arrival)
                candidate = start + weight + occupancy
                if candidate < best_finish:
                    best_thread, best_finish, best_start = (thread,
                                                            candidate, start)

            if lone_loop and self.hierarchical and n > 1 and weight > 0:
                loop = by_key[component[0]].loop
                # Item weights carry the level's scale implicitly; recover
                # it (scale = scaled weight / raw cycles) so the split
                # estimate comes out in the same units.
                level_scale = weight / max(_raw_loop_cycles(self, loop),
                                           1e-12)
                split_cost = self._estimate_split(loop, level_scale)
                # A split occupies every core.  When there is enough other
                # work around to fill the other cores, demand that the
                # split also wins on total core-time; when this loop is
                # essentially the whole remaining program, a latency win
                # (estimated finish) suffices.
                other_work = total_weight - scheduled_weight - weight
                if other_work >= 0.5 * weight:
                    use_split = (split_cost * n
                                 <= weight * self.split_threshold)
                else:
                    split_start = max(max(thread_ready), best_start)
                    use_split = (split_start + split_cost
                                 <= best_finish * self.split_threshold)
                if use_split:
                    start = max(max(thread_ready), best_start)
                    end = start + split_cost
                    thread_ready = [end] * n
                    finish[index] = end
                    # Mark for recursion; any thread may be recorded as the
                    # "home" for dependence estimation purposes.
                    unit_thread[index] = best_thread
                    scheduled_weight += weight
                    if commit:
                        split_loops.add(loop.header)
                    continue

            for channel in pending_channels(index, best_thread):
                paid.add((channel, best_thread))
            thread_ready[best_thread] = best_finish
            finish[index] = best_finish
            unit_thread[index] = best_thread
            scheduled_weight += weight
            if commit:
                for key in component:
                    for iid in by_key[key].iids:
                        assignment[iid] = best_thread

        makespan = max(thread_ready) if thread_ready else 0.0
        return makespan, split_loops


def _raw_loop_cycles(partitioner: GremioPartitioner, loop: Loop) -> float:
    """Unscaled estimated total cycles spent in the loop (profile-weighted
    instruction latencies over all member blocks)."""
    total = 0.0
    for label in sorted(loop.blocks):
        for instruction in partitioner._function.block(label):
            total += partitioner._instruction_weight(instruction.iid, 1.0)
    return total
