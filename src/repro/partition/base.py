"""Thread partitions and the partitioner interface.

A partition assigns every instruction of a function to one of ``n`` threads.
GMT schedulers (DSWP, GREMIO, ...) are *partitioners*: strategies producing
a partition from the PDG; MTCG then turns any partition into correct
multi-threaded code (the "plug different partitioners into the same
framework" structure of Figure 2 of the papers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from ..analysis.pdg import PDG
from ..interp.profile import EdgeProfile
from ..ir.cfg import Function


class PartitionError(Exception):
    pass


class Partition:
    """An assignment of instruction iids to thread ids ``0..n_threads-1``."""

    def __init__(self, function: Function, n_threads: int,
                 assignment: Mapping[int, int]):
        self.function = function
        self.n_threads = n_threads
        self.assignment: Dict[int, int] = dict(assignment)
        self.validate()

    def validate(self) -> None:
        iids = {instruction.iid for instruction in
                self.function.instructions()}
        missing = iids - set(self.assignment)
        if missing:
            raise PartitionError("unassigned instructions: %s"
                                 % sorted(missing)[:10])
        extra = set(self.assignment) - iids
        if extra:
            raise PartitionError("assignment for unknown iids: %s"
                                 % sorted(extra)[:10])
        for iid, thread in self.assignment.items():
            if not 0 <= thread < self.n_threads:
                raise PartitionError("iid %d assigned to invalid thread %d"
                                     % (iid, thread))

    def thread_of(self, iid: int) -> int:
        return self.assignment[iid]

    def instructions_of(self, thread: int) -> List[int]:
        return sorted(iid for iid, t in self.assignment.items()
                      if t == thread)

    def used_threads(self) -> List[int]:
        return sorted(set(self.assignment.values()))

    def counts(self) -> Dict[int, int]:
        result = {thread: 0 for thread in range(self.n_threads)}
        for thread in self.assignment.values():
            result[thread] += 1
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return "<Partition %s over %d threads: %s>" % (
            self.function.name, self.n_threads, self.counts())


class Partitioner:
    """Interface: produce a Partition from a function + PDG + profile."""

    name = "abstract"

    def partition(self, function: Function, pdg: PDG,
                  profile: EdgeProfile, n_threads: int) -> Partition:
        raise NotImplementedError


def single_thread_partition(function: Function,
                            n_threads: int = 1) -> Partition:
    """Everything on thread 0 (the degenerate, always-valid partition)."""
    return Partition(function, max(n_threads, 1),
                     {instruction.iid: 0
                      for instruction in function.instructions()})


def partition_from_threads(function: Function, n_threads: int,
                           thread_sets: Iterable[Iterable[int]]) -> Partition:
    """Build a partition from explicit per-thread iid sets (tests use it)."""
    assignment: Dict[int, int] = {}
    for thread, iids in enumerate(thread_sets):
        for iid in iids:
            if iid in assignment:
                raise PartitionError("iid %d in two threads" % iid)
            assignment[iid] = thread
    return Partition(function, n_threads, assignment)
