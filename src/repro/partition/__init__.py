"""Thread partitioners: the pluggable front half of GMT scheduling."""

from .base import (Partition, PartitionError, Partitioner,
                   partition_from_threads, single_thread_partition)

__all__ = [
    "Partition", "PartitionError", "Partitioner", "partition_from_threads",
    "single_thread_partition",
]
