"""Decoupled Software Pipelining (DSWP) partitioner, after Ottoni et al.
(MICRO 2005).

DSWP builds a pipeline of threads: the PDG is condensed into its strongly
connected components (a dependence cycle can never be split across pipeline
stages), the resulting DAG is traversed in topological order, and SCCs are
greedily packed into ``n`` stages balancing profile-weighted load.  Because
stages are filled in topological order, every cross-thread dependence flows
forward — the defining property of the pipeline.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.pdg import PDG
from ..graphs import condense, topological_sort
from ..interp.profile import EdgeProfile
from ..ir.cfg import Function
from ..machine.config import DEFAULT_CONFIG, MachineConfig
from .base import Partition, Partitioner


class DSWPPartitioner(Partitioner):
    name = "dswp"

    def __init__(self, config: MachineConfig = DEFAULT_CONFIG):
        self.config = config

    def partition(self, function: Function, pdg: PDG,
                  profile: EdgeProfile, n_threads: int) -> Partition:
        by_iid = function.by_iid()
        block_of = function.block_of()
        position = function.position_of()

        successors = pdg.successors_map()
        components, component_of, dag = condense(pdg.nodes, successors)

        def component_weight(index: int) -> float:
            total = 0.0
            for iid in components[index]:
                instruction = by_iid[iid]
                total += (self.config.latency_of(instruction)
                          * max(profile.block_weight(block_of[iid]), 0.0))
            return total

        weights = [component_weight(i) for i in range(len(components))]

        # Topological order with program order as the deterministic
        # tie-break (earliest instruction in the component).
        priority = {index: min(position[iid] for iid in components[index])
                    for index in range(len(components))}
        order = topological_sort(range(len(components)), dag, priority)

        # Topology-aware stage-boundary cost (identity thread->core
        # assumption): when consecutive pipeline stages land in different
        # clusters, every value flowing across the boundary pays the
        # crossing penalty per dynamic execution.  The greedy packer then
        # demands that opening a new stage also amortizes that traffic —
        # the charge is *only* the crossing component, so on any flat
        # topology (crossing 0 everywhere) the packing is bit-identical
        # to the legacy balance-only rule.
        topo = self.config.resolve_topology()
        clustered = topo.n_clusters > 1
        incoming: Dict[int, Dict[int, set]] = {}
        if clustered:
            for arc in pdg.arcs:
                source_comp = component_of[arc.source]
                target_comp = component_of[arc.target]
                if source_comp == target_comp:
                    continue
                incoming.setdefault(target_comp, {}).setdefault(
                    source_comp, set()).add(arc.source)

        def crossing_charge(index: int, stage: int,
                            stage_components: set) -> float:
            """Extra per-execution cycles if ``index`` opens stage+1 while
            its in-stage producers stay behind a cluster boundary."""
            last_core = topo.n_cores - 1
            crossing = topo.crossing(min(stage, last_core),
                                     min(stage + 1, last_core))
            if not crossing:
                return 0.0
            inflow_iids = set()
            for source_comp, iids in incoming.get(index, {}).items():
                if source_comp in stage_components:
                    inflow_iids.update(iids)
            inflow = sum(max(profile.block_weight(block_of[iid]), 0.0)
                         for iid in inflow_iids)
            return crossing * inflow

        total_weight = sum(weights)
        assignment: Dict[int, int] = {}
        stage = 0
        stage_weight = 0.0
        stage_components: set = set()
        remaining_weight = total_weight
        remaining_stages = n_threads
        for rank, index in enumerate(order):
            target = (remaining_weight / remaining_stages
                      if remaining_stages else float("inf"))
            if clustered:
                target += crossing_charge(index, stage, stage_components)
            components_left = len(order) - rank
            must_not_advance = components_left <= (n_threads - stage - 1)
            if (stage_weight >= target and stage < n_threads - 1
                    and not must_not_advance and stage_weight > 0):
                remaining_weight -= stage_weight
                remaining_stages -= 1
                stage += 1
                stage_weight = 0.0
                stage_components = set()
            for iid in components[index]:
                assignment[iid] = stage
            stage_components.add(index)
            stage_weight += weights[index]
        return Partition(function, n_threads, assignment)
