"""Thread-aware data-flow analyses (companion paper, Section 3).

Both analyses operate on the single original CFG but take the assignment of
instructions to threads into account:

* **liveness w.r.t. a target thread** — the live range of a register
  considering only the uses that thread will contain (its own instructions
  plus its relevant branches);
* **safety w.r.t. a source thread** (Property 3 / equations (1)-(2)) — the
  points where the source thread is guaranteed to hold the *latest* value
  of a register, i.e. where communicating it cannot deliver a stale value.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..ir.cfg import Function
from ..partition.base import Partition


class RegisterRange:
    """Per-point booleans for one register: before/after each instruction
    and at each block entry."""

    def __init__(self, before: Dict[int, bool], after: Dict[int, bool],
                 at_entry: Dict[str, bool]):
        self.before = before
        self.after = after
        self.at_entry = at_entry


def live_range_wrt_thread(function: Function, register: str,
                          use_iids: Set[int]) -> RegisterRange:
    """Backward single-register liveness with the given use sites only.
    Any definition of the register (by any thread) kills it."""
    live_out_block: Dict[str, bool] = {b.label: False
                                       for b in function.blocks}
    live_in_block: Dict[str, bool] = dict(live_out_block)

    def block_transfer(label: str, live: bool) -> bool:
        for instruction in reversed(function.block(label).instructions):
            if register in instruction.defined_registers():
                live = False
            if instruction.iid in use_iids:
                live = True
        return live

    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            out = any(live_in_block[succ] for succ in block.successors())
            in_ = block_transfer(block.label, out)
            if (out != live_out_block[block.label]
                    or in_ != live_in_block[block.label]):
                live_out_block[block.label] = out
                live_in_block[block.label] = in_
                changed = True

    before: Dict[int, bool] = {}
    after: Dict[int, bool] = {}
    for block in function.blocks:
        live = live_out_block[block.label]
        for instruction in reversed(block.instructions):
            after[instruction.iid] = live
            if register in instruction.defined_registers():
                live = False
            if instruction.iid in use_iids:
                live = True
            before[instruction.iid] = live
    return RegisterRange(before, after,
                         {label: live_in_block[label]
                          for label in live_in_block})


def safe_range_wrt_thread(function: Function, register: str,
                          partition: Partition, source_thread: int,
                          source_branches: Iterable[str]) -> RegisterRange:
    """The SAFE analysis, equations (1)-(2) of the companion paper,
    specialized to one register and one source thread.

    ``source_branches`` are the branch blocks relevant to the source thread
    (their branches count as the source's uses even when assigned
    elsewhere, since the source thread replicates them).
    """
    branch_blocks = set(source_branches)
    params = set(function.params)

    def in_source(instruction, block_label: str) -> bool:
        if partition.thread_of(instruction.iid) == source_thread:
            return True
        return instruction.is_branch() and block_label in branch_blocks

    safe_in_block: Dict[str, bool] = {b.label: False
                                      for b in function.blocks}
    safe_out_block: Dict[str, bool] = dict(safe_in_block)
    preds = function.predecessors_map()
    entry = function.entry.label

    def block_transfer(label: str, safe: bool) -> bool:
        for instruction in function.block(label).instructions:
            defines = register in instruction.defined_registers()
            uses = register in instruction.used_registers()
            if in_source(instruction, label) and (defines or uses):
                safe = True
            elif defines:
                safe = False
        return safe

    # Parameters start out held by every thread.
    entry_fact = register in params

    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            if block.label == entry:
                in_ = entry_fact
            else:
                pred_list = preds[block.label]
                in_ = bool(pred_list) and all(safe_out_block[p]
                                              for p in pred_list)
            out = block_transfer(block.label, in_)
            if (in_ != safe_in_block[block.label]
                    or out != safe_out_block[block.label]):
                safe_in_block[block.label] = in_
                safe_out_block[block.label] = out
                changed = True

    before: Dict[int, bool] = {}
    after: Dict[int, bool] = {}
    for block in function.blocks:
        safe = safe_in_block[block.label]
        for instruction in block:
            before[instruction.iid] = safe
            defines = register in instruction.defined_registers()
            uses = register in instruction.used_registers()
            if in_source(instruction, block.label) and (defines or uses):
                safe = True
            elif defines:
                safe = False
            after[instruction.iid] = safe
    return RegisterRange(before, after, dict(safe_in_block))
