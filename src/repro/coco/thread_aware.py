"""Thread-aware data-flow analyses (companion paper, Section 3).

Both analyses operate on the single original CFG but take the assignment of
instructions to threads into account:

* **liveness w.r.t. a target thread** — the live range of a register
  considering only the uses that thread will contain (its own instructions
  plus its relevant branches);
* **safety w.r.t. a source thread** (Property 3 / equations (1)-(2)) — the
  points where the source thread is guaranteed to hold the *latest* value
  of a register, i.e. where communicating it cannot deliver a stale value.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..ir.cfg import Function
from ..partition.base import Partition


class RegisterRange:
    """Per-point booleans for one register: before/after each instruction
    and at each block entry."""

    def __init__(self, before: Dict[int, bool], after: Dict[int, bool],
                 at_entry: Dict[str, bool]):
        self.before = before
        self.after = after
        self.at_entry = at_entry


def live_range_wrt_thread(function: Function, register: str,
                          use_iids: Set[int]) -> RegisterRange:
    """Backward single-register liveness with the given use sites only.
    Any definition of the register (by any thread) kills it."""
    live_out_block: Dict[str, bool] = {b.label: False
                                       for b in function.blocks}
    live_in_block: Dict[str, bool] = dict(live_out_block)

    # One scan per block computes per-instruction events (+1: this use
    # site makes the register live, -1: a definition kills it, 0:
    # neutral; a defining use site nets +1 since in the backward scan the
    # use wins) plus the block transfer summary.  Walking backwards, the
    # block's live-in is fixed by its first event in program order —
    # independent of live-out — so the transfer is either a constant or
    # the identity.
    block_events: Dict[str, list] = {}
    transfer: Dict[str, tuple] = {}  # label -> (has_event, value)
    for block in function.blocks:
        events = []
        for instruction in block.instructions:
            if instruction.iid in use_iids:
                events.append(1)
            elif register in instruction.defined_registers():
                events.append(-1)
            else:
                events.append(0)
        block_events[block.label] = events
        summary = (False, False)
        for event in events:
            if event:
                summary = (True, event > 0)
                break
        transfer[block.label] = summary

    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            out = any(live_in_block[succ] for succ in block.successors())
            has_event, value = transfer[block.label]
            in_ = value if has_event else out
            if (out != live_out_block[block.label]
                    or in_ != live_in_block[block.label]):
                live_out_block[block.label] = out
                live_in_block[block.label] = in_
                changed = True

    before: Dict[int, bool] = {}
    after: Dict[int, bool] = {}
    for block in function.blocks:
        live = live_out_block[block.label]
        events = block_events[block.label]
        instructions = block.instructions
        for position in range(len(instructions) - 1, -1, -1):
            iid = instructions[position].iid
            after[iid] = live
            event = events[position]
            if event:
                live = event > 0
            before[iid] = live
    return RegisterRange(before, after,
                         {label: live_in_block[label]
                          for label in live_in_block})


def safe_range_wrt_thread(function: Function, register: str,
                          partition: Partition, source_thread: int,
                          source_branches: Iterable[str]) -> RegisterRange:
    """The SAFE analysis, equations (1)-(2) of the companion paper,
    specialized to one register and one source thread.

    ``source_branches`` are the branch blocks relevant to the source thread
    (their branches count as the source's uses even when assigned
    elsewhere, since the source thread replicates them).
    """
    branch_blocks = set(source_branches)
    params = set(function.params)

    def in_source(instruction, block_label: str) -> bool:
        if partition.thread_of(instruction.iid) == source_thread:
            return True
        return instruction.is_branch() and block_label in branch_blocks

    safe_in_block: Dict[str, bool] = {b.label: False
                                      for b in function.blocks}
    safe_out_block: Dict[str, bool] = dict(safe_in_block)
    preds = function.predecessors_map()
    entry = function.entry.label

    # Parameters start out held by every thread.
    entry_fact = register in params

    # As in liveness: one scan per block computes per-instruction events
    # (+1: a source-thread def/use makes the register safe, -1: a foreign
    # definition makes it stale, 0: neutral) and the transfer summary —
    # the block's safe-out is fixed by its last event in program order,
    # or equals safe-in when the block never touches the register.
    block_events: Dict[str, list] = {}
    transfer: Dict[str, tuple] = {}  # label -> (has_event, value)
    for block in function.blocks:
        events = []
        for instruction in block.instructions:
            defines = register in instruction.defined_registers()
            uses = register in instruction.used_registers()
            if (defines or uses) and in_source(instruction, block.label):
                events.append(1)
            elif defines:
                events.append(-1)
            else:
                events.append(0)
        block_events[block.label] = events
        summary = (False, False)
        for event in reversed(events):
            if event:
                summary = (True, event > 0)
                break
        transfer[block.label] = summary

    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            if block.label == entry:
                in_ = entry_fact
            else:
                pred_list = preds[block.label]
                in_ = bool(pred_list) and all(safe_out_block[p]
                                              for p in pred_list)
            has_event, value = transfer[block.label]
            out = value if has_event else in_
            if (in_ != safe_in_block[block.label]
                    or out != safe_out_block[block.label]):
                safe_in_block[block.label] = in_
                safe_out_block[block.label] = out
                changed = True

    before: Dict[int, bool] = {}
    after: Dict[int, bool] = {}
    for block in function.blocks:
        safe = safe_in_block[block.label]
        events = block_events[block.label]
        for position, instruction in enumerate(block.instructions):
            before[instruction.iid] = safe
            event = events[position]
            if event:
                safe = event > 0
            after[instruction.iid] = safe
    return RegisterRange(before, after, dict(safe_in_block))
