"""The COCO driver (companion paper, Algorithm 2).

Iterates to a fixed point: optimize the communication placement for every
pair of threads connected in the thread graph (each register separately by
exact min-cut; all memory dependences together by the successive-pair
heuristic), update the relevant-branch sets that the placements imply, and
repeat until the dependences' insertion points converge.  The result is a
set of data channels (with optimized points) plus the set of duplicated
branches whose condition operand is *covered* by a register channel and
therefore needs no separate condition communication — these plug straight
into :func:`repro.mtcg.generate`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.pdg import PDG, DepKind
from ..graphs.mincut import (InfiniteCutError, min_cut, multi_pair_min_cut)
from ..interp.profile import EdgeProfile
from ..ir.cfg import Function
from ..mtcg.channels import CommChannel, Point
from ..mtcg.relevant import compute_relevance
from ..partition.base import Partition
from .flowgraph import (GfContext, S_NODE, T_NODE, build_memory_flow_graph,
                        build_register_flow_graph, instr_node)


class CocoResult:
    """Optimized data channels + covered condition operands + statistics."""

    def __init__(self, data_channels: List[CommChannel],
                 condition_covered: Set[Tuple[str, int]],
                 iterations: int,
                 default_cost: float, optimized_cost: float):
        self.data_channels = data_channels
        self.condition_covered = condition_covered
        self.iterations = iterations
        self.default_cost = default_cost
        self.optimized_cost = optimized_cost

    def __repr__(self) -> str:  # pragma: no cover
        return "<CocoResult %d channels, cost %.1f -> %.1f>" % (
            len(self.data_channels), self.default_cost, self.optimized_cost)


def optimize(function: Function, pdg: PDG, partition: Partition,
             profile: EdgeProfile, max_iterations: int = 10) -> CocoResult:
    context = GfContext(function, profile, pdg.cdg)
    block_of = function.block_of()
    by_iid = function.by_iid()
    n = partition.n_threads

    # Initial relevant branches: what any placement implies regardless —
    # branches assigned to each thread (rule 1 + closure) and branches with
    # cross-thread control arcs (they will be duplicated no matter where
    # data communication lands).
    relevance = compute_relevance(function, pdg, partition, [])
    relevant: Dict[int, Set[str]] = {
        t: set(relevance.relevant_branches[t]) for t in range(n)}

    previous_signature: Optional[Tuple] = None
    channels: List[CommChannel] = []
    iterations = 0
    default_cost = _default_placement_cost(function, pdg, partition,
                                           profile, block_of)

    for iterations in range(1, max_iterations + 1):
        channels = _place_all(function, pdg, partition, profile, context,
                              relevant, block_of, by_iid)
        signature = tuple(
            (c.kind.value, c.source_thread, c.target_thread, c.register,
             tuple(sorted(c.points))) for c in channels)
        # Update relevant branches implied by the new points (monotone:
        # union with the running sets).
        relevance = compute_relevance(function, pdg, partition, channels)
        grown = False
        for t in range(n):
            merged = relevant[t] | relevance.relevant_branches[t]
            if merged != relevant[t]:
                relevant[t] = merged
                grown = True
        if signature == previous_signature and not grown:
            break
        previous_signature = signature

    covered: Set[Tuple[str, int]] = set()
    for t in range(n):
        for label in sorted(relevant[t]):
            branch = function.block(label).terminator
            if branch is not None and branch.is_branch() \
                    and partition.thread_of(branch.iid) != t:
                covered.add((label, t))

    optimized_cost = sum(profile.block_weight(point.block)
                         for channel in channels
                         for point in channel.points)
    return CocoResult(channels, covered, iterations, default_cost,
                      optimized_cost)


def _place_all(function: Function, pdg: PDG, partition: Partition,
               profile: EdgeProfile, context: GfContext,
               relevant: Dict[int, Set[str]], block_of: Dict[int, str],
               by_iid) -> List[CommChannel]:
    """One pass of Algorithm 2's inner loop: place every pair's channels."""
    register_groups: Dict[Tuple[int, int, str], Dict[str, Set[int]]] = {}
    memory_pairs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    group_arcs: Dict[Tuple[int, int, str], List] = {}

    def group_for(source_thread: int, target_thread: int, register: str):
        key = (source_thread, target_thread, register)
        if key not in register_groups:
            register_groups[key] = {"defs": set(), "uses": set()}
            group_arcs[key] = []
        return register_groups[key]

    for arc in pdg.arcs:
        source_thread = partition.thread_of(arc.source)
        target_thread = partition.thread_of(arc.target)
        if source_thread == target_thread:
            continue
        if arc.kind is DepKind.REGISTER:
            group = group_for(source_thread, target_thread, arc.register)
            group["defs"].add(arc.source)
            group["uses"].add(arc.target)
            group_arcs[(source_thread, target_thread,
                        arc.register)].append(arc)
        elif arc.kind is DepKind.MEMORY:
            memory_pairs.setdefault(
                (source_thread, target_thread), []).append(
                    (arc.source, arc.target))

    # Pseudo-uses: a branch relevant to thread t (and assigned elsewhere)
    # is treated as t's use of its condition register, so the operand's
    # communication is optimized along with data communication.
    for t, branch_blocks in relevant.items():
        for label in sorted(branch_blocks):
            branch = function.block(label).terminator
            if branch is None or not branch.is_branch():
                continue
            if partition.thread_of(branch.iid) == t:
                continue
            register = branch.srcs[0]
            for arc in pdg.in_arcs(branch.iid):
                if arc.kind is not DepKind.REGISTER \
                        or arc.register != register:
                    continue
                def_thread = partition.thread_of(arc.source)
                if def_thread == t:
                    continue
                group = group_for(def_thread, t, register)
                group["defs"].add(arc.source)
                group["uses"].add(branch.iid)

    # Process thread pairs in (quasi-)topological order of the thread
    # graph, updating the target's relevant branches after each pair —
    # Algorithm 2's inner loop structure, which reduces the number of
    # fixed-point iterations when the thread graph is acyclic (DSWP).
    pair_set = ({(s, t) for (s, t, _register) in register_groups}
                | set(memory_pairs))
    pair_order = _thread_pair_order(pair_set, partition.n_threads)

    def note_new_relevance(target_thread: int, points) -> None:
        for point in points:
            for controller in context.controllers(point.block):
                _add_branch_with_controllers(context, relevant,
                                             target_thread, controller)

    channels: List[CommChannel] = []
    for (source_thread, target_thread) in pair_order:
        for key in sorted(k for k in register_groups
                          if k[0] == source_thread
                          and k[1] == target_thread):
            register = key[2]
            group = register_groups[key]
            graph = build_register_flow_graph(
                context, partition, register, source_thread, target_thread,
                group["defs"], group["uses"], relevant)
            try:
                cut = min_cut(graph, S_NODE, T_NODE)
            except InfiniteCutError:
                # Should not happen (the default placement is a finite
                # cut); fall back to at-definition placement.
                cut = None
            if cut is None:
                points = sorted({Point(block_of[d],
                                       function.position_of()[d][1] + 1)
                                 for d in group["defs"]})
            else:
                if not cut.cut_arcs:
                    continue  # defs never reach uses: nothing needed
                points = sorted({context.arc_to_point(arc)
                                 for arc in cut.cut_arcs})
            note_new_relevance(target_thread, points)
            channels.append(CommChannel(
                DepKind.REGISTER, source_thread, target_thread, register,
                list(points), group_arcs.get(key, []),
                source_iid=min(group["defs"])))

        if (source_thread, target_thread) in memory_pairs:
            pairs = memory_pairs[(source_thread, target_thread)]
            graph = build_memory_flow_graph(context, partition,
                                            source_thread, target_thread,
                                            relevant)
            node_pairs = [(instr_node(a), instr_node(b))
                          for a, b in pairs]
            result = multi_pair_min_cut(graph, node_pairs)
            if not result.cut_arcs:
                continue
            points = sorted({context.arc_to_point(arc)
                             for arc in result.cut_arcs})
            note_new_relevance(target_thread, points)
            channels.append(CommChannel(
                DepKind.MEMORY, source_thread, target_thread, None,
                list(points), [], source_iid=min(a for a, _ in pairs)))
    return channels


def _add_branch_with_controllers(context: GfContext,
                                 relevant: Dict[int, Set[str]],
                                 thread: int, branch_block: str) -> None:
    if branch_block in relevant.setdefault(thread, set()):
        return
    relevant[thread].add(branch_block)
    for controller in context.controllers(branch_block):
        _add_branch_with_controllers(context, relevant, thread, controller)


def _thread_pair_order(pairs: Set[Tuple[int, int]],
                       n_threads: int) -> List[Tuple[int, int]]:
    """Order pairs by a topological order of the thread graph when it is
    acyclic (pipelines); otherwise fall back to sorted order."""
    from ..graphs import CycleError, topological_sort
    successors: Dict[int, List[int]] = {t: [] for t in range(n_threads)}
    for source, target in sorted(pairs):
        successors[source].append(target)
    try:
        order = topological_sort(range(n_threads), successors)
        rank = {thread: index for index, thread in enumerate(order)}
        return sorted(pairs, key=lambda pair: (rank[pair[0]],
                                               rank[pair[1]]))
    except CycleError:
        return sorted(pairs)


def _default_placement_cost(function: Function, pdg: PDG,
                            partition: Partition, profile: EdgeProfile,
                            block_of: Dict[int, str]) -> float:
    """Profile-weighted cost of the baseline at-the-source placement, for
    reporting the static improvement."""
    seen: Set[Tuple] = set()
    cost = 0.0
    for arc in pdg.arcs:
        source_thread = partition.thread_of(arc.source)
        target_thread = partition.thread_of(arc.target)
        if source_thread == target_thread \
                or arc.kind is DepKind.CONTROL:
            continue
        key = (arc.kind.value, arc.source, arc.register, target_thread)
        if key in seen:
            continue
        seen.add(key)
        cost += profile.block_weight(block_of[arc.source])
    return cost
