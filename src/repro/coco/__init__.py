"""COCO: compiler communication optimization for MTCG (companion
ASPLOS 2008 paper; an extension over the titled MICRO 2007 GREMIO paper —
see DESIGN.md for provenance)."""

from .driver import CocoResult, optimize
from .flowgraph import (GfContext, S_NODE, T_NODE, build_memory_flow_graph,
                        build_register_flow_graph, entry_node, instr_node)
from .thread_aware import (RegisterRange, live_range_wrt_thread,
                           safe_range_wrt_thread)

__all__ = [
    "CocoResult", "optimize", "GfContext", "S_NODE", "T_NODE",
    "build_memory_flow_graph", "build_register_flow_graph", "entry_node",
    "instr_node", "RegisterRange", "live_range_wrt_thread",
    "safe_range_wrt_thread",
]
