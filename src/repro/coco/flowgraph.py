"""Construction of the min-cut flow graphs ``G_f`` (Sections 3.1.1-3.1.3).

Nodes are program points at instruction granularity: ``("i", iid)`` for an
instruction, ``("e", label)`` for a basic-block entry, plus the special
``S``/``T`` nodes for the register problem.  An arc corresponds to the
program point just before its head; cutting it means communicating there.

Arc costs are profile weights (the dynamic number of communications that
placement would execute), plus:

* **infinity** where placement would violate Safety (Property 3) or place
  communication at a point irrelevant to the source thread (Property 2);
* **control-flow penalties** (Section 3.1.2): the weight of every branch
  that is currently irrelevant to the target thread but would have to be
  replicated there if communication were placed on the arc.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..analysis.control_dependence import ControlDependenceGraph
from ..graphs.mincut import INFINITY, FlowGraph
from ..interp.profile import EdgeProfile
from ..ir.cfg import Function
from ..mtcg.channels import Point
from ..partition.base import Partition
from .thread_aware import live_range_wrt_thread, safe_range_wrt_thread

S_NODE = "S"
T_NODE = "T"


def instr_node(iid: int) -> Tuple[str, int]:
    return ("i", iid)


def entry_node(label: str) -> Tuple[str, str]:
    return ("e", label)


class GfContext:
    """Shared machinery for building flow graphs over one function."""

    def __init__(self, function: Function, profile: EdgeProfile,
                 cdg: ControlDependenceGraph):
        self.function = function
        self.profile = profile
        self.cdg = cdg
        self.block_of = function.block_of()
        self.position = function.position_of()
        self._controllers: Dict[str, Set[str]] = {}
        self._live_cache: Dict[Tuple, object] = {}
        self._safe_cache: Dict[Tuple, object] = {}
        self._safe_pins: list = []

    def live_range(self, register: str, use_iids: Set[int]):
        """Memoized :func:`live_range_wrt_thread` — the placement loop
        rebuilds the same register graphs across fixpoint iterations, and
        the analysis is a pure function of (register, use sites)."""
        key = (register, frozenset(use_iids))
        result = self._live_cache.get(key)
        if result is None:
            result = live_range_wrt_thread(self.function, register,
                                           use_iids)
            self._live_cache[key] = result
        return result

    def safe_range(self, partition: Partition, register: str,
                   source_thread: int, source_branches: Set[str]):
        """Memoized :func:`safe_range_wrt_thread` (pure function of its
        arguments; the partition is pinned so its id stays unique for
        the cache's lifetime)."""
        key = (id(partition), register, source_thread,
               frozenset(source_branches))
        result = self._safe_cache.get(key)
        if result is None:
            result = safe_range_wrt_thread(self.function, register,
                                           partition, source_thread,
                                           source_branches)
            self._safe_cache[key] = result
            self._safe_pins.append(partition)
        return result

    def controllers(self, label: str) -> Set[str]:
        result = self._controllers.get(label)
        if result is None:
            result = self.cdg.transitive_controlling_branches(label)
            self._controllers[label] = result
        return result

    def point_relevant_to(self, label: str,
                          branches: Set[str]) -> bool:
        return self.controllers(label) <= branches

    def control_penalty(self, label: str,
                        target_branches: Set[str]) -> float:
        """Weight of branches that would become relevant to the target
        thread if communication were placed in block ``label``."""
        penalty = 0.0
        for branch_block in self.controllers(label):
            if branch_block not in target_branches:
                penalty += self.profile.block_weight(branch_block)
        return penalty

    def arc_to_point(self, arc: Tuple) -> Point:
        """Map a cut arc to the insertion point it denotes."""
        u, v = arc
        if v[0] == "i":
            iid = v[1]
            return Point(self.block_of[iid], self.position[iid][1])
        if v[0] == "e":
            target_label = v[1]
            if u[0] == "i":
                u_label = self.block_of[u[1]]
                successors = set(
                    self.function.block(u_label).successors())
                if len(successors) == 1:
                    term_index = len(
                        self.function.block(u_label).instructions) - 1
                    return Point(u_label, term_index)
            return Point(target_label, 0)
        raise ValueError("cut arc with non-program head: %r" % (arc,))


def build_register_flow_graph(
        context: GfContext, partition: Partition, register: str,
        source_thread: int, target_thread: int,
        def_iids: Iterable[int], use_iids: Set[int],
        relevant_branches: Dict[int, Set[str]]) -> FlowGraph:
    """The register G_f of Section 3.1.1 with the control-flow penalties of
    Section 3.1.2."""
    function = context.function
    profile = context.profile
    live = context.live_range(register, use_iids)
    safe = context.safe_range(
        partition, register, source_thread,
        relevant_branches.get(source_thread, set()))
    source_branches = relevant_branches.get(source_thread, set())
    target_branches = relevant_branches.get(target_thread, set())
    def_set = set(def_iids)

    included: Dict[int, bool] = {}
    for instruction in function.instructions():
        iid = instruction.iid
        included[iid] = (live.before.get(iid, False)
                         or live.after.get(iid, False)
                         or iid in def_set)

    graph = FlowGraph()
    graph.add_node(S_NODE)
    graph.add_node(T_NODE)

    def cost_for(label: str, before_iid: Optional[int],
                 safe_here: bool, base: float) -> float:
        if not safe_here:
            return INFINITY
        if not context.point_relevant_to(label, source_branches):
            return INFINITY
        return base + context.control_penalty(label, target_branches)

    last_node: Dict[str, Optional[Tuple]] = {}
    for block in function.blocks:
        label = block.label
        entry_included = live.at_entry.get(label, False)
        previous = entry_node(label) if entry_included else None
        if entry_included:
            graph.add_node(previous)
        for instruction in block:
            iid = instruction.iid
            if not included.get(iid, False):
                previous = None
                continue
            node = instr_node(iid)
            graph.add_node(node)
            if previous is not None:
                graph.add_arc(previous, node,
                              cost_for(label, iid,
                                       safe.before.get(iid, False),
                                       profile.block_weight(label)))
            previous = node
        last_node[label] = previous

    # Cross-block arcs: terminator node -> successor entry node.
    for block in function.blocks:
        tail = last_node.get(block.label)
        if tail is None or tail[0] != "i":
            continue
        terminator = block.terminator
        if terminator is None or tail[1] != terminator.iid:
            continue
        for successor in block.successors():
            if not live.at_entry.get(successor, False):
                continue
            head = entry_node(successor)
            if head not in graph:
                continue
            # The placement block of an edge cut: the tail block when it
            # has a unique successor, else the (unique-predecessor) head.
            successors = set(block.successors())
            placement = (block.label if len(successors) == 1
                         else successor)
            cost = cost_for(placement, None,
                            safe.after.get(terminator.iid, False),
                            profile.edge_weight(block.label, successor))
            graph.add_arc(tail, head, cost)

    for def_iid in sorted(def_set):
        node = instr_node(def_iid)
        if node in graph:
            graph.add_arc(S_NODE, node, INFINITY)
    for use_iid in sorted(use_iids):
        node = instr_node(use_iid)
        if node in graph:
            graph.add_arc(node, T_NODE, INFINITY)
    return graph


def build_memory_flow_graph(
        context: GfContext, partition: Partition, source_thread: int,
        target_thread: int,
        relevant_branches: Dict[int, Set[str]]) -> FlowGraph:
    """The memory G_f of Section 3.1.3: the whole region, no safety, and
    source/sink arcs cuttable (sources and sinks are real instructions)."""
    function = context.function
    profile = context.profile
    source_branches = relevant_branches.get(source_thread, set())
    target_branches = relevant_branches.get(target_thread, set())

    def cost_for(label: str, base: float) -> float:
        if not context.point_relevant_to(label, source_branches):
            return INFINITY
        return base + context.control_penalty(label, target_branches)

    graph = FlowGraph()
    last_node: Dict[str, Tuple] = {}
    for block in function.blocks:
        label = block.label
        previous = entry_node(label)
        graph.add_node(previous)
        for instruction in block:
            node = instr_node(instruction.iid)
            graph.add_node(node)
            graph.add_arc(previous, node,
                          cost_for(label, profile.block_weight(label)))
            previous = node
        last_node[label] = previous

    for block in function.blocks:
        tail = last_node[block.label]
        for successor in block.successors():
            successors = set(block.successors())
            placement = (block.label if len(successors) == 1
                         else successor)
            cost = cost_for(placement,
                            profile.edge_weight(block.label, successor))
            graph.add_arc(tail, entry_node(successor), cost)
    return graph
