"""Leaderboard serialization: schema-versioned JSON plus a markdown
summary.

Byte-determinism is the contract here (CI diffs two same-seed runs):
``json.dumps(sort_keys=True, indent=2)`` over data that contains no
wall-clock values, no set iteration order, and no environment paths.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..api import TUNE_SCHEMA_VERSION, TuneResult


def _dumps(document: Dict[str, object]) -> str:
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def result_json(result: TuneResult) -> str:
    """The whole run as one canonical JSON document."""
    return _dumps(result.as_dict())


def workload_leaderboard(result: TuneResult,
                         workload: str) -> Dict[str, object]:
    """The per-workload leaderboard document."""
    return {
        "schema_version": TUNE_SCHEMA_VERSION,
        "workload": workload,
        "request": result.request.as_dict(),
        "entries": result.leaderboards.get(workload, []),
        "best": result.best.get(workload),
    }


def markdown_summary(result: TuneResult) -> str:
    """A reviewer-facing digest: per workload, the winner against every
    seeded baseline."""
    request = result.request
    lines = [
        "# repro tune summary",
        "",
        "- strategy: `%s`, budget: %d per workload, seed: %d"
        % (request.strategy, request.budget, request.seed),
        "- scale: `%s`, threads: %d, backend: `%s`"
        % (request.scale, request.n_threads, request.backend),
        "- candidates evaluated: %d" % result.evaluated,
        "",
        "| workload | best source | best cycles | vs gremio | vs dswp "
        "| critical path |",
        "|---|---|---|---|---|---|",
    ]
    for workload in request.workloads:
        best = result.best.get(workload)
        if best is None:
            continue
        improvement = best.get("improvement_pct", {})

        def _pct(label: str) -> str:
            value = improvement.get(label)
            return "%+.2f%%" % value if value is not None else "-"

        critical = best.get("critical_path_cycles")
        lines.append(
            "| %s | %s | %.0f | %s | %s | %s |"
            % (workload, best["source"], best["metrics"]["mt_cycles"],
               _pct("gremio"), _pct("dswp"),
               "%.0f" % critical if critical is not None else "-"))
    lines += [
        "",
        "Winning configurations (non-default knobs only):",
        "",
    ]
    for workload in request.workloads:
        best = result.best.get(workload)
        if best is None:
            continue
        knobs = ["technique=%s" % best["technique"]]
        if best["coco"]:
            knobs.append("coco")
        if best["placer"] != "identity":
            knobs.append("placer=%s" % best["placer"])
        if best["topology"] is not None:
            knobs.append("topology=%s" % best["topology"])
        knobs += ["%s=%r" % (name, value)
                  for name, value in best["overrides"]]
        lines.append("- **%s**: %s" % (workload, ", ".join(knobs)))
    return "\n".join(lines) + "\n"


def write_outputs(result: TuneResult, out_dir: str) -> List[str]:
    """Write the canonical artifacts into ``out_dir``:
    ``tune_result.json`` (everything), one
    ``leaderboard_<workload>.json`` per workload, and
    ``tune_summary.md``.  Returns the paths written."""
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []

    def _write(name: str, text: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as handle:
            handle.write(text)
        written.append(path)

    _write("tune_result.json", result_json(result))
    for workload in result.request.workloads:
        _write("leaderboard_%s.json" % workload,
               _dumps(workload_leaderboard(result, workload)))
    _write("tune_summary.md", markdown_summary(result))
    return written
