"""``repro.tune`` — search-based auto-tuning over the scheduling knobs.

The first subsystem that *drives* the evaluation stack in a closed loop:
a seeded, deterministic search (`grid`/`random`/`greedy`, see
:mod:`repro.tune.strategies`) over the declared knob space
(:data:`repro.tune.space.DEFAULT_SPACE` — partitioning technique and
its cost-model thresholds, COCO, placer, topology preset, and selected
machine-configuration fields), scoring candidates by total MT cycles
through the batched :func:`repro.api.evaluate_many` path with traced
critical-path length as the tie-breaker.

Entry points: :func:`repro.api.tune` (typed), ``python -m repro tune``
(CLI).  Leaderboard serialization lives in
:mod:`repro.tune.leaderboard`.
"""

from .driver import GENERATION, run_tune
from .leaderboard import markdown_summary, result_json, write_outputs
from .space import DEFAULT_SPACE, CanonicalCandidate, Knob, KnobSpace
from .strategies import make_strategy, strategy_names

__all__ = [
    "run_tune", "GENERATION",
    "DEFAULT_SPACE", "Knob", "KnobSpace", "CanonicalCandidate",
    "make_strategy", "strategy_names",
    "result_json", "markdown_summary", "write_outputs",
]
