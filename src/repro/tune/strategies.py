"""Pluggable search strategies for ``repro tune``.

Strategies are ask/tell: the driver asks for a batch of *unseen*
candidate assignments (:meth:`Strategy.propose`), evaluates them, and
tells the scores back (:meth:`Strategy.observe`).  All randomness comes
from the seeded :class:`random.Random` the driver injects, and batch
sizes are fixed by the driver independently of ``--jobs``, so a given
``(seed, budget)`` always explores the same candidates in the same
order.

Every strategy falls back to deterministic grid enumeration when its
own proposal mechanism runs out of fresh candidates, so the budget is
honored exactly until the canonical space is exhausted.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from .space import KnobSpace

#: Proposal attempts per requested candidate before a sampling strategy
#: concedes and falls back to grid enumeration.
_ATTEMPTS_PER_SLOT = 64


class Strategy:
    """Base: shared dedupe bookkeeping and the grid fallback."""

    name = "base"

    def __init__(self, space: KnobSpace, rng):
        self.space = space
        self.rng = rng
        self._grid: Optional[Iterator[Dict[str, object]]] = None

    # -- the ask/tell protocol --------------------------------------------

    def propose(self, count: int,
                seen: Set[str]) -> List[Dict[str, object]]:
        """Up to ``count`` assignments whose canonical keys are neither
        in ``seen`` nor duplicated within the batch.  Returning fewer
        means the strategy (and the grid fallback) found nothing new —
        the space is exhausted."""
        batch: List[Dict[str, object]] = []
        taken = set(seen)
        self._fill(batch, taken, count)
        if len(batch) < count:
            self._fill_from_grid(batch, taken, count)
        return batch

    def observe(self, assignment: Dict[str, object], key: str,
                score: float) -> None:
        """One evaluated candidate (lower score is better)."""

    # -- machinery ---------------------------------------------------------

    def _fill(self, batch: List[Dict[str, object]], taken: Set[str],
              count: int) -> None:
        """Strategy-specific proposals; the base class has none."""

    def _admit(self, batch: List[Dict[str, object]], taken: Set[str],
               assignment: Dict[str, object]) -> bool:
        key = self.space.canonical(assignment).key()
        if key in taken:
            return False
        taken.add(key)
        batch.append(assignment)
        return True

    def _fill_from_grid(self, batch: List[Dict[str, object]],
                        taken: Set[str], count: int) -> None:
        if self._grid is None:
            self._grid = self.space.grid()
        for assignment in self._grid:
            if len(batch) >= count:
                return
            self._admit(batch, taken, assignment)


class GridStrategy(Strategy):
    """Exhaustive enumeration in deterministic knob-major order — the
    right tool when the (sub)space is small enough to sweep."""

    name = "grid"


class RandomStrategy(Strategy):
    """Uniform random sampling of the space."""

    name = "random"

    def _fill(self, batch: List[Dict[str, object]], taken: Set[str],
              count: int) -> None:
        attempts = _ATTEMPTS_PER_SLOT * count
        while len(batch) < count and attempts > 0:
            attempts -= 1
            self._admit(batch, taken,
                        self.space.random_assignment(self.rng))


class GreedyStrategy(Strategy):
    """Mutate-the-best hill climbing with random restarts.

    Proposals are single-knob (occasionally double-knob) mutations of
    the best candidate observed so far; every fourth slot is a fresh
    random sample to keep exploring.  Before any observation (or when
    mutations dry up) it degrades to random sampling, then to the grid.
    """

    name = "greedy"

    def __init__(self, space: KnobSpace, rng):
        super().__init__(space, rng)
        self._best: Optional[Dict[str, object]] = None
        self._best_score = float("inf")

    def observe(self, assignment: Dict[str, object], key: str,
                score: float) -> None:
        if score < self._best_score \
                or (score == self._best_score and self._best is None):
            self._best = dict(assignment)
            self._best_score = score

    def _fill(self, batch: List[Dict[str, object]], taken: Set[str],
              count: int) -> None:
        attempts = _ATTEMPTS_PER_SLOT * count
        while len(batch) < count and attempts > 0:
            attempts -= 1
            explore = self._best is None or len(batch) % 4 == 3
            if explore:
                candidate = self.space.random_assignment(self.rng)
            else:
                candidate = self.space.mutate(self._best, self.rng)
                if self.rng.random() < 0.25:
                    candidate = self.space.mutate(candidate, self.rng)
            self._admit(batch, taken, candidate)


_STRATEGIES = {cls.name: cls for cls in
               (GridStrategy, RandomStrategy, GreedyStrategy)}


def strategy_names() -> tuple:
    return tuple(sorted(_STRATEGIES))


def make_strategy(name: str, space: KnobSpace, rng) -> Strategy:
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ValueError("unknown strategy %r (use one of %s)"
                         % (name, ", ".join(strategy_names())))
    return cls(space, rng)
