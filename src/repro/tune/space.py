"""The declared knob space ``repro tune`` searches.

A :class:`Knob` is one named axis with a finite value set and the paper
default; a :class:`KnobSpace` is an ordered collection of knobs.  A
*candidate* is a full assignment (one value per knob).  Candidates are
compared through their **canonical form** (:meth:`KnobSpace.canonical`):
inert values — the technique's own defaults, parameters the technique
does not accept, ``None`` sentinels — are dropped, so a candidate that
re-states the paper configuration maps to exactly the legacy evaluation
cell (sharing its cache entries and baselines), and assignments that
would evaluate identically deduplicate instead of burning budget twice.

:data:`DEFAULT_SPACE` is the space the CLI searches; ``--knob`` narrows
it via :meth:`KnobSpace.subspace`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, NamedTuple, Optional, Tuple

from ..pipeline.matrix import Overrides, validate_overrides
from ..pipeline.stages import PARTITIONER_PARAMS, technique_config

#: The partitioner cost-model defaults (``GremioPartitioner.__init__``);
#: a ``partitioner.*`` knob set to its default is dropped from the
#: canonical override set.
PARTITIONER_DEFAULTS: Dict[str, float] = {
    "split_threshold": 1.0,
    "occupancy_factor": 1.5,
    "latency_factor": 1.0,
}


@dataclass(frozen=True)
class Knob:
    """One tunable axis: a finite, ordered value set plus the default
    (the papers' configuration) every search starts from."""

    name: str
    values: Tuple[object, ...]
    default: object
    description: str = ""

    def __post_init__(self) -> None:
        if self.default not in self.values:
            raise ValueError("knob %r default %r is not among its "
                             "values %r"
                             % (self.name, self.default, self.values))
        if len(set(self.values)) != len(self.values):
            raise ValueError("knob %r has duplicate values %r"
                             % (self.name, self.values))


class CanonicalCandidate(NamedTuple):
    """The workload-independent identity of one candidate: the cell
    coordinates it evaluates at, plus the canonical override set."""

    technique: str
    coco: bool
    placer: str
    topology: Optional[str]
    overrides: Overrides

    def key(self) -> str:
        """Deterministic dedupe/sort key."""
        return repr(tuple(self))


class KnobSpace:
    """An ordered set of knobs plus the candidate algebra over them."""

    def __init__(self, knobs: Iterable[Knob]):
        self.knobs: Tuple[Knob, ...] = tuple(knobs)
        self._by_name: Dict[str, Knob] = {}
        for knob in self.knobs:
            if knob.name in self._by_name:
                raise ValueError("duplicate knob %r" % (knob.name,))
            self._by_name[knob.name] = knob

    def __len__(self) -> int:
        return len(self.knobs)

    def __iter__(self) -> Iterator[Knob]:
        return iter(self.knobs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> Tuple[str, ...]:
        return tuple(knob.name for knob in self.knobs)

    def knob(self, name: str) -> Knob:
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError("unknown knob %r (tunable knobs: %s)"
                             % (name, ", ".join(self.names())))

    def subspace(self, names: Iterable[str]) -> "KnobSpace":
        """The sub-space spanned by ``names`` (declared order kept);
        unknown names raise an actionable :class:`ValueError`."""
        wanted = list(names)
        unknown = sorted(set(wanted) - set(self.names()))
        if unknown:
            raise ValueError(
                "unknown knob(s) %s (tunable knobs: %s)"
                % (", ".join(repr(n) for n in unknown),
                   ", ".join(self.names())))
        keep = set(wanted)
        return KnobSpace(k for k in self.knobs if k.name in keep)

    # -- assignments -------------------------------------------------------

    def default_assignment(self) -> Dict[str, object]:
        """The papers' configuration, restricted to this space."""
        return {knob.name: knob.default for knob in self.knobs}

    def assignment(self, partial: Dict[str, object]) -> Dict[str, object]:
        """Defaults overlaid with ``partial`` (unknown knobs rejected)."""
        full = self.default_assignment()
        for name, value in partial.items():
            knob = self.knob(name)
            if value not in knob.values:
                raise ValueError(
                    "knob %r has no value %r (choices: %s)"
                    % (name, value,
                       ", ".join(repr(v) for v in knob.values)))
            full[name] = value
        return full

    def grid(self) -> Iterator[Dict[str, object]]:
        """Every assignment, in deterministic knob-major order."""
        names = self.names()
        for combo in itertools.product(
                *(knob.values for knob in self.knobs)):
            yield dict(zip(names, combo))

    def size(self) -> int:
        """Upper bound on distinct candidates (before canonical
        deduplication)."""
        total = 1
        for knob in self.knobs:
            total *= len(knob.values)
        return total

    def random_assignment(self, rng) -> Dict[str, object]:
        return {knob.name: rng.choice(knob.values)
                for knob in self.knobs}

    def mutate(self, assignment: Dict[str, object],
               rng) -> Dict[str, object]:
        """A copy of ``assignment`` with one knob moved to a different
        value (identity when no knob has an alternative)."""
        movable = [knob for knob in self.knobs if len(knob.values) > 1]
        if not movable:
            return dict(assignment)
        knob = rng.choice(movable)
        alternatives = [v for v in knob.values
                        if v != assignment.get(knob.name, knob.default)]
        mutated = dict(assignment)
        mutated[knob.name] = rng.choice(alternatives)
        return mutated

    # -- canonicalization --------------------------------------------------

    def canonical(self, assignment: Dict[str, object]
                  ) -> CanonicalCandidate:
        """Collapse an assignment to its evaluation identity.

        ``machine.*`` values equal to the technique's default
        configuration (and the ``None`` sentinel) are dropped;
        ``partitioner.*`` values the technique does not accept, or equal
        to the partitioner defaults, are dropped.  The result's override
        set is validated and canonically sorted.
        """
        technique = str(assignment.get("technique", "gremio"))
        base = technique_config(technique)
        accepted = PARTITIONER_PARAMS.get(technique, ())
        pairs = []
        for name, value in assignment.items():
            domain, _, field = name.partition(".")
            if domain == "machine":
                if value is None or value == getattr(base, field):
                    continue
                pairs.append((name, value))
            elif domain == "partitioner":
                if field not in accepted or value is None:
                    continue
                if value == PARTITIONER_DEFAULTS.get(field):
                    continue
                pairs.append((name, value))
        return CanonicalCandidate(
            technique=technique,
            coco=bool(assignment.get("coco", False)),
            placer=str(assignment.get("placer", "identity")),
            topology=assignment.get("topology"),
            overrides=validate_overrides(pairs, technique))


#: The space ``repro tune`` searches by default.  Every knob includes
#: the papers' configuration as its default, so the untouched search
#: always contains the GREMIO and DSWP baselines.  ``gremio-flat`` is
#: deliberately absent: it is GREMIO with scope hierarchy disabled — an
#: ablation, not a candidate scheduler.
DEFAULT_SPACE = KnobSpace([
    Knob("technique", ("gremio", "dswp"), "gremio",
         "the partitioning technique"),
    Knob("coco", (False, True), False,
         "run the COCO communication optimizer"),
    Knob("placer", ("identity", "affinity"), "identity",
         "the thread-to-core placement heuristic"),
    Knob("topology", (None, "quad-flat", "quad-2x2"), None,
         "machine-topology preset (None = the papers' flat machine)"),
    Knob("machine.comm_latency", (1, 2, 4), 2,
         "produce-to-consume latency, cycles"),
    Knob("machine.sa_access_latency", (1, 2), 1,
         "synchronization-array access latency, cycles"),
    Knob("machine.sa_queue_size", (None, 1, 8, 32), None,
         "SA queue depth (None = the technique's default)"),
    Knob("partitioner.split_threshold", (0.5, 1.0, 2.0), 1.0,
         "GREMIO recursive-split profitability threshold"),
    Knob("partitioner.occupancy_factor", (1.0, 1.5), 1.5,
         "GREMIO occupancy weight in the merge cost model"),
    Knob("partitioner.latency_factor", (0.5, 1.0, 2.0), 1.0,
         "GREMIO communication-latency weight"),
])
