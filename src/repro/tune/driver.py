"""The ``repro tune`` search driver.

For each requested workload the driver runs one seeded search over the
knob space: it always scores the baseline candidates first (default
GREMIO and default DSWP — the search can therefore never lose to them),
then repeatedly asks the strategy for fixed-size generations of unseen
candidates and scores them through the batched
:func:`repro.api.evaluate_many` path on the fast backend.  The
objective is total MT cycles; ties at the minimum are broken by traced
critical-path length.

Determinism contract: generation size is fixed (``GENERATION``)
independently of ``--jobs``, all randomness flows from
``Random("repro-tune:<seed>:<workload>")``, evaluation results are
pool-invariant by the matrix contract, and leaderboards carry no
wall-clock data — so equal ``(seed, budget, knobs, workloads)`` yield
byte-identical leaderboard JSON.

Cost amortization: every scored candidate is memoized in the persistent
artifact cache under its backend-invariant request key (stage
``tune-candidate``; traced tie-breaks under ``tune-trace``), so re-runs
— and overlapping searches — skip straight to the verdict.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..api import (TOPOLOGIES, EvaluateRequest, ProgramSpec, TuneRequest,
                   TuneResult, evaluate, evaluate_many, get_cache)
from .space import DEFAULT_SPACE, CanonicalCandidate, KnobSpace
from .strategies import Strategy, make_strategy

#: Candidates scored per strategy round.  Fixed (never derived from
#: ``--jobs``) so the explored sequence is pool-invariant.
GENERATION = 8

#: At most this many candidates tied at the minimum cycle count are
#: traced for the critical-path tie-break (tracing bypasses the
#: simulate cache, so it is rationed).
TRACE_TIES = 4

#: The per-candidate metrics recorded on leaderboard entries (all
#: deterministic simulator outputs; no wall-clock data).
ENTRY_METRICS = ("mt_cycles", "st_cycles", "speedup",
                 "communication_fraction", "communication_instructions",
                 "dynamic_instructions", "channels")

Progress = Optional[Callable[[str], None]]


def _say(progress: Progress, message: str) -> None:
    if progress is not None:
        progress(message)


def candidate_request(workload: str, candidate: CanonicalCandidate,
                      request: TuneRequest) -> EvaluateRequest:
    """The evaluation-cell request scoring one candidate."""
    return EvaluateRequest(
        program=ProgramSpec.registry(workload),
        technique=candidate.technique,
        coco=candidate.coco, n_threads=request.n_threads,
        scale=request.scale, topology=candidate.topology,
        placer=candidate.placer, backend=request.backend,
        overrides=candidate.overrides)


def _feasible(candidate: CanonicalCandidate, n_threads: int) -> bool:
    if candidate.topology is None:
        return True
    return n_threads <= TOPOLOGIES[candidate.topology].n_cores


def _score_requests(requests: List[EvaluateRequest],
                    jobs: int) -> List[Dict[str, float]]:
    """Metrics for each request, via the ``tune-candidate`` memo when
    possible and the batched evaluation path otherwise."""
    cache = get_cache()
    use_cache = cache is not None and cache.enabled
    metrics: List[Optional[Dict[str, float]]] = [None] * len(requests)
    misses: List[int] = []
    for index, request in enumerate(requests):
        if use_cache:
            hit, payload = cache.load("tune-candidate",
                                      request.request_key())
            if hit:
                metrics[index] = payload["metrics"]
                continue
        misses.append(index)
    if misses:
        results = evaluate_many([requests[i] for i in misses], jobs=jobs)
        for index, result in zip(misses, results):
            subset = {name: float(result.metrics[name])
                      for name in ENTRY_METRICS
                      if name in result.metrics}
            metrics[index] = subset
            if use_cache:
                cache.store("tune-candidate",
                            requests[index].request_key(),
                            {"metrics": subset})
    return [m if m is not None else {} for m in metrics]


def _critical_path(request: EvaluateRequest) -> Optional[float]:
    """Traced critical-path cycles of one candidate, memoized under
    ``tune-trace`` (traced simulations themselves are uncacheable)."""
    traced = replace(request, trace=True)
    cache = get_cache()
    use_cache = cache is not None and cache.enabled
    key = traced.request_key()
    if use_cache:
        hit, payload = cache.load("tune-trace", key)
        if hit:
            return payload["critical_path_cycles"]
    result = evaluate(traced)
    value = result.metrics.get("critical_path_cycles")
    value = float(value) if value is not None else None
    if use_cache:
        cache.store("tune-trace", key, {"critical_path_cycles": value})
    return value


def _jsonable(value: object) -> object:
    return value


def _make_entry(key: str, source: str, assignment: Dict[str, object],
                candidate: CanonicalCandidate) -> Dict[str, object]:
    return {
        "key": key,
        "source": source,
        "candidate": {name: _jsonable(value)
                      for name, value in sorted(assignment.items())},
        "technique": candidate.technique,
        "coco": candidate.coco,
        "placer": candidate.placer,
        "topology": candidate.topology,
        "overrides": [[name, value]
                      for name, value in candidate.overrides],
        "metrics": {},
        "critical_path_cycles": None,
    }


class _WorkloadSearch:
    """One workload's seeded search state."""

    def __init__(self, request: TuneRequest, workload: str,
                 space: KnobSpace, jobs: int, progress: Progress):
        self.request = request
        self.workload = workload
        self.space = space
        self.jobs = jobs
        self.progress = progress
        self.rng = random.Random("repro-tune:%d:%s"
                                 % (request.seed, workload))
        self.strategy: Strategy = make_strategy(request.strategy, space,
                                                self.rng)
        self.seen: Set[str] = set()
        self.entries: Dict[str, Dict[str, object]] = {}
        self.evaluated = 0

    # -- candidate generation ---------------------------------------------

    def _baseline_assignments(self) -> List[Tuple[str, Dict[str, object]]]:
        if "technique" in self.space:
            techniques = self.space.knob("technique").values
        else:
            techniques = (None,)
        baselines = []
        for technique in techniques:
            assignment = self.space.default_assignment()
            if technique is not None:
                assignment["technique"] = technique
            label = technique if technique is not None else "default"
            baselines.append(("baseline:%s" % label, assignment))
        return baselines

    def _next_generation(self, want: int
                         ) -> List[Tuple[str, Dict[str, object],
                                         CanonicalCandidate]]:
        """Up to ``want`` fresh, feasible candidates from the strategy
        (infeasible proposals are consumed as seen, not scored)."""
        generation = []
        while len(generation) < want:
            batch = self.strategy.propose(want - len(generation),
                                          self.seen)
            if not batch:
                break
            for assignment in batch:
                candidate = self.space.canonical(assignment)
                key = candidate.key()
                self.seen.add(key)
                if key in self.entries:
                    continue
                if not _feasible(candidate, self.request.n_threads):
                    continue
                generation.append((key, assignment, candidate))
        return generation

    # -- scoring -----------------------------------------------------------

    def _score(self, batch: List[Tuple[str, Dict[str, object],
                                       CanonicalCandidate]],
               sources: Dict[str, str]) -> None:
        requests = [candidate_request(self.workload, candidate,
                                      self.request)
                    for _, _, candidate in batch]
        scored = _score_requests(requests, self.jobs)
        for (key, assignment, candidate), metrics in zip(batch, scored):
            entry = _make_entry(key, sources.get(key, "search"),
                                assignment, candidate)
            entry["metrics"] = metrics
            self.entries[key] = entry
            self.evaluated += 1
            self.strategy.observe(assignment, key,
                                  metrics.get("mt_cycles", float("inf")))

    def run(self) -> Tuple[List[Dict[str, object]], int]:
        budget = self.request.budget
        baselines = []
        sources: Dict[str, str] = {}
        for source, assignment in self._baseline_assignments():
            candidate = self.space.canonical(assignment)
            key = candidate.key()
            if key in self.seen or len(baselines) >= budget:
                continue
            self.seen.add(key)
            sources[key] = source
            baselines.append((key, assignment, candidate))
        self._score(baselines, sources)
        round_number = 0
        while self.evaluated < budget:
            round_number += 1
            generation = self._next_generation(
                min(GENERATION, budget - self.evaluated))
            if not generation:
                _say(self.progress,
                     "%s: space exhausted after %d candidates"
                     % (self.workload, self.evaluated))
                break
            self._score(generation, sources)
            best = min(entry["metrics"].get("mt_cycles", float("inf"))
                       for entry in self.entries.values())
            _say(self.progress,
                 "%s: round %d, %d/%d evaluated, best %.0f cycles"
                 % (self.workload, round_number, self.evaluated,
                    budget, best))
        return self._leaderboard(), self.evaluated

    # -- ranking -----------------------------------------------------------

    def _leaderboard(self) -> List[Dict[str, object]]:
        entries = sorted(
            self.entries.values(),
            key=lambda e: (e["metrics"].get("mt_cycles", float("inf")),
                           e["key"]))
        if not entries:
            return []
        minimum = entries[0]["metrics"].get("mt_cycles", float("inf"))
        tied = [e for e in entries
                if e["metrics"].get("mt_cycles") == minimum]
        to_trace = tied[:TRACE_TIES]
        traced_keys = {e["key"] for e in to_trace}
        for entry in entries:
            if entry["source"].startswith("baseline:") \
                    and entry["key"] not in traced_keys:
                to_trace.append(entry)
                traced_keys.add(entry["key"])
        for entry in to_trace:
            candidate = CanonicalCandidate(
                entry["technique"], entry["coco"], entry["placer"],
                entry["topology"],
                tuple((name, value)
                      for name, value in entry["overrides"]))
            entry["critical_path_cycles"] = _critical_path(
                candidate_request(self.workload, candidate,
                                  self.request))

        def rank_key(entry: Dict[str, object]):
            cycles = entry["metrics"].get("mt_cycles", float("inf"))
            critical = entry["critical_path_cycles"]
            if cycles == minimum:
                return (cycles,
                        critical if critical is not None
                        else float("inf"),
                        entry["key"])
            return (cycles, float("inf"), entry["key"])

        entries.sort(key=rank_key)
        for rank, entry in enumerate(entries):
            entry["rank"] = rank
        return entries


def run_tune(request: TuneRequest, jobs: int = 1,
             out_dir: Optional[str] = None, top: int = 10,
             progress: Progress = None) -> TuneResult:
    """Run the full tuning search and return (and optionally write,
    see :mod:`repro.tune.leaderboard`) its leaderboards."""
    request = request.validate()
    space = (DEFAULT_SPACE.subspace(request.knobs)
             if request.knobs else DEFAULT_SPACE)
    _say(progress,
         "tuning %d workload(s), strategy %s, budget %d, seed %d, "
         "space of %d knobs (<= %d raw candidates)"
         % (len(request.workloads), request.strategy, request.budget,
            request.seed, len(space), space.size()))
    leaderboards: Dict[str, List[Dict[str, object]]] = {}
    best: Dict[str, Dict[str, object]] = {}
    total = 0
    for workload in request.workloads:
        search = _WorkloadSearch(request, workload, space, jobs,
                                 progress)
        entries, evaluated = search.run()
        total += evaluated
        leaderboards[workload] = entries[:max(top, 1)]
        if entries:
            best[workload] = _best_summary(entries, evaluated)
            _say(progress, "%s: best %s (%.0f cycles)"
                 % (workload, best[workload]["source"],
                    best[workload]["metrics"]["mt_cycles"]))
    result = TuneResult(request=request, leaderboards=leaderboards,
                        best=best, evaluated=total)
    if out_dir is not None:
        from .leaderboard import write_outputs
        for path in write_outputs(result, out_dir):
            _say(progress, "wrote %s" % path)
    return result


def _best_summary(entries: List[Dict[str, object]],
                  evaluated: int) -> Dict[str, object]:
    """The winning entry plus its deltas against every seeded
    baseline (negative improvement would mean the search lost to a
    baseline it contains — impossible by construction)."""
    winner = dict(entries[0])
    winner["evaluated"] = evaluated
    baseline_cycles: Dict[str, float] = {}
    improvement: Dict[str, float] = {}
    cycles = winner["metrics"].get("mt_cycles")
    for entry in entries:
        source = entry["source"]
        if not source.startswith("baseline:"):
            continue
        label = source.split(":", 1)[1]
        base = entry["metrics"].get("mt_cycles")
        baseline_cycles[label] = base
        if base and cycles is not None:
            improvement[label] = round(100.0 * (base - cycles) / base, 4)
    winner["baseline_mt_cycles"] = baseline_cycles
    winner["improvement_pct"] = improvement
    return winner
