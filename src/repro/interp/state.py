"""Run-time state: the flat word-addressed memory.

Memory holds one Python number per word.  Functions declare named memory
objects (:class:`repro.ir.MemObject`); :func:`make_memory` lays them out and
returns a memory plus the base addresses, and :func:`bind_params` produces
the initial register file, resolving pointer parameters to object bases.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..ir.cfg import Function


class MemoryError_(Exception):
    """Out-of-bounds or uninitialized access (named to avoid the builtin)."""


class Memory:
    """Flat word-addressed memory with bounds checking."""

    __slots__ = ("words", "size")

    def __init__(self, size: int):
        self.size = size
        self.words: List = [0] * size

    def load(self, address: int):
        if not 0 <= address < self.size:
            raise MemoryError_("load from address %r (size %d)"
                               % (address, self.size))
        return self.words[address]

    def store(self, address: int, value) -> None:
        if not 0 <= address < self.size:
            raise MemoryError_("store to address %r (size %d)"
                               % (address, self.size))
        self.words[address] = value

    def write_array(self, base: int, values: Iterable) -> None:
        values = list(values)
        if 0 <= base and base + len(values) <= self.size:
            self.words[base:base + len(values)] = values
            return
        # Out of bounds somewhere: take the word-at-a-time path so the
        # error names the first offending address, as store() would.
        for offset, value in enumerate(values):
            self.store(base + offset, value)

    def read_array(self, base: int, length: int) -> List:
        return [self.load(base + offset) for offset in range(length)]

    def snapshot(self) -> Tuple:
        return tuple(self.words)


def make_memory(function: Function,
                initial: Optional[Mapping[str, Iterable]] = None) -> Memory:
    """Lay out the function's memory objects and initialize from ``initial``
    (a mapping object-name -> sequence of words)."""
    total = function.layout_memory()
    memory = Memory(max(total, 1))
    initial = dict(initial or {})
    for name, values in initial.items():
        if name not in function.mem_objects:
            raise MemoryError_("no memory object named %r" % name)
        obj = function.mem_objects[name]
        values = list(values)
        if len(values) > obj.size:
            raise MemoryError_("initializer for %r too large (%d > %d)"
                               % (name, len(values), obj.size))
        memory.write_array(obj.base, values)
    return memory


def bind_params(function: Function, args: Mapping[str, object]) -> Dict[str, object]:
    """Initial register file: caller-supplied scalars plus pointer params
    bound to their objects' base addresses."""
    regs: Dict[str, object] = {}
    for param in function.params:
        if param in function.pointer_params:
            obj = function.mem_objects[function.pointer_params[param]]
            if obj.base < 0:
                raise MemoryError_("memory not laid out for %r" % obj.name)
            regs[param] = obj.base
            continue
        if param not in args:
            raise MemoryError_("missing argument for parameter %r" % param)
        regs[param] = args[param]
    extras = set(args) - set(function.params)
    if extras:
        raise MemoryError_("unknown arguments: %s" % sorted(extras))
    return regs
