"""Single-thread execution context.

:class:`ThreadContext` steps one instruction at a time through a function's
CFG against a (possibly shared) memory.  Communication opcodes are delegated
to a queue set supplied by the caller; when a queue operation cannot proceed
the context reports ``BLOCKED`` without advancing, which is exactly the
blocking produce/consume semantics of the synchronization array.  The same
stepper drives the single-threaded interpreter, the functional multi-threaded
simulator, and (via its step results) the timing model.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional

from ..ir.cfg import Function
from ..ir.instructions import Instruction, Opcode


class TrapError(Exception):
    """Run-time fault: division by zero, bad address type, etc."""


def _trunc_div(a, b):
    if b == 0:
        raise TrapError("integer division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _trunc_mod(a, b):
    return a - _trunc_div(a, b) * b


def _bool(x) -> int:
    return 1 if x else 0


_BINARY = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.IDIV: _trunc_div,
    Opcode.IMOD: _trunc_mod,
    Opcode.MIN: lambda a, b: a if a <= b else b,
    Opcode.MAX: lambda a, b: a if a >= b else b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.SHR: lambda a, b: a >> b,
    Opcode.CMPEQ: lambda a, b: _bool(a == b),
    Opcode.CMPNE: lambda a, b: _bool(a != b),
    Opcode.CMPLT: lambda a, b: _bool(a < b),
    Opcode.CMPLE: lambda a, b: _bool(a <= b),
    Opcode.CMPGT: lambda a, b: _bool(a > b),
    Opcode.CMPGE: lambda a, b: _bool(a >= b),
    Opcode.FADD: lambda a, b: float(a) + float(b),
    Opcode.FSUB: lambda a, b: float(a) - float(b),
    Opcode.FMUL: lambda a, b: float(a) * float(b),
    Opcode.FMIN: lambda a, b: float(a) if a <= b else float(b),
    Opcode.FMAX: lambda a, b: float(a) if a >= b else float(b),
}

_UNARY = {
    Opcode.MOV: lambda a: a,
    Opcode.NEG: lambda a: -a,
    Opcode.ABS: lambda a: abs(a),
    Opcode.NOT: lambda a: ~a,
    Opcode.ITOF: float,
    Opcode.FTOI: lambda a: math.trunc(a),
    Opcode.FSQRT: lambda a: math.sqrt(a),
    Opcode.FNEG: lambda a: -float(a),
    Opcode.FABS: lambda a: abs(float(a)),
}


class StepStatus(enum.Enum):
    OK = enum.auto()        # instruction executed, context advanced
    BLOCKED = enum.auto()   # queue full/empty; nothing happened
    EXITED = enum.auto()    # the exit terminator executed


class StepResult:
    """What happened when one instruction (tried to) execute."""

    __slots__ = ("status", "instruction", "mem_address", "branch_taken",
                 "queue", "value")

    def __init__(self, status: StepStatus, instruction: Optional[Instruction],
                 mem_address: Optional[int] = None,
                 branch_taken: Optional[bool] = None,
                 queue: Optional[int] = None, value=None):
        self.status = status
        self.instruction = instruction
        self.mem_address = mem_address
        self.branch_taken = branch_taken
        self.queue = queue
        self.value = value


class QueueSet:
    """Interface the context uses for communication opcodes.

    ``try_push`` returns False when the queue is full, ``try_pop`` returns
    ``(False, None)`` when empty.  The single-threaded interpreter passes
    ``None`` (communication is then illegal).
    """

    def try_push(self, queue: int, value) -> bool:  # pragma: no cover
        raise NotImplementedError

    def try_pop(self, queue: int):  # pragma: no cover
        raise NotImplementedError


class ThreadContext:
    """Architectural state of one thread executing one CFG."""

    def __init__(self, function: Function, regs: Dict[str, object],
                 memory, queues: Optional[QueueSet] = None):
        self.function = function
        self.regs = regs
        self.memory = memory
        self.queues = queues
        self.block = function.entry
        self.index = 0
        self.exited = False
        self.steps = 0

    # -- helpers ---------------------------------------------------------------

    def current_instruction(self) -> Optional[Instruction]:
        if self.exited:
            return None
        return self.block.instructions[self.index]

    def _read(self, register: str):
        try:
            return self.regs[register]
        except KeyError:
            raise TrapError("read of undefined register %r in %s"
                            % (register, self.function.name))

    def _operands(self, instruction: Instruction):
        values = [self._read(register) for register in instruction.srcs]
        if instruction.imm is not None and not instruction.is_memory():
            values.append(instruction.imm)
        return values

    def _goto(self, label: str) -> None:
        self.block = self.function.block(label)
        self.index = 0

    # -- the stepper -----------------------------------------------------------

    def step(self) -> StepResult:
        """Execute (at most) one instruction."""
        if self.exited:
            return StepResult(StepStatus.EXITED, None)
        instruction = self.block.instructions[self.index]
        op = instruction.op

        # Hot path: plain binary ALU ops dominate every profile, so they
        # dispatch on one dict probe with the operands read inline (the
        # general ``_operands`` path below stays for the odd shapes and
        # is what defines the trap behaviour being preserved here).
        handler = _BINARY.get(op)
        if handler is not None:
            srcs = instruction.srcs
            imm = instruction.imm
            self.steps += 1
            regs = self.regs
            try:
                if len(srcs) == 2 and imm is None:
                    value = handler(regs[srcs[0]], regs[srcs[1]])
                elif len(srcs) == 1 and imm is not None:
                    value = handler(regs[srcs[0]], imm)
                else:
                    a, b = self._operands(instruction)
                    value = handler(a, b)
            except KeyError as error:
                raise TrapError("read of undefined register %r in %s"
                                % (error.args[0], self.function.name))
            regs[instruction.dest] = value
            self.index += 1
            return StepResult(StepStatus.OK, instruction)

        # Communication first: these may block without side effects.
        if op is Opcode.PRODUCE or op is Opcode.PRODUCE_SYNC:
            if self.queues is None:
                raise TrapError("communication outside MT simulation")
            value = (self._read(instruction.srcs[0])
                     if op is Opcode.PRODUCE else 0)
            if not self.queues.try_push(instruction.queue, value):
                return StepResult(StepStatus.BLOCKED, instruction,
                                  queue=instruction.queue)
            self.index += 1
            self.steps += 1
            return StepResult(StepStatus.OK, instruction,
                              queue=instruction.queue, value=value)
        if op is Opcode.CONSUME or op is Opcode.CONSUME_SYNC:
            if self.queues is None:
                raise TrapError("communication outside MT simulation")
            ok, value = self.queues.try_pop(instruction.queue)
            if not ok:
                return StepResult(StepStatus.BLOCKED, instruction,
                                  queue=instruction.queue)
            if op is Opcode.CONSUME:
                self.regs[instruction.dest] = value
            self.index += 1
            self.steps += 1
            return StepResult(StepStatus.OK, instruction,
                              queue=instruction.queue, value=value)

        self.steps += 1

        if op is Opcode.EXIT:
            self.exited = True
            return StepResult(StepStatus.EXITED, instruction)
        if op is Opcode.JMP:
            self._goto(instruction.labels[0])
            return StepResult(StepStatus.OK, instruction)
        if op is Opcode.BR:
            taken = bool(self._read(instruction.srcs[0]))
            self._goto(instruction.labels[0 if taken else 1])
            return StepResult(StepStatus.OK, instruction, branch_taken=taken)
        if op is Opcode.LOAD:
            base = self._read(instruction.srcs[0])
            address = base + (instruction.imm or 0)
            if not isinstance(address, int):
                raise TrapError("non-integer address %r" % (address,))
            self.regs[instruction.dest] = self.memory.load(address)
            self.index += 1
            return StepResult(StepStatus.OK, instruction, mem_address=address)
        if op is Opcode.STORE:
            base = self._read(instruction.srcs[0])
            address = base + (instruction.imm or 0)
            if not isinstance(address, int):
                raise TrapError("non-integer address %r" % (address,))
            self.memory.store(address, self._read(instruction.srcs[1]))
            self.index += 1
            return StepResult(StepStatus.OK, instruction, mem_address=address)
        if op is Opcode.MOVI:
            self.regs[instruction.dest] = instruction.imm
            self.index += 1
            return StepResult(StepStatus.OK, instruction)
        if op is Opcode.NOP:
            self.index += 1
            return StepResult(StepStatus.OK, instruction)

        if op is Opcode.FDIV:
            a, b = self._operands(instruction)
            if float(b) == 0.0:
                raise TrapError("float division by zero")
            self.regs[instruction.dest] = float(a) / float(b)
            self.index += 1
            return StepResult(StepStatus.OK, instruction)
        handler = _UNARY.get(op)
        if handler is not None:
            (a,) = self._operands(instruction)
            self.regs[instruction.dest] = handler(a)
            self.index += 1
            return StepResult(StepStatus.OK, instruction)
        raise TrapError("unimplemented opcode %s" % op.value)
