"""Single-threaded reference interpreter.

Executes a function to completion, producing the live-out register values,
the final memory, dynamic instruction counts, and an edge profile.  This is
the semantic oracle every multi-threaded execution must match, and the
profiler that feeds GREMIO's latency estimates and COCO's min-cut costs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Optional

from ..ir.cfg import Function
from ..ir.instructions import Opcode
from .context import StepStatus, ThreadContext, TrapError
from .profile import EdgeProfile
from .state import Memory, bind_params, make_memory


class ExecutionLimitExceeded(Exception):
    """The step budget ran out (probably a non-terminating program)."""


class RunResult:
    """Outcome of one single-threaded execution."""

    def __init__(self, function: Function, regs: Dict[str, object],
                 memory: Memory, profile: EdgeProfile,
                 dynamic_instructions: int, opcode_counts: Counter,
                 trace: Optional[List[int]]):
        self.function = function
        self.regs = regs
        self.memory = memory
        self.profile = profile
        self.dynamic_instructions = dynamic_instructions
        self.opcode_counts = opcode_counts
        self.trace = trace

    @property
    def live_outs(self) -> Dict[str, object]:
        return {register: self.regs.get(register)
                for register in self.function.live_outs}

    def mem_object(self, name: str) -> List:
        obj = self.function.mem_objects[name]
        return self.memory.read_array(obj.base, obj.size)

    def __repr__(self) -> str:  # pragma: no cover
        return "<RunResult %s: %d dynamic instructions>" % (
            self.function.name, self.dynamic_instructions)


def run_function(function: Function, args: Optional[Mapping[str, object]] = None,
                 initial_memory: Optional[Mapping[str, object]] = None,
                 max_steps: int = 50_000_000,
                 keep_trace: bool = False) -> RunResult:
    """Interpret ``function`` with the given scalar arguments and memory
    initializers.  Raises :class:`ExecutionLimitExceeded` past ``max_steps``.
    """
    memory = make_memory(function, initial_memory)
    regs = bind_params(function, dict(args) if args else {})
    context = ThreadContext(function, regs, memory, queues=None)
    profile = EdgeProfile(function)
    opcode_counts: Counter = Counter()
    trace: Optional[List[int]] = [] if keep_trace else None

    steps = 0
    profile.count_block(context.block.label)
    while not context.exited:
        if steps >= max_steps:
            raise ExecutionLimitExceeded(
                "%s exceeded %d steps" % (function.name, max_steps))
        previous_block = context.block.label
        result = context.step()
        if result.status is StepStatus.BLOCKED:  # pragma: no cover
            raise TrapError("single-threaded code cannot block")
        steps += 1
        instruction = result.instruction
        opcode_counts[instruction.op] += 1
        if trace is not None:
            trace.append(instruction.iid)
        if instruction.op in (Opcode.BR, Opcode.JMP):
            current = context.block.label
            profile.count_edge(previous_block, current)
            profile.count_block(current)
    return RunResult(function, regs, memory, profile, steps, opcode_counts,
                     trace)
