"""Execution profiles: CFG edge and block weights.

COCO's min-cut arc costs and GREMIO's latency estimates are driven by these
weights.  Profiles come from instrumented interpretation
(:func:`repro.interp.interpreter.run_function` fills one in), or from the
static estimator below when no profiling run is available — mirroring the
papers, which profile on `train` inputs or fall back to static estimates
(Wu & Larus).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.cfg import Function


class EdgeProfile:
    """Execution counts for CFG blocks and edges of one function."""

    def __init__(self, function: Function):
        self.function = function
        self.block_counts: Dict[str, float] = {b.label: 0.0
                                               for b in function.blocks}
        self.edge_counts: Dict[Tuple[str, str], float] = {}
        for block in function.blocks:
            for successor in block.successors():
                self.edge_counts[(block.label, successor)] = 0.0

    # -- recording ------------------------------------------------------------

    def count_block(self, label: str, amount: float = 1.0) -> None:
        self.block_counts[label] += amount

    def count_edge(self, source: str, target: str,
                   amount: float = 1.0) -> None:
        self.edge_counts[(source, target)] += amount

    # -- queries -----------------------------------------------------------------

    def block_weight(self, label: str) -> float:
        return self.block_counts.get(label, 0.0)

    def edge_weight(self, source: str, target: str) -> float:
        return self.edge_counts.get((source, target), 0.0)

    def total_blocks_executed(self) -> float:
        return sum(self.block_counts.values())

    def scaled(self, factor: float) -> "EdgeProfile":
        clone = EdgeProfile(self.function)
        for label, count in self.block_counts.items():
            clone.block_counts[label] = count * factor
        for edge, count in self.edge_counts.items():
            clone.edge_counts[edge] = count * factor
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return "<EdgeProfile %s: %d blocks>" % (self.function.name,
                                                len(self.block_counts))


def static_profile(function: Function, loop_factor: float = 10.0,
                   branch_bias: float = 0.5) -> EdgeProfile:
    """Static weight estimate: blocks weigh ``loop_factor ** depth`` where
    depth is the natural-loop nesting depth; branch edges split the block
    weight evenly (``branch_bias`` to the taken side), except loop back
    edges, which receive the share that keeps the loop header balanced.
    """
    from ..analysis.loops import loop_nest_forest

    forest = loop_nest_forest(function)
    depth = forest.depth_by_block()
    profile = EdgeProfile(function)
    for block in function.blocks:
        profile.block_counts[block.label] = loop_factor ** depth.get(
            block.label, 0)
    for block in function.blocks:
        successors = block.successors()
        weight = profile.block_counts[block.label]
        if len(successors) == 1:
            profile.edge_counts[(block.label, successors[0])] = weight
        elif len(successors) == 2:
            taken, not_taken = successors
            profile.edge_counts[(block.label, taken)] = weight * branch_bias
            profile.edge_counts[(block.label, not_taken)] = (
                weight * (1.0 - branch_bias))
    return profile
