"""Functional execution: interpreter, thread contexts, profiles."""

from .context import (QueueSet, StepResult, StepStatus, ThreadContext,
                      TrapError)
from .interpreter import ExecutionLimitExceeded, RunResult, run_function
from .profile import EdgeProfile, static_profile
from .state import Memory, MemoryError_, bind_params, make_memory

__all__ = [
    "QueueSet", "StepResult", "StepStatus", "ThreadContext", "TrapError",
    "ExecutionLimitExceeded", "RunResult", "run_function", "EdgeProfile",
    "static_profile", "Memory", "MemoryError_", "bind_params", "make_memory",
]
