"""The trace collector: the instrumentation sink the timing simulator
feeds, one call per issued instruction.

The collector does two jobs with very different memory profiles:

* **event capture** — every :class:`~repro.trace.events
  .InstructionEvent` and :class:`~repro.trace.events.QueueSample` goes
  into a bounded :class:`~repro.trace.events.RingBuffer`, so tracing a
  long run keeps the newest window and counts what it evicted;
* **stall attribution** — per-core/per-thread/per-opcode-class cycle
  accounting is accumulated *outside* the ring and therefore exact over
  the whole run, however long.

Attribution model (per core, an in-order issue timeline): every cycle
up to the core's finish time is either an **execute** cycle (>= 1
instruction issued) or a stall cycle.  The gap of issue-less cycles
before an event is attributed to that event's raw delay components in
the priority order of :data:`~repro.trace.events.STALL_CATEGORIES`,
each take clamped so the attributed total never exceeds the gap; any
remainder lands in ``other`` and the tail between the last issue and
the last completion in ``drain``.  By construction, for every core::

    execute + sum(stall categories) == finish cycles   (exactly)

which is the reconciliation invariant ``verify()`` checks and the
stall report prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import (EXECUTE, STALL_CATEGORIES, InstructionEvent,
                     QueueSample, RingBuffer)

#: Default ring capacity: roomy enough for every workload in the repo's
#: registry while bounding worst-case memory on adversarial runs.
DEFAULT_EVENT_LIMIT = 1_000_000

#: The gap-claiming order (``drain`` and ``other`` are synthesized, not
#: claimed from raw components).
_CLAIM_ORDER = tuple(category for category in STALL_CATEGORIES
                     if category not in ("drain", "other"))


def _zero_stalls() -> Dict[str, float]:
    return {category: 0.0 for category in STALL_CATEGORIES}


class CoreAccount:
    """Running attribution state of one core."""

    __slots__ = ("core", "busy_cycles", "last_issue_cycle", "stalls",
                 "pending_control", "events", "finish")

    def __init__(self, core: int):
        self.core = core
        self.busy_cycles = 0
        self.last_issue_cycle = -1
        self.stalls = _zero_stalls()
        self.pending_control = 0.0
        self.events = 0
        self.finish = 0.0

    def total_attributed(self) -> float:
        return self.busy_cycles + sum(self.stalls.values())


class ClassAccount:
    """Running attribution state of one opcode class (alu/fp/memory/
    branch/comm): dynamic count, busy cycles it opened, and the stall
    cycles attributed to its events."""

    __slots__ = ("op_class", "count", "stalls")

    def __init__(self, op_class: str):
        self.op_class = op_class
        self.count = 0
        self.stalls = _zero_stalls()


class TraceCollector:
    """The tracer object ``simulate_threads(tracer=...)`` drives."""

    def __init__(self, limit: int = DEFAULT_EVENT_LIMIT,
                 queue_sample_limit: Optional[int] = None):
        self.events: RingBuffer = RingBuffer(limit)
        self.queue_samples: RingBuffer = RingBuffer(
            queue_sample_limit if queue_sample_limit is not None
            else limit)
        self.cores: Dict[int, CoreAccount] = {}
        self.threads: Dict[int, Dict[str, float]] = {}
        self.op_classes: Dict[str, ClassAccount] = {}
        self.queue_peak: Dict[int, int] = {}
        self.total_events = 0
        self.core_finish: List[float] = []
        self.cache_stats: Dict[str, int] = {}
        self.comm_stats: Dict[str, float] = {}
        # Core id -> cluster index (from the simulator's topology hook);
        # empty until on_topology fires, which single-purpose consumers
        # of the collector may never do.
        self.cluster_of: Dict[int, int] = {}
        self.finished = False
        self._next_seq = 0

    # -- simulator hooks ---------------------------------------------------

    def on_topology(self, cluster_of: Dict[int, int]) -> None:
        """Record the machine's core -> cluster map (the Chrome exporter
        groups core tracks by cluster with it)."""
        self.cluster_of = dict(cluster_of)

    def on_event(self, core: int, thread: int, iid: int, op: str,
                 op_class: str, issue: int, complete: float,
                 stall: Optional[Dict[str, float]] = None,
                 deps=(), queue: Optional[int] = None,
                 control_penalty: float = 0.0,
                 extra: Optional[Dict[str, object]] = None) -> int:
        """Record one issued instruction; returns its event ``seq`` so
        the simulator can thread dependence edges through registers,
        queues, and fences."""
        seq = self._next_seq
        self._next_seq += 1
        account = self.cores.get(core)
        if account is None:
            account = self.cores[core] = CoreAccount(core)
        klass = self.op_classes.get(op_class)
        if klass is None:
            klass = self.op_classes[op_class] = ClassAccount(op_class)
        thread_stalls = self.threads.get(thread)
        if thread_stalls is None:
            thread_stalls = self.threads[thread] = _zero_stalls()

        raw = dict(stall) if stall else {}
        if account.pending_control:
            raw["control"] = (raw.get("control", 0.0)
                              + account.pending_control)
            account.pending_control = 0.0

        # Gap attribution: issue-less cycles since the last issue cycle
        # on this core, claimed by the raw components in priority order.
        if issue != account.last_issue_cycle:
            gap = float(issue - account.last_issue_cycle - 1)
            account.last_issue_cycle = issue
            account.busy_cycles += 1
            remaining = gap
            for category in _CLAIM_ORDER:
                component = raw.get(category, 0.0)
                if component <= 0.0 or remaining <= 0.0:
                    continue
                take = component if component < remaining else remaining
                account.stalls[category] += take
                klass.stalls[category] += take
                thread_stalls[category] += take
                remaining -= take
            if remaining > 0.0:
                account.stalls["other"] += remaining
                klass.stalls["other"] += remaining
                thread_stalls["other"] += remaining

        if control_penalty:
            # The redirect stalls the *next* issue on this core.
            account.pending_control = float(control_penalty)

        account.events += 1
        klass.count += 1
        self.total_events += 1
        self.events.append(InstructionEvent(
            seq, core, thread, iid, op, op_class, issue, complete,
            queue=queue, stall=raw, deps=deps, extra=extra))
        return seq

    def on_queue_depth(self, queue: int, cycle: float,
                       depth: int) -> None:
        self.queue_samples.append(QueueSample(queue, cycle, depth))
        if depth > self.queue_peak.get(queue, -1):
            self.queue_peak[queue] = depth

    def on_finish(self, core_finish: List[float],
                  cache_stats: Optional[Dict[str, int]] = None,
                  comm_stats: Optional[Dict[str, float]] = None) -> None:
        """Close the run: attribute each core's completion tail as
        ``drain`` so the per-core accounting sums to its finish time."""
        self.core_finish = list(core_finish)
        for core, finish in enumerate(core_finish):
            account = self.cores.get(core)
            if account is None:
                account = self.cores[core] = CoreAccount(core)
            account.finish = float(finish)
            issued_through = (account.last_issue_cycle + 1
                              if account.events else 0)
            drain = float(finish) - issued_through
            if drain > 0.0:
                account.stalls["drain"] += drain
                thread_stalls = self.threads.setdefault(core,
                                                        _zero_stalls())
                thread_stalls["drain"] += drain
        self.cache_stats = dict(cache_stats or {})
        self.comm_stats = dict(comm_stats or {})
        self.finished = True

    # -- views -------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        return max(self.core_finish) if self.core_finish else 0.0

    def core_table(self) -> Dict[int, Dict[str, float]]:
        """Per-core attribution row: execute + every stall category +
        the core's finish time."""
        table: Dict[int, Dict[str, float]] = {}
        for core in sorted(self.cores):
            account = self.cores[core]
            row = {EXECUTE: float(account.busy_cycles)}
            row.update(account.stalls)
            row["total"] = account.total_attributed()
            row["finish"] = account.finish
            row["events"] = float(account.events)
            table[core] = row
        return table

    def class_table(self) -> Dict[str, Dict[str, float]]:
        table: Dict[str, Dict[str, float]] = {}
        for op_class in sorted(self.op_classes):
            account = self.op_classes[op_class]
            row: Dict[str, float] = {"count": float(account.count)}
            row.update(account.stalls)
            row["stall_total"] = sum(account.stalls.values())
            table[op_class] = row
        return table

    def stall_totals(self) -> Dict[str, float]:
        totals = _zero_stalls()
        for account in self.cores.values():
            for category, cycles in account.stalls.items():
                totals[category] += cycles
        return totals

    def top_stall(self) -> "tuple[str, float]":
        """The dominant stall reason (deterministic tie-break by the
        canonical category order)."""
        totals = self.stall_totals()
        best = STALL_CATEGORIES[0]
        for category in STALL_CATEGORIES:
            if totals[category] > totals[best]:
                best = category
        return best, totals[best]

    def verify(self, tolerance: float = 1e-6) -> None:
        """Assert the reconciliation invariant: per core, execute +
        attributed stalls == finish cycles (exactly, up to float
        round-off on the drain tail)."""
        for core, account in self.cores.items():
            attributed = account.total_attributed()
            if abs(attributed - account.finish) > tolerance:
                raise AssertionError(
                    "core %d attribution does not reconcile: "
                    "execute+stalls=%.6f, finish=%.6f"
                    % (core, attributed, account.finish))
