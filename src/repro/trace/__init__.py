"""``repro.trace`` — simulated-time execution tracing, stall
attribution, and dynamic critical-path analysis.

The timing simulator (:mod:`repro.machine.timing`) accepts an optional
``tracer`` (a :class:`TraceCollector`); when provided it emits one
:class:`~repro.trace.events.InstructionEvent` per dynamic instruction
with a structured stall breakdown and the dependence edges that
constrained it, plus :class:`~repro.trace.events.QueueSample` counter
points for SA queue occupancy.  On top of the stream:

* :func:`analyze` — reconciliation-checked stall-attribution tables
  and the dynamic critical path (:class:`TraceAnalysis`);
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome Trace
  Format export, loadable in Perfetto / ``chrome://tracing``;
* :func:`stall_report_markdown` / :func:`stall_report_json` — the
  per core/thread/opcode-class report.

Tracing is strictly opt-in: with ``tracer=None`` the simulator's
results are bit-identical to an uninstrumented run.
"""

from .events import (EDGE_KINDS, EXECUTE, PRODUCER_CATEGORY,
                     STALL_CATEGORIES, TRACE_SCHEMA_VERSION,
                     FunctionalEvent, InstructionEvent, QueueSample,
                     RingBuffer)
from .collector import (DEFAULT_EVENT_LIMIT, ClassAccount, CoreAccount,
                        TraceCollector)
from .critical_path import CriticalPath, critical_path
from .chrome import chrome_trace, write_chrome_trace
from .report import (TraceAnalysis, analyze, stall_report_json,
                     stall_report_markdown)

__all__ = [
    "TRACE_SCHEMA_VERSION", "STALL_CATEGORIES", "EXECUTE",
    "EDGE_KINDS", "PRODUCER_CATEGORY",
    "InstructionEvent", "QueueSample", "FunctionalEvent", "RingBuffer",
    "TraceCollector", "CoreAccount", "ClassAccount",
    "DEFAULT_EVENT_LIMIT",
    "CriticalPath", "critical_path",
    "chrome_trace", "write_chrome_trace",
    "TraceAnalysis", "analyze",
    "stall_report_markdown", "stall_report_json",
]
