"""Dynamic critical-path extraction over the executed dependence graph.

Every traced instruction carries the dependence edges that constrained
its issue: ``register`` (operand producer, same core), ``memory``
(fence / prior memory op ordering), ``control`` (branch redirect),
``communication`` (cross-thread: the produce feeding a consume, or the
consume that freed a full queue slot), and ``order`` (the in-order
predecessor on the same core).  The *dynamic critical path* is the
chain found by walking backwards from the last-completing event,
at each step following the edge whose constraint bound the issue
cycle — the dependence chain that determined the run's length.

The walk reports the path itself, its length (the final completion
time), and per-edge-kind cost totals: the cycles each edge kind
contributed along the path (``child.complete - parent.complete``,
clamped at zero), plus the root event's own completion.  When the
event ring evicted part of the history the walk stops at the window
edge and says so (``truncated``), attributing the remaining cycles to
the unobserved prefix.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .events import EDGE_KINDS, InstructionEvent

#: Prefer informative edge kinds over the implicit in-order edge when
#: constraints tie.
_KIND_RANK = {"communication": 5, "register": 4, "memory": 3,
              "control": 2, "order": 1}


class CriticalPath:
    """The extracted path, oldest event first."""

    def __init__(self, events: List[InstructionEvent], length: float,
                 edge_kinds: List[str], edge_totals: Dict[str, float],
                 root_cycles: float, truncated: bool,
                 truncated_cycles: float = 0.0):
        self.events = events            # path, program order (root first)
        self.length = length            # == last event's completion time
        self.edge_kinds = edge_kinds    # kind of the edge *into* event i
        self.edge_totals = edge_totals  # per-kind cycle totals
        self.root_cycles = root_cycles  # the root event's own completion
        self.truncated = truncated
        self.truncated_cycles = truncated_cycles

    @property
    def instructions(self) -> int:
        return len(self.events)

    def as_dict(self) -> Dict[str, object]:
        return {
            "length_cycles": self.length,
            "instructions": self.instructions,
            "edge_totals": {kind: cycles for kind, cycles
                            in sorted(self.edge_totals.items())
                            if cycles},
            "root_cycles": self.root_cycles,
            "truncated": self.truncated,
            "truncated_cycles": self.truncated_cycles,
            "events": [event.as_dict() for event in self.events],
        }

    def describe(self, limit: int = 12) -> str:
        lines = ["critical path: %.0f cycles over %d instructions%s"
                 % (self.length, self.instructions,
                    " (window truncated)" if self.truncated else "")]
        for kind in EDGE_KINDS:
            cycles = self.edge_totals.get(kind, 0.0)
            if cycles:
                lines.append("  via %-13s %10.1f cycles"
                             % (kind + ":", cycles))
        shown = self.events[-limit:]
        if len(self.events) > len(shown):
            lines.append("  ... %d earlier path events elided"
                         % (len(self.events) - len(shown)))
        for index, event in enumerate(shown):
            offset = len(self.events) - len(shown)
            kind = self.edge_kinds[offset + index]
            lines.append(
                "  [%s] core %d thread %d iid %-4d %-12s "
                "issue %-8d done %.0f"
                % (kind or "root", event.core, event.thread, event.iid,
                   event.op, event.issue, event.complete))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return "<CriticalPath %.0f cycles, %d events>" % (
            self.length, self.instructions)


def _binding_dep(event: InstructionEvent,
                 by_seq: Dict[int, InstructionEvent]):
    """The dependence edge that bound this event's issue: max
    constraint, informative kinds preferred on ties.  Returns
    ``(pred_or_None, kind, evicted)``."""
    best = None
    best_key = None
    evicted = False
    for dep in event.deps:
        pred_seq, kind = dep[0], dep[1]
        constraint = dep[2] if len(dep) > 2 else None
        pred = by_seq.get(pred_seq)
        if pred is None:
            evicted = True
            continue
        if constraint is None:
            constraint = pred.complete
        key = (float(constraint), _KIND_RANK.get(kind, 0), pred.seq)
        if best_key is None or key > best_key:
            best_key = key
            best = (pred, kind)
    if best is None:
        return None, None, evicted
    return best[0], best[1], evicted


def critical_path(events: Iterable[InstructionEvent]) -> CriticalPath:
    """Extract the dynamic critical path from a window of events."""
    window = list(events)
    if not window:
        return CriticalPath([], 0.0, [], {}, 0.0, truncated=False)
    by_seq = {event.seq: event for event in window}
    current: Optional[InstructionEvent] = max(
        window, key=lambda event: (event.complete, event.seq))
    length = current.complete

    path: List[InstructionEvent] = []
    kinds: List[Optional[str]] = []
    edge_totals: Dict[str, float] = {}
    truncated = False
    truncated_cycles = 0.0
    root_cycles = 0.0
    while current is not None:
        path.append(current)
        pred, kind, evicted = _binding_dep(current, by_seq)
        if pred is None:
            if evicted and current.deps:
                # The binding history fell out of the ring window.
                truncated = True
                truncated_cycles = current.complete
            else:
                root_cycles = current.complete
            kinds.append(None)
            break
        cost = current.complete - pred.complete
        if cost < 0.0:
            cost = 0.0
        edge_totals[kind] = edge_totals.get(kind, 0.0) + cost
        kinds.append(kind)
        current = pred

    path.reverse()
    kinds.reverse()
    return CriticalPath(path, length, kinds, edge_totals, root_cycles,
                        truncated, truncated_cycles)
