"""Chrome Trace Format export.

Emits the JSON object format of the Trace Event Format (the shape
``chrome://tracing`` and Perfetto load): one *process* per simulated
core holding its thread tracks of ``"X"`` complete events, plus a
dedicated "synchronization array" process whose ``"C"`` counter tracks
chart per-queue occupancy over time.  Timestamps are simulated cycles
reported in the format's microsecond field — load the file and read
"us" as "cycles".
"""

from __future__ import annotations

import json
from typing import Dict, List

from .collector import TraceCollector
from .events import TRACE_SCHEMA_VERSION

#: Complete events must have a visible extent; zero-latency issues get
#: this sliver of a cycle so Perfetto renders them.
_MIN_DURATION = 0.01


def chrome_trace(collector: TraceCollector) -> Dict[str, object]:
    """Build the Chrome Trace Format document for one traced run."""
    trace_events: List[Dict[str, object]] = []
    cores = sorted(collector.cores)
    sa_pid = (max(cores) + 1) if cores else 0

    # On a clustered machine (the simulator reported a core -> cluster
    # map spanning >1 cluster) the core tracks are named and ordered by
    # cluster; the flat machine keeps the historical plain "core N"
    # naming bit-for-bit.
    cluster_of = collector.cluster_of
    clustered = len(set(cluster_of.get(core, 0) for core in cores)) > 1

    for core in cores:
        if clustered:
            cluster = cluster_of.get(core, 0)
            name = "cluster %d · core %d" % (cluster, core)
            sort_index = cluster * 64 + core
        else:
            name = "core %d" % core
            sort_index = core
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": core, "tid": 0,
            "args": {"name": name},
        })
        trace_events.append({
            "name": "process_sort_index", "ph": "M", "pid": core,
            "tid": 0, "args": {"sort_index": sort_index},
        })
    trace_events.append({
        "name": "process_name", "ph": "M", "pid": sa_pid, "tid": 0,
        "args": {"name": "synchronization array"},
    })
    trace_events.append({
        "name": "process_sort_index", "ph": "M", "pid": sa_pid,
        "tid": 0,
        "args": {"sort_index": (max(cluster_of.values(), default=0) + 1)
                               * 64 if clustered else sa_pid},
    })

    named_threads = set()
    for event in collector.events:
        key = (event.core, event.thread)
        if key not in named_threads:
            named_threads.add(key)
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": event.core,
                "tid": event.thread,
                "args": {"name": "thread %d" % event.thread},
            })
        args: Dict[str, object] = {"iid": event.iid, "seq": event.seq}
        if event.queue is not None:
            args["queue"] = event.queue
        for category, cycles in event.stall.items():
            if cycles:
                args["stall.%s" % category] = cycles
        if event.extra:
            args.update(event.extra)
        trace_events.append({
            "name": event.op,
            "cat": event.op_class,
            "ph": "X",
            "ts": float(event.issue),
            "dur": max(event.duration, _MIN_DURATION),
            "pid": event.core,
            "tid": event.thread,
            "args": args,
        })

    for sample in collector.queue_samples:
        trace_events.append({
            "name": "sa_q%d occupancy" % sample.queue,
            "ph": "C",
            "ts": float(sample.cycle),
            "pid": sa_pid,
            "tid": 0,
            "args": {"depth": sample.depth},
        })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "schema": TRACE_SCHEMA_VERSION,
            "time_unit": "simulated cycles (in the us field)",
            "total_cycles": collector.total_cycles,
            "events_recorded": len(collector.events),
            "events_dropped": collector.events.dropped,
        },
    }


def write_chrome_trace(path: str, collector: TraceCollector) -> None:
    document = chrome_trace(collector)
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
