"""Trace analysis and the stall-attribution report (markdown + JSON).

:func:`analyze` turns a finished :class:`~repro.trace.collector
.TraceCollector` into a :class:`TraceAnalysis`: the per-core /
per-thread / per-opcode-class attribution tables, stall totals, the
dominant stall reason, and the dynamic critical path — after checking
the reconciliation invariant (execute + attributed stalls == finish
cycles on every core).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .collector import TraceCollector
from .critical_path import CriticalPath, critical_path
from .events import EXECUTE, STALL_CATEGORIES, TRACE_SCHEMA_VERSION


class TraceAnalysis:
    """Everything the stall/critical-path report is built from."""

    def __init__(self, collector: TraceCollector,
                 path: CriticalPath):
        self.collector = collector      # kept for the Chrome export
        self.schema = TRACE_SCHEMA_VERSION
        self.total_cycles = collector.total_cycles
        self.core_finish = list(collector.core_finish)
        self.core_table = collector.core_table()
        self.class_table = collector.class_table()
        self.thread_table = {thread: dict(stalls) for thread, stalls
                             in sorted(collector.threads.items())}
        self.stall_totals = collector.stall_totals()
        self.top_stall_reason, self.top_stall_cycles = \
            collector.top_stall()
        self.critical_path = path
        self.events_recorded = len(collector.events)
        self.events_dropped = collector.events.dropped
        self.queue_peak = dict(collector.queue_peak)
        self.cache_stats = dict(collector.cache_stats)
        self.comm_stats = dict(collector.comm_stats)

    def summary(self) -> Dict[str, object]:
        """The compact, JSON-able digest carried on API results and
        bench metrics."""
        return {
            "schema": self.schema,
            "total_cycles": self.total_cycles,
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
            "critical_path_cycles": self.critical_path.length,
            "critical_path_instructions":
                self.critical_path.instructions,
            "critical_path_truncated": self.critical_path.truncated,
            "critical_path_edge_totals": {
                kind: cycles for kind, cycles
                in sorted(self.critical_path.edge_totals.items())
                if cycles},
            "top_stall_reason": self.top_stall_reason,
            "top_stall_cycles": self.top_stall_cycles,
        }

    def to_dict(self) -> Dict[str, object]:
        data = self.summary()
        data.update({
            "core_finish": self.core_finish,
            "cores": {str(core): row for core, row
                      in self.core_table.items()},
            "threads": {str(thread): row for thread, row
                        in self.thread_table.items()},
            "op_classes": self.class_table,
            "stall_totals": self.stall_totals,
            "queue_peak": {str(queue): depth for queue, depth
                           in sorted(self.queue_peak.items())},
            "cache_stats": self.cache_stats,
            "comm_stats": self.comm_stats,
            "critical_path": self.critical_path.as_dict(),
        })
        return data


def analyze(collector: TraceCollector) -> TraceAnalysis:
    """Verify and analyze a finished collector."""
    collector.verify()
    path = critical_path(collector.events)
    return TraceAnalysis(collector, path)


def _format_row(cells) -> str:
    return "| " + " | ".join(cells) + " |"


def stall_report_markdown(analysis: TraceAnalysis) -> str:
    """The human-readable stall-attribution + critical-path report."""
    lines = ["# Trace report", ""]
    lines.append("- schema: `%s`" % analysis.schema)
    lines.append("- total simulated cycles: **%.0f**"
                 % analysis.total_cycles)
    lines.append("- events: %d recorded, %d dropped (ring bound)"
                 % (analysis.events_recorded, analysis.events_dropped))
    lines.append("- top stall reason: **%s** (%.1f cycles)"
                 % (analysis.top_stall_reason,
                    analysis.top_stall_cycles))
    lines.append("")

    lines.append("## Per-core stall attribution (cycles)")
    lines.append("")
    header = ["core", EXECUTE] + list(STALL_CATEGORIES) + \
        ["total", "finish"]
    lines.append(_format_row(header))
    lines.append(_format_row(["---"] * len(header)))
    for core, row in analysis.core_table.items():
        cells = ["%d" % core, "%.0f" % row[EXECUTE]]
        cells += ["%.1f" % row[category]
                  for category in STALL_CATEGORIES]
        cells += ["%.1f" % row["total"], "%.0f" % row["finish"]]
        lines.append(_format_row(cells))
    lines.append("")

    lines.append("## Per-thread stall attribution (cycles)")
    lines.append("")
    header = ["thread"] + list(STALL_CATEGORIES)
    lines.append(_format_row(header))
    lines.append(_format_row(["---"] * len(header)))
    for thread, stalls in analysis.thread_table.items():
        cells = ["%d" % thread]
        cells += ["%.1f" % stalls[category]
                  for category in STALL_CATEGORIES]
        lines.append(_format_row(cells))
    lines.append("")

    lines.append("## Per-opcode-class stall attribution (cycles)")
    lines.append("")
    header = ["class", "count"] + list(STALL_CATEGORIES)
    lines.append(_format_row(header))
    lines.append(_format_row(["---"] * len(header)))
    for op_class, row in analysis.class_table.items():
        cells = [op_class, "%.0f" % row["count"]]
        cells += ["%.1f" % row[category]
                  for category in STALL_CATEGORIES]
        lines.append(_format_row(cells))
    lines.append("")

    if analysis.queue_peak:
        lines.append("## SA queue peak occupancy")
        lines.append("")
        lines.append(_format_row(["queue", "peak depth"]))
        lines.append(_format_row(["---", "---"]))
        for queue, depth in sorted(analysis.queue_peak.items()):
            lines.append(_format_row(["%d" % queue, "%d" % depth]))
        lines.append("")

    if analysis.cache_stats:
        lines.append("## Cache counters")
        lines.append("")
        lines.append(_format_row(["counter", "value"]))
        lines.append(_format_row(["---", "---"]))
        for key in sorted(analysis.cache_stats):
            lines.append(_format_row(
                [key, "%d" % analysis.cache_stats[key]]))
        lines.append("")

    lines.append("## Dynamic critical path")
    lines.append("")
    lines.append("```")
    lines.append(analysis.critical_path.describe())
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def stall_report_json(analysis: TraceAnalysis,
                      indent: Optional[int] = 2) -> str:
    return json.dumps(analysis.to_dict(), indent=indent,
                      sort_keys=True)
