"""Schema-versioned trace event types and the bounded ring buffer.

One :class:`InstructionEvent` is emitted per *dynamic* instruction the
timing simulator issues: which core/thread ran it, the cycle it issued
and the cycle its result became usable, its opcode and port class, the
raw stall components that delayed its issue, and the dependence edges
(register / memory / control / cross-thread communication / in-order
``order``) that constrained it.  :class:`QueueSample` records the
synchronization-array queue occupancy after every produce/consume —
the counter tracks of the Chrome export.

Events live in a :class:`RingBuffer`: tracing a long run keeps the most
recent ``capacity`` events and *counts* what it dropped, while the
aggregate stall attribution (see :mod:`repro.trace.collector`) is
accumulated outside the ring and therefore never loses cycles.

``TRACE_SCHEMA_VERSION`` is bumped on any incompatible change to the
event layout or the exported documents.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

TRACE_SCHEMA_VERSION = "repro.trace/v1"

#: Stall-attribution categories, in *attribution priority order*: when
#: a gap of issue-less cycles precedes an event, its raw delay
#: components claim the gap in this order (clamped so the attributed
#: total never exceeds the gap).  ``drain`` is the tail between a
#: core's last issue and its last completion; ``other`` absorbs any
#: remainder so per-core cycles always reconcile exactly.
STALL_CATEGORIES = (
    "control",             # branch redirect (mispredict / taken penalty)
    "sa_queue_full",       # produce back-pressure: waited for a slot
    "sa_queue_empty",      # consumed value arrived late (or fence wait)
    "cache_miss",          # operand produced by a load that missed L1
    "operand_wait",        # plain register operand not ready
    "sa_port_contention",  # displaced by the shared SA port budget
    "port_conflict",       # issue-width or port-class conflict
    "drain",               # completion tail after the last issue
    "other",               # unattributed remainder (kept for exactness)
)

#: The non-stall bucket: cycles in which the core issued >= 1 instruction.
EXECUTE = "execute"

#: Dependence-edge kinds of the executed dependence graph.
EDGE_KINDS = ("register", "memory", "control", "communication", "order")

#: Map a value-producer kind to the stall category its consumers charge.
PRODUCER_CATEGORY = {
    "consume": "sa_queue_empty",
    "load_l2": "cache_miss",
    "load_l3": "cache_miss",
    "load_mem": "cache_miss",
}

#: A dependence edge: (producing event seq, edge kind, constraint cycle).
#: ``constraint`` is the earliest issue cycle this edge allowed; ``None``
#: means "resolve to the producer's completion time" at analysis time.
Dep = Tuple[int, str, Optional[float]]


class InstructionEvent:
    """One dynamic instruction as the timing simulator issued it."""

    __slots__ = ("seq", "core", "thread", "iid", "op", "op_class",
                 "issue", "complete", "queue", "stall", "deps", "extra")

    def __init__(self, seq: int, core: int, thread: int, iid: int,
                 op: str, op_class: str, issue: int, complete: float,
                 queue: Optional[int] = None,
                 stall: Optional[Dict[str, float]] = None,
                 deps: Sequence[Dep] = (),
                 extra: Optional[Dict[str, object]] = None):
        self.seq = seq
        self.core = core
        self.thread = thread
        self.iid = iid
        self.op = op
        self.op_class = op_class
        self.issue = issue
        self.complete = complete
        self.queue = queue
        self.stall = stall or {}
        self.deps = tuple(deps)
        self.extra = extra

    @property
    def duration(self) -> float:
        return max(0.0, self.complete - self.issue)

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "seq": self.seq, "core": self.core, "thread": self.thread,
            "iid": self.iid, "op": self.op, "op_class": self.op_class,
            "issue": self.issue, "complete": self.complete,
        }
        if self.queue is not None:
            data["queue"] = self.queue
        if self.stall:
            data["stall"] = {key: value for key, value
                             in self.stall.items() if value}
        if self.deps:
            data["deps"] = [list(dep) for dep in self.deps]
        if self.extra:
            data.update(self.extra)
        return data

    def __repr__(self) -> str:  # pragma: no cover
        return "<event #%d %s core%d @%d..%.1f>" % (
            self.seq, self.op, self.core, self.issue, self.complete)


class QueueSample:
    """SA queue occupancy right after one produce/consume."""

    __slots__ = ("queue", "cycle", "depth")

    def __init__(self, queue: int, cycle: float, depth: int):
        self.queue = queue
        self.cycle = cycle
        self.depth = depth

    def __repr__(self) -> str:  # pragma: no cover
        return "<q%d depth=%d @%.0f>" % (self.queue, self.depth,
                                         self.cycle)


class FunctionalEvent:
    """One step of a *functional* (untimed) execution — the lightweight
    record :mod:`repro.debug` keeps in a ring so deadlock reports can
    show the last instructions executed before progress stopped."""

    __slots__ = ("step", "thread", "op", "iid", "queue")

    def __init__(self, step: int, thread: int, op: str, iid: int,
                 queue: Optional[int] = None):
        self.step = step
        self.thread = thread
        self.op = op
        self.iid = iid
        self.queue = queue

    def describe(self) -> str:
        where = " q%d" % self.queue if self.queue is not None else ""
        return "step %d: thread %d %s (iid %d)%s" % (
            self.step, self.thread, self.op, self.iid, where)

    def __repr__(self) -> str:  # pragma: no cover
        return "<%s>" % self.describe()


class RingBuffer:
    """A bounded event store: keeps the newest ``capacity`` items and
    counts evictions, so long traced runs stay memory-safe while the
    caller can still report exactly how much history was lost."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1, got %d"
                             % capacity)
        self.capacity = capacity
        self._items: deque = deque(maxlen=capacity)
        self.appended = 0

    def append(self, item) -> None:
        self._items.append(item)
        self.appended += 1

    @property
    def dropped(self) -> int:
        return self.appended - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def snapshot(self) -> List:
        return list(self._items)
