"""ASCII tables and bar charts for the experiment harnesses.

Every benchmark prints its table/figure through these helpers so the
regenerated experiments look uniform (and diff cleanly run-to-run).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def table(headers: Sequence[str], rows: Iterable[Sequence[object]],
          title: str = "") -> str:
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(rows: Iterable[Tuple[str, float]], title: str = "",
              width: int = 46, unit: str = "",
              reference: Optional[float] = None) -> str:
    """Horizontal bar chart.  Bars scale to the maximum value (or to
    ``reference`` when given, e.g. 100 for percentages)."""
    rows = list(rows)
    if not rows:
        return title
    peak = reference if reference else max(value for _, value in rows)
    peak = max(peak, 1e-12)
    label_width = max(len(label) for label, _ in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        filled = int(round(width * min(value, peak) / peak))
        bar = "#" * filled
        lines.append("%-*s | %-*s %8.2f%s"
                     % (label_width, label, width, bar, value, unit))
    return "\n".join(lines)


def grouped_bar_chart(rows: Iterable[Tuple[str, Sequence[float]]],
                      series: Sequence[str], title: str = "",
                      width: int = 40, unit: str = "") -> str:
    """One bar per (row, series) pair, grouped by row label."""
    rows = list(rows)
    flattened: List[Tuple[str, float]] = []
    for label, values in rows:
        for name, value in zip(series, values):
            flattened.append(("%s [%s]" % (label, name), value))
    return bar_chart(flattened, title=title, width=width, unit=unit)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)
