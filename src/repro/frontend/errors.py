"""Frontend diagnostics.

Every rejection the Python-to-IR compiler produces is a
:class:`FrontendError` carrying the source position (1-based line,
0-based column, like CPython's own ``ast`` locations) of the offending
construct, so callers can render ``file:line:col: message``.
"""

from __future__ import annotations

from typing import Optional


class FrontendError(Exception):
    """A Python construct the frontend does not accept."""

    def __init__(self, message: str, line: Optional[int] = None,
                 col: Optional[int] = None,
                 filename: Optional[str] = None):
        super().__init__(message)
        self.message = message
        self.line = line
        self.col = col
        self.filename = filename

    def __str__(self) -> str:
        prefix = self.filename or "<source>"
        if self.line is not None:
            prefix += ":%d" % self.line
            if self.col is not None:
                prefix += ":%d" % (self.col + 1)
        return "%s: %s" % (prefix, self.message)
