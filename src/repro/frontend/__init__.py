"""Python-to-IR frontend: compile a documented Python subset into the
textual mini-IR, verified and differentially fuzzed against CPython.

Public surface::

    from repro.frontend import compile_source, compile_function
    program = compile_source(open("kernel.py").read())
    program.function          # verified repro.ir Function

See ``docs/frontend.md`` for the supported subset and the differential
fuzz workflow (``python -m repro fuzz --frontend``).
"""

from .compiler import (CompiledProgram, ParamSpec, compile_function,
                       compile_source, python_callable, random_inputs)
from .errors import FrontendError
from .fuzz import run_frontend_fuzz, sketch_to_python

__all__ = [
    "CompiledProgram",
    "ParamSpec",
    "FrontendError",
    "compile_function",
    "compile_source",
    "python_callable",
    "random_inputs",
    "run_frontend_fuzz",
    "sketch_to_python",
]
