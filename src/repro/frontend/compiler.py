"""AST-based compiler from a Python subset into the mini-IR.

The accepted subset (documented in ``docs/frontend.md``):

* one function with annotated parameters — ``int`` / ``float`` / ``bool``
  scalars and flat arrays declared with string annotations like
  ``"int[64]"`` or ``"float[32]"`` (each array becomes a memory object
  plus a pointer parameter);
* assignments (including augmented and subscript targets), ``if`` /
  ``elif`` / ``else``, ``while``, ``for i in range(...)``, ``break`` /
  ``continue`` / ``return`` / ``pass``;
* arithmetic (``+ - * / // %``), bitwise/shift ops on ints, chained and
  boolean comparisons with Python's short-circuit behaviour, ternary
  expressions, and the intrinsics ``abs`` / ``min`` / ``max`` / ``int``
  / ``float`` / ``bool`` / ``math.sqrt``.

The lowering is *semantics-exact* against CPython on the values the
reference interpreter can observe: opcode flavours are chosen so that
every reachable value compares ``==`` to what the source function
computes (the differential fuzzer in :mod:`repro.frontend.fuzz` holds
this to account).  Notably ``//`` and ``%`` emit a truncating-to-floor
fix-up sequence, ``int()`` always lowers to ``ftoi`` (exact on ints),
and negative array indices wrap exactly like Python's.

Everything unsupported raises :class:`FrontendError` with the source
line/column.  Every emitted function goes through the IR verifier.
"""

from __future__ import annotations

import ast
import inspect
import random
import re
import textwrap
from typing import Dict, List, Optional, Tuple

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .errors import FrontendError

_ARRAY_ANNOTATION = re.compile(r"^\s*(int|float)\s*\[\s*([1-9]\d*)\s*\]\s*$")

#: Registers/labels the compiler reserves for itself.
_RESERVED_PREFIXES = ("__", "p__")

_INT = "int"
_FLOAT = "float"


class ParamSpec:
    """One declared parameter: a typed scalar or a flat array."""

    def __init__(self, name: str, kind: str, type_: str, size: int = 0,
                 declared: str = ""):
        self.name = name
        self.kind = kind        # "scalar" | "array"
        self.type = type_       # "int" | "float" (bool narrows to int)
        self.size = size        # array length (0 for scalars)
        self.declared = declared or type_   # annotation as written

    def __repr__(self) -> str:  # pragma: no cover
        if self.kind == "array":
            return "<ParamSpec %s: %s[%d]>" % (self.name, self.type,
                                               self.size)
        return "<ParamSpec %s: %s>" % (self.name, self.declared)


class CompiledProgram:
    """Result of compiling one Python function to IR."""

    def __init__(self, function: Function, source: str, name: str,
                 params: List[ParamSpec], n_returns: int):
        self.function = function
        self.source = source
        self.name = name
        self.params = params
        self.n_returns = n_returns

    @property
    def scalar_params(self) -> List[ParamSpec]:
        return [p for p in self.params if p.kind == "scalar"]

    @property
    def array_params(self) -> List[ParamSpec]:
        return [p for p in self.params if p.kind == "array"]

    def __repr__(self) -> str:  # pragma: no cover
        return "<CompiledProgram %s (%d params, %d returns)>" % (
            self.name, len(self.params), self.n_returns)


def compile_source(source: str, name: Optional[str] = None,
                   filename: str = "<source>") -> CompiledProgram:
    """Compile Python ``source`` (a module containing the target function)
    to a verified IR function.  ``name`` selects the function; when
    omitted the first top-level ``def`` is used."""
    try:
        module = ast.parse(source, filename=filename)
    except SyntaxError as error:
        raise FrontendError("invalid Python: %s" % error.msg,
                            line=error.lineno,
                            col=(error.offset or 1) - 1,
                            filename=filename)
    target: Optional[ast.FunctionDef] = None
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            if name is None or node.name == name:
                target = node
                break
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        elif (isinstance(node, ast.Expr)
              and isinstance(node.value, ast.Constant)
              and isinstance(node.value.value, str)):
            continue  # module docstring
        else:
            raise FrontendError(
                "unsupported top-level statement (only imports and one "
                "function definition are allowed)",
                line=node.lineno, col=node.col_offset, filename=filename)
    if target is None:
        raise FrontendError(
            "no function definition%s found"
            % ("" if name is None else " named %r" % name),
            line=1, col=0, filename=filename)
    lowering = _Lowering(target, source, filename)
    return lowering.compile()


def compile_function(fn) -> CompiledProgram:
    """Compile a live Python function object via its source."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as error:
        raise FrontendError("cannot retrieve source for %r: %s"
                            % (fn, error))
    return compile_source(source, name=fn.__name__,
                          filename=getattr(fn, "__module__", "<function>"))


def python_callable(source: str, name: Optional[str] = None):
    """Execute ``source`` under a restricted namespace and return the
    target function — the CPython side of the differential oracle."""
    import math

    namespace: Dict[str, object] = {
        "__builtins__": {"abs": abs, "min": min, "max": max,
                         "range": range, "int": int, "float": float,
                         "bool": bool, "__import__": __import__},
        "math": math,
        "sqrt": math.sqrt,
    }
    exec(compile(source, "<frontend-source>", "exec"), namespace)
    if name is None:
        for node in ast.parse(source).body:
            if isinstance(node, ast.FunctionDef):
                name = node.name
                break
    if name is None or name not in namespace:
        raise FrontendError("no function named %r in source" % name)
    return namespace[name]


def random_inputs(program: CompiledProgram, rng: random.Random
                  ) -> Tuple[Dict[str, object], Dict[str, List]]:
    """Deterministic random inputs for a compiled program: scalar args
    keyed by parameter name, array initialisers keyed by array name."""
    args: Dict[str, object] = {}
    arrays: Dict[str, List] = {}
    for param in program.params:
        if param.kind == "array":
            if param.type == _FLOAT:
                arrays[param.name] = [
                    rng.randint(-400, 400) / 16.0
                    for _ in range(param.size)]
            else:
                arrays[param.name] = [rng.randint(-50, 50)
                                      for _ in range(param.size)]
        elif param.declared == "bool":
            args[param.name] = rng.randint(0, 1)
        elif param.type == _FLOAT:
            args[param.name] = rng.randint(-400, 400) / 16.0
        else:
            args[param.name] = rng.randint(-50, 50)
    return args, arrays


# ---------------------------------------------------------------------------
# The lowering itself.

class _Loop:
    __slots__ = ("break_label", "continue_label", "continue_used")

    def __init__(self, break_label: str, continue_label: str):
        self.break_label = break_label
        self.continue_label = continue_label
        self.continue_used = False


class _Lowering:
    def __init__(self, node: ast.FunctionDef, source: str, filename: str):
        self.node = node
        self.source = source
        self.filename = filename
        self.scalars: Dict[str, str] = {}     # name -> "int" | "float"
        self.arrays: Dict[str, Tuple[str, int]] = {}  # name -> (elem, n)
        self.params: List[ParamSpec] = []
        self.loops: List[_Loop] = []
        self.temp_count = 0
        self.label_count = 0
        self.exit_label = "__Lexit"
        self.exit_used = False
        self.n_returns = 0
        self.b: FunctionBuilder = None  # type: ignore[assignment]

    # -- diagnostics --------------------------------------------------------

    def _err(self, node, message: str) -> FrontendError:
        return FrontendError(message,
                             line=getattr(node, "lineno", None),
                             col=getattr(node, "col_offset", None),
                             filename=self.filename)

    def _check_name(self, node, name: str) -> None:
        for prefix in _RESERVED_PREFIXES:
            if name.startswith(prefix):
                raise self._err(node, "identifier %r is reserved (the "
                                      "%r prefix belongs to the compiler)"
                                % (name, prefix))

    # -- fresh names --------------------------------------------------------

    def _temp(self) -> str:
        self.temp_count += 1
        return "__t%d" % self.temp_count

    def _label(self, kind: str) -> str:
        self.label_count += 1
        return "__L%d_%s" % (self.label_count, kind)

    # -- entry point --------------------------------------------------------

    def compile(self) -> CompiledProgram:
        node = self.node
        if node.decorator_list:
            raise self._err(node, "decorators are not supported")
        self._collect_params(node.args)
        self.n_returns = self._scan_returns(node)
        live_outs = ["__ret%d" % i for i in range(self.n_returns)]
        param_regs: List[str] = []
        for param in self.params:
            if param.kind == "array":
                param_regs.append("p__" + param.name)
            else:
                param_regs.append(param.name)
        self.b = FunctionBuilder(node.name, params=param_regs,
                                 live_outs=live_outs)
        for param in self.params:
            if param.kind == "array":
                self.b.mem(param.name, param.size,
                           ptr="p__" + param.name)
        self.b.label("entry")
        body = list(node.body)
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            body = body[1:]  # docstring
        falls = self._body(body)
        if falls:
            if self.n_returns:
                raise self._err(node, "control can fall off the end of "
                                      "%r, but it returns values on other "
                                      "paths" % node.name)
            self.b.jmp(self.exit_label)
            self.exit_used = True
        if self.exit_used:
            self.b.label(self.exit_label)
            self.b.exit()
        function = self.b.build(verify=True)
        return CompiledProgram(function, self.source, node.name,
                               self.params, self.n_returns)

    def _collect_params(self, args: ast.arguments) -> None:
        if args.vararg or args.kwarg or args.kwonlyargs:
            raise self._err(self.node, "*args / **kwargs / keyword-only "
                                       "parameters are not supported")
        if args.defaults or args.kw_defaults:
            raise self._err(self.node,
                            "parameter defaults are not supported")
        for arg in list(args.posonlyargs) + list(args.args):
            self._check_name(arg, arg.arg)
            if arg.annotation is None:
                raise self._err(arg, "parameter %r needs a type "
                                     "annotation (int, float, bool, or "
                                     "\"int[N]\" / \"float[N]\")"
                                % arg.arg)
            spec = self._parse_annotation(arg)
            if arg.arg in self.scalars or arg.arg in self.arrays:
                raise self._err(arg, "duplicate parameter %r" % arg.arg)
            self.params.append(spec)
            if spec.kind == "array":
                self.arrays[spec.name] = (spec.type, spec.size)
            else:
                self.scalars[spec.name] = spec.type

    def _parse_annotation(self, arg: ast.arg) -> ParamSpec:
        annotation = arg.annotation
        if isinstance(annotation, ast.Name):
            if annotation.id in ("int", "bool"):
                return ParamSpec(arg.arg, "scalar", _INT,
                                 declared=annotation.id)
            if annotation.id == "float":
                return ParamSpec(arg.arg, "scalar", _FLOAT)
        elif (isinstance(annotation, ast.Constant)
              and isinstance(annotation.value, str)):
            match = _ARRAY_ANNOTATION.match(annotation.value)
            if match:
                return ParamSpec(arg.arg, "array", match.group(1),
                                 size=int(match.group(2)),
                                 declared=annotation.value)
        raise self._err(annotation or arg,
                        "unsupported annotation on parameter %r (use "
                        "int, float, bool, or \"int[N]\" / \"float[N]\")"
                        % arg.arg)

    def _scan_returns(self, node: ast.FunctionDef) -> int:
        arity: Optional[int] = None
        first: Optional[ast.Return] = None
        for child in ast.walk(node):
            if not isinstance(child, ast.Return):
                continue
            if child.value is None or (
                    isinstance(child.value, ast.Constant)
                    and child.value.value is None):
                this = 0
            elif isinstance(child.value, ast.Tuple):
                this = len(child.value.elts)
            else:
                this = 1
            if arity is None:
                arity, first = this, child
            elif arity != this:
                raise self._err(child, "inconsistent return arity (%d "
                                       "here vs %d at line %s)"
                                % (this, arity,
                                   getattr(first, "lineno", "?")))
        return arity or 0

    # -- statements ---------------------------------------------------------

    def _body(self, statements) -> bool:
        """Compile a statement list into the open block; returns whether
        control can fall through to whatever follows.  Statements after a
        terminating one are unreachable in CPython too and are skipped."""
        for statement in statements:
            if not self._stmt(statement):
                return False
        return True

    def _stmt(self, node) -> bool:
        if isinstance(node, ast.Assign):
            return self._compile_assign(node)
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                raise self._err(node, "bare annotations are not supported")
            if not isinstance(node.target, ast.Name):
                raise self._err(node, "annotated assignment targets must "
                                      "be plain names")
            self._assign_to(node.target, *self._expr(node.value))
            return True
        if isinstance(node, ast.AugAssign):
            return self._compile_augassign(node)
        if isinstance(node, ast.If):
            return self._compile_if(node)
        if isinstance(node, ast.While):
            return self._compile_while(node)
        if isinstance(node, ast.For):
            return self._compile_for(node)
        if isinstance(node, ast.Return):
            return self._compile_return(node)
        if isinstance(node, ast.Break):
            if not self.loops:
                raise self._err(node, "'break' outside a loop")
            self.b.jmp(self.loops[-1].break_label)
            return False
        if isinstance(node, ast.Continue):
            if not self.loops:
                raise self._err(node, "'continue' outside a loop")
            self.loops[-1].continue_used = True
            self.b.jmp(self.loops[-1].continue_label)
            return False
        if isinstance(node, ast.Pass):
            return True
        if (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            return True  # stray docstring: harmless
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Call):
                # Diagnose unsupported calls; a supported intrinsic used
                # as a statement is a no-op, exactly as in CPython.
                self._expr(node.value)
                return True
            raise self._err(node, "expression statements have no effect "
                                  "in the supported subset")
        if isinstance(node, ast.FunctionDef):
            raise self._err(node, "nested function definitions are not "
                                  "supported")
        raise self._err(node, "unsupported statement: %s"
                        % type(node).__name__)

    def _compile_assign(self, node: ast.Assign) -> bool:
        if len(node.targets) != 1:
            raise self._err(node, "chained assignment is not supported")
        target = node.targets[0]
        if isinstance(target, ast.Tuple):
            raise self._err(node, "tuple unpacking is not supported")
        value, type_ = self._expr(node.value)
        self._assign_to(target, value, type_)
        return True

    def _assign_to(self, target, value_reg: str, type_: str) -> None:
        if isinstance(target, ast.Name):
            self._check_name(target, target.id)
            if target.id in self.arrays:
                raise self._err(target, "cannot rebind array parameter %r"
                                % target.id)
            self.b.mov(target.id, value_reg)
            self.scalars[target.id] = type_
            return
        if isinstance(target, ast.Subscript):
            name, elem, _ = self._array_of(target)
            if elem == _INT and type_ == _FLOAT:
                raise self._err(target, "cannot store a float into int "
                                        "array %r" % name)
            address = self._subscript_address(target)
            self.b.store(address, value_reg, region=name)
            return
        raise self._err(target, "unsupported assignment target: %s"
                        % type(target).__name__)

    def _compile_augassign(self, node: ast.AugAssign) -> bool:
        target = node.target
        if isinstance(target, ast.Name):
            current, current_type = self._expr(target)
            value, value_type = self._expr(node.value)
            result, type_ = self._apply_binop(
                node.op, current, current_type, value, value_type, node)
            self._assign_to(target, result, type_)
            return True
        if isinstance(target, ast.Subscript):
            name, elem, _ = self._array_of(target)
            address = self._subscript_address(target)
            current = self._temp()
            self.b.load(current, address, region=name)
            value, value_type = self._expr(node.value)
            result, type_ = self._apply_binop(
                node.op, current, elem, value, value_type, node)
            if elem == _INT and type_ == _FLOAT:
                raise self._err(target, "cannot store a float into int "
                                        "array %r" % name)
            self.b.store(address, result, region=name)
            return True
        raise self._err(target, "unsupported assignment target: %s"
                        % type(target).__name__)

    def _compile_if(self, node: ast.If) -> bool:
        cond, _ = self._expr(node.test)
        then_label = self._label("then")
        join_label = self._label("endif")
        else_label = self._label("else") if node.orelse else join_label
        self.b.br(cond, then_label, else_label)
        before = dict(self.scalars)

        self.b.label(then_label)
        then_falls = self._body(node.body)
        then_env = self.scalars
        if then_falls:
            self.b.jmp(join_label)

        if node.orelse:
            self.b.label(else_label)
            self.scalars = dict(before)
            else_falls = self._body(node.orelse)
            else_env = self.scalars
            if else_falls:
                self.b.jmp(join_label)
        else:
            else_falls, else_env = True, before

        if then_falls and else_falls:
            self.scalars = self._merge(then_env, else_env)
        elif then_falls:
            self.scalars = then_env
        elif else_falls:
            self.scalars = else_env
        else:
            self.scalars = dict(before)
            return False
        self.b.label(join_label)
        return True

    def _compile_while(self, node: ast.While) -> bool:
        if node.orelse:
            raise self._err(node, "while/else is not supported")
        header = self._label("while")
        body_label = self._label("whilebody")
        done_label = self._label("whiledone")
        before = dict(self.scalars)
        self.b.jmp(header)
        self.b.label(header)
        cond, _ = self._expr(node.test)
        self.b.br(cond, body_label, done_label)
        self.b.label(body_label)
        self.loops.append(_Loop(done_label, header))
        falls = self._body(node.body)
        self.loops.pop()
        body_env = self.scalars
        if falls:
            self.b.jmp(header)
        self.b.label(done_label)
        self.scalars = self._merge(before, body_env)
        return True

    def _compile_for(self, node: ast.For) -> bool:
        if node.orelse:
            raise self._err(node, "for/else is not supported")
        if not isinstance(node.target, ast.Name):
            raise self._err(node.target, "the loop variable must be a "
                                         "plain name")
        self._check_name(node.target, node.target.id)
        if node.target.id in self.arrays:
            raise self._err(node.target, "cannot rebind array parameter "
                            "%r" % node.target.id)
        call = node.iter
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "range"):
            raise self._err(node.iter, "only 'for ... in range(...)' "
                                       "loops are supported")
        if call.keywords or len(call.args) not in (1, 2, 3):
            raise self._err(call, "range() takes 1 to 3 positional "
                                  "arguments")
        step = 1
        if len(call.args) == 3:
            step = self._constant_int(call.args[2],
                                      "the range() step must be a "
                                      "non-zero integer constant")
            if step == 0:
                raise self._err(call.args[2], "range() step must not be "
                                              "zero")
        if len(call.args) == 1:
            start_reg = self._temp()
            self.b.movi(start_reg, 0)
            stop_node = call.args[0]
        else:
            start_reg = self._int_bound(call.args[0])
            stop_node = call.args[1]
        stop_reg = self._int_bound(stop_node)

        counter = self._temp()
        cond = self._temp()
        header = self._label("for")
        body_label = self._label("forbody")
        latch_label = self._label("forlatch")
        done_label = self._label("fordone")
        before = dict(self.scalars)

        self.b.mov(counter, start_reg)
        self.b.jmp(header)
        self.b.label(header)
        if step > 0:
            self.b.cmplt(cond, counter, stop_reg)
        else:
            self.b.cmpgt(cond, counter, stop_reg)
        self.b.br(cond, body_label, done_label)
        self.b.label(body_label)
        # Copy the internal counter into the user variable at the top of
        # the body: reassigning it inside the body then matches Python
        # (the next iteration overwrites it), and after an empty range
        # the variable keeps its prior binding, exactly like CPython.
        self.b.mov(node.target.id, counter)
        self.scalars[node.target.id] = _INT
        loop = _Loop(done_label, latch_label)
        self.loops.append(loop)
        falls = self._body(node.body)
        self.loops.pop()
        body_env = self.scalars
        if falls:
            self.b.jmp(latch_label)
        if falls or loop.continue_used:
            self.b.label(latch_label)
            self.b.add(counter, counter, step)
            self.b.jmp(header)
        self.b.label(done_label)
        self.scalars = self._merge(before, body_env)
        return True

    def _int_bound(self, node) -> str:
        reg, type_ = self._expr(node)
        if type_ != _INT:
            raise self._err(node, "range() bounds must be integers")
        return reg

    def _constant_int(self, node, message: str) -> int:
        if (isinstance(node, ast.UnaryOp)
                and isinstance(node.op, ast.USub)
                and isinstance(node.operand, ast.Constant)
                and type(node.operand.value) is int):
            return -node.operand.value
        if isinstance(node, ast.Constant) and type(node.value) is int:
            return node.value
        raise self._err(node, message)

    def _compile_return(self, node: ast.Return) -> bool:
        value = node.value
        if value is None or (isinstance(value, ast.Constant)
                             and value.value is None):
            values: List = []
        elif isinstance(value, ast.Tuple):
            values = list(value.elts)
        else:
            values = [value]
        # Arity consistency was checked by the pre-scan.
        for index, expression in enumerate(values):
            reg, _ = self._expr(expression)
            self.b.mov("__ret%d" % index, reg)
        self.b.jmp(self.exit_label)
        self.exit_used = True
        return False

    def _merge(self, left: Dict[str, str],
               right: Dict[str, str]) -> Dict[str, str]:
        """Join two environments at a control-flow merge: a variable
        survives only when assigned on both paths (CPython would raise
        UnboundLocalError otherwise), and its type widens to float when
        the paths disagree — float opcodes subsume int values exactly."""
        merged: Dict[str, str] = {}
        for name, type_ in left.items():
            other = right.get(name)
            if other is None:
                continue
            merged[name] = _FLOAT if _FLOAT in (type_, other) else _INT
        return merged

    # -- expressions --------------------------------------------------------

    def _expr(self, node) -> Tuple[str, str]:
        """Compile an expression; returns (register, static type)."""
        if isinstance(node, ast.Name):
            if node.id in self.scalars:
                return node.id, self.scalars[node.id]
            if node.id in self.arrays:
                raise self._err(node, "array %r used as a scalar value"
                                % node.id)
            raise self._err(node, "name %r is not defined on every path "
                                  "reaching this use" % node.id)
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.BinOp):
            left, left_type = self._expr(node.left)
            right, right_type = self._expr(node.right)
            return self._apply_binop(node.op, left, left_type,
                                     right, right_type, node)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node)
        if isinstance(node, ast.IfExp):
            return self._ifexp(node)
        if isinstance(node, ast.Subscript):
            name, elem, _ = self._array_of(node)
            address = self._subscript_address(node)
            dest = self._temp()
            self.b.load(dest, address, region=name)
            return dest, elem
        if isinstance(node, ast.Call):
            return self._call(node)
        raise self._err(node, "unsupported expression: %s"
                        % type(node).__name__)

    def _constant(self, node: ast.Constant) -> Tuple[str, str]:
        value = node.value
        dest = self._temp()
        if isinstance(value, bool):
            self.b.movi(dest, 1 if value else 0)
            return dest, _INT
        if isinstance(value, int):
            self.b.movi(dest, value)
            return dest, _INT
        if isinstance(value, float):
            self.b.movi(dest, value)
            return dest, _FLOAT
        raise self._err(node, "unsupported constant %r (only int, float "
                              "and bool literals)" % (value,))

    _INT_ONLY = {ast.FloorDiv: "//", ast.Mod: "%", ast.LShift: "<<",
                 ast.RShift: ">>", ast.BitAnd: "&", ast.BitOr: "|",
                 ast.BitXor: "^"}
    _INT_OPS = {ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul",
                ast.LShift: "shl", ast.RShift: "shr", ast.BitAnd: "and",
                ast.BitOr: "or", ast.BitXor: "xor"}
    _FLOAT_OPS = {ast.Add: "fadd", ast.Sub: "fsub", ast.Mult: "fmul"}

    def _apply_binop(self, op, left: str, left_type: str, right: str,
                     right_type: str, node) -> Tuple[str, str]:
        kind = type(op)
        joined = _FLOAT if _FLOAT in (left_type, right_type) else _INT
        if kind in self._INT_ONLY and joined == _FLOAT:
            raise self._err(node, "%r requires int operands in the "
                                  "supported subset"
                            % self._INT_ONLY[kind])
        if kind is ast.Div:
            dest = self._temp()
            self.b.fdiv(dest, left, right)
            return dest, _FLOAT
        if kind is ast.FloorDiv:
            return self._floor_divmod(left, right, want_mod=False), _INT
        if kind is ast.Mod:
            return self._floor_divmod(left, right, want_mod=True), _INT
        if kind is ast.Pow:
            raise self._err(node, "the ** operator is not supported "
                                  "(use repeated multiplication)")
        table = self._FLOAT_OPS if joined == _FLOAT else self._INT_OPS
        name = table.get(kind) or self._INT_OPS.get(kind)
        if name is None:
            raise self._err(node, "unsupported binary operator: %s"
                            % kind.__name__)
        dest = self._temp()
        self.b.alu(name, dest, left, right)
        return dest, joined

    def _floor_divmod(self, left: str, right: str, want_mod: bool) -> str:
        """Python's // and % floor; the machine's idiv/imod truncate.
        q_floor = q_trunc - (r != 0 and sign(a) != sign(b));
        r_floor = r_trunc + fix * b."""
        quotient, remainder = self._temp(), self._temp()
        self.b.idiv(quotient, left, right)
        self.b.imod(remainder, left, right)
        nonzero, sign_l, sign_r = self._temp(), self._temp(), self._temp()
        self.b.cmpne(nonzero, remainder, 0)
        self.b.cmplt(sign_l, left, 0)
        self.b.cmplt(sign_r, right, 0)
        differs, fix = self._temp(), self._temp()
        self.b.xor(differs, sign_l, sign_r)
        self.b.and_(fix, nonzero, differs)
        dest = self._temp()
        if want_mod:
            scaled = self._temp()
            self.b.mul(scaled, fix, right)
            self.b.add(dest, remainder, scaled)
        else:
            self.b.sub(dest, quotient, fix)
        return dest

    def _unary(self, node: ast.UnaryOp) -> Tuple[str, str]:
        if (isinstance(node.op, ast.USub)
                and isinstance(node.operand, ast.Constant)
                and type(node.operand.value) in (int, float)):
            dest = self._temp()
            self.b.movi(dest, -node.operand.value)
            return dest, (_FLOAT if isinstance(node.operand.value, float)
                          else _INT)
        operand, type_ = self._expr(node.operand)
        if isinstance(node.op, ast.UAdd):
            return operand, type_
        dest = self._temp()
        if isinstance(node.op, ast.USub):
            self.b.alu("fneg" if type_ == _FLOAT else "neg",
                       dest, operand)
            return dest, type_
        if isinstance(node.op, ast.Not):
            self.b.alu("cmpeq", dest, operand, 0)
            return dest, _INT
        if isinstance(node.op, ast.Invert):
            if type_ == _FLOAT:
                raise self._err(node, "'~' requires an int operand")
            self.b.alu("not", dest, operand)
            return dest, _INT
        raise self._err(node, "unsupported unary operator")

    _CMP = {ast.Eq: "cmpeq", ast.NotEq: "cmpne", ast.Lt: "cmplt",
            ast.LtE: "cmple", ast.Gt: "cmpgt", ast.GtE: "cmpge"}

    def _compare(self, node: ast.Compare) -> Tuple[str, str]:
        for op in node.ops:
            if type(op) not in self._CMP:
                raise self._err(node, "unsupported comparison: %s"
                                % type(op).__name__)
        previous, _ = self._expr(node.left)
        if len(node.ops) == 1:
            operand, _ = self._expr(node.comparators[0])
            dest = self._temp()
            self.b.alu(self._CMP[type(node.ops[0])], dest, previous,
                       operand)
            return dest, _INT
        # Chained comparison: each link short-circuits, and every middle
        # operand is evaluated exactly once, as in CPython.
        result = self._temp()
        join = self._label("cmpjoin")
        for index, (op, comparator) in enumerate(
                zip(node.ops, node.comparators)):
            operand, _ = self._expr(comparator)
            link = self._temp()
            self.b.alu(self._CMP[type(op)], link, previous, operand)
            self.b.mov(result, link)
            if index < len(node.ops) - 1:
                next_label = self._label("cmpnext")
                self.b.br(result, next_label, join)
                self.b.label(next_label)
            previous = operand
        self.b.jmp(join)
        self.b.label(join)
        return result, _INT

    def _boolop(self, node: ast.BoolOp) -> Tuple[str, str]:
        is_and = isinstance(node.op, ast.And)
        result = self._temp()
        join = self._label("booljoin")
        types: List[str] = []
        for index, value in enumerate(node.values):
            reg, type_ = self._expr(value)
            types.append(type_)
            self.b.mov(result, reg)
            if index < len(node.values) - 1:
                more = self._label("boolnext")
                if is_and:
                    self.b.br(result, more, join)
                else:
                    self.b.br(result, join, more)
                self.b.label(more)
        self.b.jmp(join)
        self.b.label(join)
        joined = _FLOAT if _FLOAT in types else _INT
        return result, joined

    def _ifexp(self, node: ast.IfExp) -> Tuple[str, str]:
        cond, _ = self._expr(node.test)
        result = self._temp()
        then_label = self._label("ternthen")
        else_label = self._label("ternelse")
        join_label = self._label("ternjoin")
        self.b.br(cond, then_label, else_label)
        self.b.label(then_label)
        then_reg, then_type = self._expr(node.body)
        self.b.mov(result, then_reg)
        self.b.jmp(join_label)
        self.b.label(else_label)
        else_reg, else_type = self._expr(node.orelse)
        self.b.mov(result, else_reg)
        self.b.jmp(join_label)
        self.b.label(join_label)
        joined = _FLOAT if _FLOAT in (then_type, else_type) else _INT
        return result, joined

    def _array_of(self, node: ast.Subscript) -> Tuple[str, str, int]:
        if not isinstance(node.value, ast.Name):
            raise self._err(node, "only direct array parameters can be "
                                  "subscripted")
        name = node.value.id
        if name not in self.arrays:
            raise self._err(node, "%r is not an array parameter" % name)
        elem, size = self.arrays[name]
        return name, elem, size

    def _subscript_address(self, node: ast.Subscript) -> str:
        """Address of ``arr[index]`` with Python's negative-index wrap:
        an index in [-N, 0) selects from the end; anything further out
        lands outside the object and traps, as CPython raises."""
        name, _, size = self._array_of(node)
        index_node = node.slice
        if isinstance(index_node, ast.Slice):
            raise self._err(node, "array slices are not supported")
        index, index_type = self._expr(index_node)
        if index_type == _FLOAT:
            raise self._err(index_node, "array indices must be integers")
        negative, wrap, wrapped = (self._temp(), self._temp(),
                                   self._temp())
        self.b.cmplt(negative, index, 0)
        self.b.mul(wrap, negative, size)
        self.b.add(wrapped, index, wrap)
        address = self._temp()
        self.b.add(address, "p__" + name, wrapped)
        return address

    def _call(self, node: ast.Call) -> Tuple[str, str]:
        if node.keywords:
            raise self._err(node, "keyword arguments are not supported")
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif (isinstance(node.func, ast.Attribute)
              and isinstance(node.func.value, ast.Name)
              and node.func.value.id == "math"):
            name = node.func.attr
        if name == "abs" and len(node.args) == 1:
            operand, type_ = self._expr(node.args[0])
            dest = self._temp()
            self.b.alu("abs", dest, operand)
            return dest, type_
        if name in ("min", "max") and len(node.args) == 2:
            left, left_type = self._expr(node.args[0])
            right, right_type = self._expr(node.args[1])
            dest = self._temp()
            self.b.alu(name, dest, left, right)
            joined = (_FLOAT if _FLOAT in (left_type, right_type)
                      else _INT)
            return dest, joined
        if name == "int" and len(node.args) == 1:
            operand, _ = self._expr(node.args[0])
            dest = self._temp()
            self.b.ftoi(dest, operand)   # trunc: exact on ints too
            return dest, _INT
        if name == "float" and len(node.args) == 1:
            operand, _ = self._expr(node.args[0])
            dest = self._temp()
            self.b.itof(dest, operand)
            return dest, _FLOAT
        if name == "bool" and len(node.args) == 1:
            operand, _ = self._expr(node.args[0])
            dest = self._temp()
            self.b.alu("cmpne", dest, operand, 0)
            return dest, _INT
        if name == "sqrt" and len(node.args) == 1:
            operand, _ = self._expr(node.args[0])
            dest = self._temp()
            self.b.fsqrt(dest, operand)
            return dest, _FLOAT
        raise self._err(node, "unsupported call%s (intrinsics: abs, "
                              "min, max, int, float, bool, math.sqrt)"
                        % ("" if name is None else " to %r" % name))
