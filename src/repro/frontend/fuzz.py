"""Differential fuzzing of the Python frontend against CPython.

``python -m repro fuzz --frontend`` drives this module: each iteration
samples a program sketch from the shared structured-program grammar
(:mod:`repro.check.generate`), renders it to *Python source* in the
frontend's supported subset (:func:`sketch_to_python`), compiles that
source with :mod:`repro.frontend.compiler`, and executes both sides —
the source under CPython, the emitted IR under the reference
interpreter — on deterministic random inputs.  Any observable
difference (return values, final array contents, or error-vs-success)
is a bug in the frontend's lowering; the failing sketch is shrunk by
greedy deletion and persisted into the corpus directory.

Errors are compared by *kind* only: when both sides raise (division by
zero, out-of-range index, overflow), the case passes — the frontend
promises matching values on whatever CPython can compute, and a trap
wherever CPython raises.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Optional, Tuple

from ..check.generate import (ProgramSketch, random_sketch,
                              shrink_candidates, sketch_size,
                              sketch_to_json)
from ..interp.interpreter import run_function
from ..ir.printer import format_function
from .compiler import CompiledProgram, compile_source, python_callable
from .errors import FrontendError

MEM_SIZE = 32
ARG_SETS_PER_PROGRAM = 3

#: How each grammar ALU op renders as a Python expression.
_PY_BINOPS = {
    "add": "{a} + {b}", "sub": "{a} - {b}", "mul": "{a} * {b}",
    "and": "{a} & {b}", "or": "{a} | {b}", "xor": "{a} ^ {b}",
    "min": "min({a}, {b})", "max": "max({a}, {b})",
    "cmpeq": "int({a} == {b})", "cmpne": "int({a} != {b})",
    "cmplt": "int({a} < {b})", "cmple": "int({a} <= {b})",
    "cmpgt": "int({a} > {b})", "cmpge": "int({a} >= {b})",
}

#: A fixed float-flavoured epilogue so every generated program also
#: exercises the FP lowering (conversions, fdiv, sqrt, ternary).
_EPILOGUE = [
    "fa = float(r0) / 16.0",
    "fb = math.sqrt(float(abs(r1) + 1)) * 0.5",
    "fr = fa + fb if fa < fb else fa - fb",
    "return (r0, r1, r2 + int(fr))",
]


def sketch_to_python(sketch: ProgramSketch) -> str:
    """Render a program sketch as Python source in the frontend subset.

    The rendering is deterministic in the sketch alone (stable corpus
    entries) and intentionally varies surface syntax — augmented
    assignment when the destination aliases an operand, ternaries for
    some min/max — so the fuzz load covers more of the compiler than a
    single canonical spelling would."""
    lines: List[str] = [
        "import math",
        "",
        "",
        "def fuzz_program(in0: int, in1: int, m: \"int[%d]\"):" % MEM_SIZE,
        "    r0 = in0",
        "    r1 = in1",
        "    r2 = in0 + in1",
        "    r3 = in0 - in1",
        "    r4 = 7",
        "    r5 = -3",
    ]
    loop_depth_counter = [0]
    statement_counter = [0]

    def reg(index: int) -> str:
        return "r%d" % index

    def emit(statements, indent: int, in_loop: bool) -> None:
        pad = "    " * indent
        wrote = False
        for statement in statements:
            kind = statement[0]
            statement_counter[0] += 1
            variant = statement_counter[0]
            if kind == "breakif":
                _, cond = statement
                if not in_loop:
                    continue  # mirrors render_program's no-op
                lines.append(pad + "if %s > 15:" % reg(cond))
                lines.append(pad + "    break")
                wrote = True
            elif kind == "alu":
                _, op, dest, a, b = statement
                if op in ("add", "sub", "mul", "and", "or", "xor") \
                        and dest == a and variant % 2:
                    symbol = _PY_BINOPS[op].format(a="", b="").strip()
                    lines.append(pad + "%s %s= %s"
                                 % (reg(dest), symbol, reg(b)))
                elif op in ("min", "max") and variant % 3 == 0:
                    relation = "<=" if op == "min" else ">="
                    lines.append(pad + "%s = %s if %s %s %s else %s"
                                 % (reg(dest), reg(a), reg(a), relation,
                                    reg(b), reg(b)))
                else:
                    lines.append(pad + "%s = %s"
                                 % (reg(dest),
                                    _PY_BINOPS[op].format(a=reg(a),
                                                          b=reg(b))))
                wrote = True
            elif kind == "movi":
                _, dest, value = statement
                lines.append(pad + "%s = %d" % (reg(dest), value))
                wrote = True
            elif kind == "load":
                _, dest, addr = statement
                lines.append(pad + "%s = m[%s & %d]"
                             % (reg(dest), reg(addr), MEM_SIZE - 1))
                wrote = True
            elif kind == "store":
                _, value, addr = statement
                lines.append(pad + "m[%s & %d] = %s"
                             % (reg(addr), MEM_SIZE - 1, reg(value)))
                wrote = True
            elif kind == "if":
                _, cond, then_statements, else_statements = statement
                lines.append(pad + "if %s > 0:" % reg(cond))
                emit(then_statements, indent + 1, in_loop)
                lines.append(pad + "else:")
                emit(else_statements, indent + 1, in_loop)
                wrote = True
            elif kind == "loop":
                _, trips, body = statement
                loop_depth_counter[0] += 1
                loop_var = "i%d" % loop_depth_counter[0]
                lines.append(pad + "for %s in range(%d):"
                             % (loop_var, trips))
                emit(body, indent + 1, True)
                wrote = True
            else:  # pragma: no cover
                raise AssertionError("unknown statement %r" % (statement,))
        if not wrote:
            lines.append(pad + "pass")

    emit(sketch.statements, 1, False)
    for line in _EPILOGUE:
        lines.append("    " + line)
    return "\n".join(lines) + "\n"


def fuzz_args(rng: random.Random) -> Dict[str, object]:
    return {"in0": rng.randint(-50, 50), "in1": rng.randint(-50, 50),
            "memory": [rng.randint(-50, 50) for _ in range(MEM_SIZE)]}


def _values_equal(a, b) -> bool:
    if a == b:
        return True
    return a != a and b != b  # NaN on both sides


def run_differential_case(program: CompiledProgram, fn,
                          args: Dict[str, object]) -> Optional[str]:
    """Execute one input set on both sides; return a divergence
    description, or None when the observables agree."""
    python_memory = list(args["memory"])
    scalar_args = {"in0": args["in0"], "in1": args["in1"]}
    try:
        python_result = fn(args["in0"], args["in1"], python_memory)
        python_error = None
    except Exception as error:
        python_result, python_error = None, type(error).__name__
    try:
        run = run_function(program.function, scalar_args,
                           initial_memory={"m": list(args["memory"])})
        ir_error = None
    except Exception as error:
        run, ir_error = None, type(error).__name__
    if python_error is not None or ir_error is not None:
        if python_error is not None and ir_error is not None:
            return None  # both raised: matching error observable
        return ("error mismatch: CPython %s vs IR %s"
                % (python_error or "ok", ir_error or "ok"))
    ir_result = tuple(run.live_outs["__ret%d" % index]
                      for index in range(program.n_returns))
    if not isinstance(python_result, tuple):
        python_result = (python_result,)
    if len(python_result) != len(ir_result) or not all(
            _values_equal(a, b)
            for a, b in zip(python_result, ir_result)):
        return ("return mismatch: CPython %r vs IR %r"
                % (python_result, ir_result))
    ir_memory = run.mem_object("m")
    for index, (a, b) in enumerate(zip(python_memory, ir_memory)):
        if not _values_equal(a, b):
            return ("memory mismatch at m[%d]: CPython %r vs IR %r"
                    % (index, a, b))
    return None


def _evaluate_sketch(sketch: ProgramSketch,
                     arg_sets: List[Dict[str, object]]
                     ) -> Optional[Tuple[str, str]]:
    """Compile and run one sketch over the arg sets; returns
    (kind, detail) on failure."""
    source = sketch_to_python(sketch)
    try:
        program = compile_source(source, name="fuzz_program")
    except FrontendError as error:
        return "frontend-error", str(error)
    except Exception as error:  # pragma: no cover - compiler crash
        return "frontend-crash", "%s: %s" % (type(error).__name__, error)
    fn = python_callable(source, name="fuzz_program")
    for args in arg_sets:
        divergence = run_differential_case(program, fn, args)
        if divergence is not None:
            return "divergence", divergence
    return None


class FrontendFuzzFailure:
    """One minimized frontend counterexample."""

    def __init__(self, iteration: int, kind: str, detail: str,
                 sketch: ProgramSketch,
                 arg_sets: List[Dict[str, object]], original_size: int):
        self.iteration = iteration
        self.kind = kind
        self.detail = detail
        self.sketch = sketch
        self.arg_sets = arg_sets
        self.original_size = original_size

    @property
    def shrunk_size(self) -> int:
        return sketch_size(self.sketch)

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "kind": self.kind,
            "detail": self.detail,
            "sketch": json.loads(sketch_to_json(self.sketch)),
            "arg_sets": self.arg_sets,
            "original_size": self.original_size,
            "shrunk_size": self.shrunk_size,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return "<FrontendFuzzFailure it%d %s>" % (self.iteration,
                                                  self.kind)


class FrontendFuzzReport:
    """Aggregate outcome of one frontend fuzzing run."""

    def __init__(self, seed: int, iterations: int):
        self.seed = seed
        self.iterations = iterations
        self.programs_generated = 0
        self.cases_run = 0
        self.shrink_attempts = 0
        self.failures: List[FrontendFuzzFailure] = []
        self.counters: Dict[str, int] = {}
        self.elapsed = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def to_dict(self) -> dict:
        return {
            "mode": "frontend",
            "seed": self.seed,
            "iterations": self.iterations,
            "programs_generated": self.programs_generated,
            "cases_run": self.cases_run,
            "shrink_attempts": self.shrink_attempts,
            "elapsed_seconds": round(self.elapsed, 3),
            "counters": dict(sorted(self.counters.items())),
            "failures": [failure.to_dict()
                         for failure in self.failures],
        }

    def summary(self) -> str:
        return ("frontend fuzz: seed %d, %d programs, %d cases, "
                "%d failure(s), %.1fs"
                % (self.seed, self.programs_generated, self.cases_run,
                   len(self.failures), self.elapsed))


def _shrink(sketch: ProgramSketch, arg_sets: List[Dict[str, object]],
            report: FrontendFuzzReport,
            max_attempts: int = 150) -> ProgramSketch:
    current = sketch
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in shrink_candidates(current):
            attempts += 1
            report.shrink_attempts += 1
            if attempts >= max_attempts:
                break
            try:
                failure = _evaluate_sketch(candidate, arg_sets)
            except Exception:
                continue
            if failure is not None:
                current = candidate
                improved = True
                break
    return current


def run_frontend_fuzz(seed: int = 0, iterations: int = 100,
                      corpus_dir: Optional[str] = None, depth: int = 2,
                      progress=None) -> FrontendFuzzReport:
    """Run the CPython-vs-IR differential loop; see module docstring."""
    report = FrontendFuzzReport(seed, iterations)
    start = time.perf_counter()
    for iteration in range(iterations):
        rng = random.Random(seed * 1_000_003 + iteration)
        sketch = random_sketch(rng, depth=depth)
        arg_sets = [fuzz_args(rng)
                    for _ in range(ARG_SETS_PER_PROGRAM)]
        report.programs_generated += 1
        report.cases_run += len(arg_sets)
        failure = _evaluate_sketch(sketch, arg_sets)
        if failure is None:
            report.count("agreed")
            continue
        kind, detail = failure
        report.count(kind)
        original_size = sketch_size(sketch)
        shrunk = _shrink(sketch, arg_sets, report)
        record = FrontendFuzzFailure(iteration, kind, detail, shrunk,
                                     arg_sets, original_size)
        report.failures.append(record)
        if corpus_dir:
            _persist_failure(corpus_dir, record)
        if progress is not None:
            progress("iteration %d: FAILURE (%s): %s"
                     % (iteration, kind, detail))
        if progress is not None and (iteration + 1) % 20 == 0:
            progress("iteration %d/%d: %d failure(s)"
                     % (iteration + 1, iterations,
                        len(report.failures)))
    report.elapsed = time.perf_counter() - start
    if corpus_dir:
        _persist_report(corpus_dir, report)
    return report


# ---------------------------------------------------------------------------
# Corpus persistence (same layout conventions as repro.check.fuzz).

def _persist_failure(corpus_dir: str,
                     failure: FrontendFuzzFailure) -> None:
    os.makedirs(corpus_dir, exist_ok=True)
    stem = "frontend-failure-%03d" % failure.iteration
    with open(os.path.join(corpus_dir, stem + ".json"), "w") as handle:
        json.dump(failure.to_dict(), handle, indent=2, sort_keys=True)
    source = sketch_to_python(failure.sketch)
    rendering = "# %s: %s\n%s" % (failure.kind,
                                  failure.detail.replace("\n", " | "),
                                  source)
    try:
        program = compile_source(source, name="fuzz_program")
        rendering += "\n# Compiled IR:\n# " + "\n# ".join(
            format_function(program.function).splitlines()) + "\n"
    except Exception as error:
        rendering += "\n# compilation failed: %s\n" % error
    with open(os.path.join(corpus_dir, stem + ".py"), "w") as handle:
        handle.write(rendering)


def _persist_report(corpus_dir: str,
                    report: FrontendFuzzReport) -> None:
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, "frontend-report.json")
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
