"""Strongly connected components (iterative Tarjan) and condensation.

Both DSWP and GREMIO schedule the *condensation* of (parts of) the PDG:
dependence cycles must stay together under DSWP's pipeline discipline, and
GREMIO's list scheduler treats them as indivisible units (splitting a cycle
across cores costs a communication round trip per iteration).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Set, Tuple


def strongly_connected_components(
        nodes: Iterable[Hashable],
        successors: Mapping[Hashable, Iterable[Hashable]]
) -> List[List[Hashable]]:
    """Tarjan's algorithm, iteratively (no recursion-limit surprises).

    Returns components in *reverse* topological order of the condensation
    (Tarjan's natural output order): every successor component of C appears
    before C in the returned list.
    """
    node_list = list(nodes)
    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []
    counter = [0]

    for root in node_list:
        if root in index_of:
            continue
        # Each work item: (node, iterator over its successors).
        work = [(root, iter(successors.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condense(nodes: Iterable[Hashable],
             successors: Mapping[Hashable, Iterable[Hashable]]
             ) -> Tuple[List[List[Hashable]], Dict[Hashable, int],
                        Dict[int, Set[int]]]:
    """Condense a graph into its SCC DAG.

    Returns ``(components, component_of, dag_successors)`` where components
    are indexed in a valid *topological* order of the DAG (sources first).
    """
    components = strongly_connected_components(nodes, successors)
    components.reverse()  # Tarjan emits reverse-topological; flip it.
    component_of: Dict[Hashable, int] = {}
    for index, component in enumerate(components):
        for node in component:
            component_of[node] = index
    dag_successors: Dict[int, Set[int]] = {i: set()
                                           for i in range(len(components))}
    for node in component_of:
        for succ in successors.get(node, ()):
            a, b = component_of[node], component_of[succ]
            if a != b:
                dag_successors[a].add(b)
    return components, component_of, dag_successors
