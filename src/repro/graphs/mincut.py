"""Max-flow / min-cut on directed graphs.

This is the optimization engine of the COCO extension (companion paper,
Section 3.1): the placement of register communication is a single-source
single-sink min cut (solved exactly with Edmonds-Karp, as in the paper), and
the placement of memory synchronization is a multi-source-sink-pair min cut
(NP-hard; solved with the paper's successive-pair heuristic).

Arc capacities may be :data:`INFINITY` — such arcs can never participate in
a cut (the paper uses this to encode Safety and the relevance properties).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

INFINITY = float("inf")

Arc = Tuple[Hashable, Hashable]


class FlowGraph:
    """A directed graph with arc capacities (parallel arcs merge)."""

    def __init__(self):
        self.capacity: Dict[Hashable, Dict[Hashable, float]] = {}
        self.nodes: Set[Hashable] = set()

    def add_node(self, node: Hashable) -> None:
        self.nodes.add(node)
        self.capacity.setdefault(node, {})

    def add_arc(self, source: Hashable, target: Hashable,
                capacity: float) -> None:
        if capacity < 0:
            raise ValueError("negative capacity on arc %r->%r"
                             % (source, target))
        self.add_node(source)
        self.add_node(target)
        edges = self.capacity[source]
        current = edges.get(target)
        if current is None:
            edges[target] = capacity
        else:
            edges[target] = current + capacity

    def arc_capacity(self, source: Hashable, target: Hashable) -> float:
        return self.capacity.get(source, {}).get(target, 0.0)

    def arcs(self) -> Iterable[Tuple[Hashable, Hashable, float]]:
        for source, edges in self.capacity.items():
            for target, capacity in edges.items():
                yield source, target, capacity

    def successors(self, node: Hashable) -> Iterable[Hashable]:
        return self.capacity.get(node, {}).keys()

    def copy(self) -> "FlowGraph":
        clone = FlowGraph()
        clone.nodes = set(self.nodes)
        clone.capacity = {node: dict(edges)
                          for node, edges in self.capacity.items()}
        return clone

    def remove_arc(self, source: Hashable, target: Hashable) -> None:
        self.capacity.get(source, {}).pop(target, None)

    def __contains__(self, node: Hashable) -> bool:
        return node in self.nodes


class MinCutResult:
    """A minimum cut: the arcs crossing it, its value, and the source side."""

    def __init__(self, cut_arcs: List[Arc], value: float,
                 source_side: Set[Hashable]):
        self.cut_arcs = cut_arcs
        self.value = value
        self.source_side = source_side

    def __repr__(self) -> str:  # pragma: no cover
        return "<MinCut value=%s arcs=%s>" % (self.value, self.cut_arcs)


class InfiniteCutError(Exception):
    """Every source-to-sink cut has infinite capacity."""


def _bfs_augmenting_path(residual: Dict[Hashable, Dict[Hashable, float]],
                         source: Hashable, sink: Hashable
                         ) -> Optional[List[Hashable]]:
    parent: Dict[Hashable, Hashable] = {source: source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        if node == sink:
            break
        for succ, capacity in residual.get(node, {}).items():
            if capacity > 0 and succ not in parent:
                parent[succ] = node
                frontier.append(succ)
    if sink not in parent:
        return None
    path = [sink]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def min_cut(graph: FlowGraph, source: Hashable,
            sink: Hashable) -> MinCutResult:
    """Edmonds-Karp max-flow; the min cut is read off the final residual.

    Raises :class:`InfiniteCutError` if the max flow is unbounded (an
    all-infinite path from source to sink).
    """
    if source not in graph or sink not in graph:
        return MinCutResult([], 0.0, {source})
    residual: Dict[Hashable, Dict[Hashable, float]] = {
        node: {} for node in graph.nodes}
    for u, v, capacity in graph.arcs():
        residual[u][v] = residual[u].get(v, 0.0) + capacity
        residual[v].setdefault(u, 0.0)

    while True:
        path = _bfs_augmenting_path(residual, source, sink)
        if path is None:
            break
        bottleneck = min(residual[u][v] for u, v in zip(path, path[1:]))
        if bottleneck == INFINITY:
            raise InfiniteCutError(
                "unbounded flow from %r to %r" % (source, sink))
        for u, v in zip(path, path[1:]):
            residual[u][v] -= bottleneck
            residual[v][u] = residual[v].get(u, 0.0) + bottleneck

    # Source side = nodes reachable in the residual graph.
    source_side: Set[Hashable] = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ, capacity in residual.get(node, {}).items():
            if capacity > 0 and succ not in source_side:
                source_side.add(succ)
                frontier.append(succ)

    # Every arc crossing the partition is part of the cut — including
    # zero-capacity arcs: a zero *cost* (e.g. a profile weight of zero for
    # a never-executed path) still requires the cut action there for the
    # disconnection to hold on all paths.
    cut_arcs: List[Arc] = []
    value = 0.0
    for u, v, capacity in graph.arcs():
        if u in source_side and v not in source_side:
            cut_arcs.append((u, v))
            value += capacity
    return MinCutResult(cut_arcs, value, source_side)


def multi_pair_min_cut(graph: FlowGraph,
                       pairs: Sequence[Tuple[Hashable, Hashable]]
                       ) -> MinCutResult:
    """Heuristic multi-commodity min cut (companion paper, Section 3.1.3).

    The exact problem (disconnect every (source, sink) pair) is NP-hard, so,
    as in the paper, the optimal single-pair algorithm is applied to each
    pair in turn; arcs cut for one pair are removed from the graph so they
    help disconnect subsequent pairs for free.
    """
    working = graph.copy()
    all_cut_arcs: List[Arc] = []
    total = 0.0
    for source, sink in pairs:
        if source not in working or sink not in working:
            continue
        result = min_cut(working, source, sink)
        if not result.cut_arcs:
            # Already disconnected (possibly by a previous pair's cut).
            continue
        for u, v in result.cut_arcs:
            working.remove_arc(u, v)
        all_cut_arcs.extend(result.cut_arcs)
        total += result.value
    return MinCutResult(all_cut_arcs, total, set())
