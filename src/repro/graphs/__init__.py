"""Standalone graph algorithms: SCC, topological sort, max-flow/min-cut."""

from .scc import condense, strongly_connected_components
from .topo import CycleError, topological_sort
from .mincut import (FlowGraph, INFINITY, MinCutResult, min_cut,
                     multi_pair_min_cut)

__all__ = [
    "condense", "strongly_connected_components", "CycleError",
    "topological_sort", "FlowGraph", "INFINITY", "MinCutResult", "min_cut",
    "multi_pair_min_cut",
]
