"""Topological sorting (Kahn's algorithm, deterministic tie-breaking)."""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Mapping, Optional


class CycleError(Exception):
    """The graph has a cycle where a DAG was required."""


def topological_sort(nodes: Iterable[Hashable],
                     successors: Mapping[Hashable, Iterable[Hashable]],
                     priority: Optional[Mapping[Hashable, object]] = None
                     ) -> List[Hashable]:
    """Kahn's algorithm.  Among simultaneously-ready nodes, the one with the
    smallest ``priority`` (default: insertion order) is emitted first, so the
    result is deterministic and callers can bias ties (e.g. program order).
    """
    node_list = list(nodes)
    order_index = {node: index for index, node in enumerate(node_list)}
    if priority is None:
        rank = order_index
    else:
        rank = {node: (priority[node], order_index[node])
                for node in node_list}
    in_degree: Dict[Hashable, int] = {node: 0 for node in node_list}
    for node in node_list:
        for succ in successors.get(node, ()):
            in_degree[succ] += 1
    ready = [(rank[node], node) for node in node_list
             if in_degree[node] == 0]
    heapq.heapify(ready)
    result: List[Hashable] = []
    while ready:
        _, node = heapq.heappop(ready)
        result.append(node)
        for succ in successors.get(node, ()):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(ready, (rank[succ], succ))
    if len(result) != len(node_list):
        raise CycleError("graph has a cycle; %d of %d nodes sorted"
                         % (len(result), len(node_list)))
    return result
