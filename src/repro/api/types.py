"""Versioned request/response types of the ``repro.api`` facade.

:class:`EvaluateRequest` is the wire-level description of one
evaluation-matrix cell (workload, technique, coco, threads, scale,
alias mode, ...).  It validates itself against the live registries
(workload names, techniques), converts to/from the pipeline's
:class:`~repro.pipeline.matrix.MatrixCell`, and derives a deterministic
**request key** — a content fingerprint that the ``repro serve`` daemon
uses for idempotent response memoization and stale-artifact lookup.

:class:`EvaluateResult` is the matching response: the paper metrics of
one :class:`~repro.pipeline.core.Evaluation`, the per-stage cache
fingerprints, the run telemetry, and the service markers (``stale``,
``memoized``).  Both types round-trip through plain JSON-able dicts and
carry ``schema_version`` so clients can detect incompatible servers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..machine.backend import BACKENDS, DEFAULT_BACKEND
from ..pipeline.fingerprint import SCHEMA_VERSION as PIPELINE_SCHEMA
from ..pipeline.fingerprint import digest
from ..pipeline.matrix import MatrixCell, Overrides, validate_overrides
from ..pipeline.stages import TECHNIQUES

#: Bumped on any incompatible change to the request/response layout.
API_SCHEMA_VERSION = "repro.api/v1"

#: Bumped on any incompatible change to the tune request/leaderboard
#: layout (the tune schema evolves independently of the evaluate one).
TUNE_SCHEMA_VERSION = "repro.tune/v1"

SCALES = ("train", "ref")
ALIAS_MODES = ("annotated", "provenance", "none")
LOCAL_SCHEDULES = (None, "early", "late", "neutral")

#: Search strategies ``repro tune`` accepts (see
#: :mod:`repro.tune.strategies`).
STRATEGIES = ("grid", "random", "greedy")


class RequestValidationError(ValueError):
    """The request is malformed or names unknown entities (HTTP 400)."""


#: The program-input kinds :class:`ProgramSpec` accepts.
PROGRAM_KINDS = ("registry", "ir", "source")

#: Upper bound on inline program text (UTF-8 bytes); ``repro serve``
#: turns anything larger into a 400 before a worker ever sees it.
MAX_INLINE_PROGRAM_BYTES = 64 * 1024


@dataclass(frozen=True)
class ProgramSpec:
    """The canonical program input: a validated union of a registry
    workload reference, inline IR text, or inline Python source.

    * ``ProgramSpec.registry("ks")`` — a named workload from
      :mod:`repro.workloads` (exactly what the deprecated
      ``workload=`` field meant);
    * ``ProgramSpec.inline_ir(text)`` — textual IR, parsed and verified;
    * ``ProgramSpec.source(text)`` — Python source compiled by
      :mod:`repro.frontend`.

    Inline programs materialize into session workloads named by a
    content hash (:meth:`workload_name`), so identical programs share
    request keys — and therefore artifact-cache entries and ``repro
    serve`` memo hits — while registry references keep their historical
    names and keys byte-identical."""

    kind: str
    value: str
    #: For ``source`` programs: the target function name (default: the
    #: first function defined in the module).
    name: Optional[str] = None

    @classmethod
    def registry(cls, name: str) -> "ProgramSpec":
        return cls(kind="registry", value=name)

    @classmethod
    def inline_ir(cls, text: str) -> "ProgramSpec":
        return cls(kind="ir", value=text)

    @classmethod
    def source(cls, text: str,
               name: Optional[str] = None) -> "ProgramSpec":
        return cls(kind="source", value=text, name=name)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ProgramSpec":
        if not isinstance(data, Mapping):
            raise RequestValidationError(
                "program must be a JSON object with 'kind' and 'value', "
                "got %s" % type(data).__name__)
        unknown = sorted(set(data) - {"kind", "value", "name"})
        if unknown:
            raise RequestValidationError(
                "unknown program field(s): %s" % ", ".join(unknown))
        try:
            return cls(**dict(data))
        except TypeError as error:
            raise RequestValidationError(str(error))

    def validate(self) -> "ProgramSpec":
        """Check shape, size cap, registry existence — and, for inline
        programs, that they actually compile/parse and verify (which
        also materializes them as session workloads, so later
        ``get_workload`` calls in this process resolve them)."""
        if self.kind not in PROGRAM_KINDS:
            raise RequestValidationError(
                "unknown program kind %r (use one of %s)"
                % (self.kind, ", ".join(PROGRAM_KINDS)))
        if not isinstance(self.value, str) or not self.value.strip():
            raise RequestValidationError(
                "program value must be non-empty text")
        if self.name is not None and not isinstance(self.name, str):
            raise RequestValidationError(
                "program name must be a string, got %r" % (self.name,))
        if self.kind == "registry":
            from ..workloads import unknown_workload_message, workload_names
            if self.value not in workload_names():
                raise RequestValidationError(
                    unknown_workload_message(self.value))
            return self
        encoded = len(self.value.encode("utf-8"))
        if encoded > MAX_INLINE_PROGRAM_BYTES:
            raise RequestValidationError(
                "inline program too large: %d bytes (cap %d)"
                % (encoded, MAX_INLINE_PROGRAM_BYTES))
        from ..workloads.inline import materialize_program
        materialize_program(self)  # raises RequestValidationError
        return self

    def workload_name(self) -> str:
        """The workload-registry name this program evaluates under:
        the registry name itself, or a content-hashed session name for
        inline programs (identical content ⇒ identical name ⇒ shared
        request keys and cache entries)."""
        if self.kind == "registry":
            return self.value
        tag = digest("program:" + self.kind, self.value,
                     self.name or "")[:12]
        return "inline-%s-%s" % ("ir" if self.kind == "ir" else "py",
                                 tag)

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value,
                "name": self.name}


@dataclass(frozen=True)
class EvaluateRequest:
    """One evaluation-matrix cell, as clients describe it.

    The program under evaluation is described by ``program`` (a
    :class:`ProgramSpec`); the derived ``workload`` string is kept as a
    read-only convenience and must equal ``program.workload_name()``.
    (The PR-9 ``workload=``-only constructor shim has completed its
    one-release deprecation window and now raises
    :class:`RequestValidationError`.)"""

    workload: str = ""
    technique: str = "gremio"
    coco: bool = False
    n_threads: int = 2
    scale: str = "ref"
    alias_mode: str = "annotated"
    local_schedule: Optional[str] = None
    mt_check: bool = False
    check: bool = True
    trace: bool = False
    topology: Optional[str] = None
    placer: str = "identity"
    backend: str = DEFAULT_BACKEND
    #: Namespaced ``(knob, value)`` tuning overrides — ``machine.<field>``
    #: or ``partitioner.<param>`` pairs (see
    #: :func:`repro.pipeline.matrix.validate_overrides`).  Part of the
    #: request key when non-empty; the empty default keeps keys
    #: byte-compatible with pre-tune clients.
    overrides: Overrides = ()
    schema_version: str = API_SCHEMA_VERSION
    #: The canonical program input (required).
    program: Optional[ProgramSpec] = None

    def __post_init__(self):
        program = self.program
        if program is not None and not isinstance(program, ProgramSpec):
            raise RequestValidationError(
                "program must be a ProgramSpec, got %r" % (program,))
        if program is None:
            if isinstance(self.workload, str) and self.workload:
                raise RequestValidationError(
                    "EvaluateRequest(workload=...) was removed after "
                    "its deprecation window; pass "
                    "program=ProgramSpec.registry(%r)" % self.workload)
        elif not self.workload:
            object.__setattr__(self, "workload",
                               program.workload_name())

    # -- validation --------------------------------------------------------

    def validate(self) -> "EvaluateRequest":
        """Return self after checking every field against the live
        registries; raise :class:`RequestValidationError` otherwise."""
        if self.schema_version != API_SCHEMA_VERSION:
            raise RequestValidationError(
                "schema mismatch: request has %r, this facade speaks %r"
                % (self.schema_version, API_SCHEMA_VERSION))
        if self.program is None:
            raise RequestValidationError(
                "missing workload name (pass program=ProgramSpec....)")
        self.program.validate()
        expected = self.program.workload_name()
        if self.workload != expected:
            raise RequestValidationError(
                "workload %r does not match the program (which "
                "evaluates as %r)" % (self.workload, expected))
        if self.technique not in TECHNIQUES:
            raise RequestValidationError(
                "unknown technique %r (use one of %s)"
                % (self.technique, ", ".join(TECHNIQUES)))
        if not isinstance(self.n_threads, int) or isinstance(
                self.n_threads, bool) or self.n_threads < 1:
            raise RequestValidationError(
                "n_threads must be a positive integer, got %r"
                % (self.n_threads,))
        if self.scale not in SCALES:
            raise RequestValidationError(
                "unknown scale %r (use one of %s)"
                % (self.scale, ", ".join(SCALES)))
        if self.alias_mode not in ALIAS_MODES:
            raise RequestValidationError(
                "unknown alias_mode %r (use one of %s)"
                % (self.alias_mode, ", ".join(ALIAS_MODES)))
        if self.local_schedule not in LOCAL_SCHEDULES:
            raise RequestValidationError(
                "unknown local_schedule %r (use early/late/neutral)"
                % (self.local_schedule,))
        for name in ("coco", "mt_check", "check", "trace"):
            if not isinstance(getattr(self, name), bool):
                raise RequestValidationError(
                    "%s must be a boolean, got %r"
                    % (name, getattr(self, name)))
        from ..machine.placement import PLACERS
        from ..machine.topology import TOPOLOGIES
        if self.topology is not None:
            if self.topology not in TOPOLOGIES:
                raise RequestValidationError(
                    "unknown topology %r (use one of %s)"
                    % (self.topology, ", ".join(sorted(TOPOLOGIES))))
            preset = TOPOLOGIES[self.topology]
            if self.n_threads > preset.n_cores:
                raise RequestValidationError(
                    "n_threads=%d exceeds topology %r (%d cores)"
                    % (self.n_threads, self.topology, preset.n_cores))
        if self.placer not in PLACERS:
            raise RequestValidationError(
                "unknown placer %r (use one of %s)"
                % (self.placer, ", ".join(PLACERS)))
        if self.backend not in BACKENDS:
            raise RequestValidationError(
                "unknown backend %r (use one of %s)"
                % (self.backend, ", ".join(BACKENDS)))
        if self.overrides:
            try:
                canonical = validate_overrides(self.overrides,
                                               self.technique)
            except ValueError as error:
                raise RequestValidationError(str(error))
            except TypeError:
                raise RequestValidationError(
                    "overrides must be a list of (name, value) pairs, "
                    "got %r" % (self.overrides,))
            if canonical != tuple(self.overrides):
                return replace(self, overrides=canonical)
        return self

    # -- conversions -------------------------------------------------------

    def cell(self) -> MatrixCell:
        overrides = tuple(tuple(pair) for pair in self.overrides)
        return MatrixCell(self.workload, self.technique, self.coco,
                          self.n_threads, self.scale, self.alias_mode,
                          self.local_schedule, self.mt_check,
                          self.topology, self.placer, self.backend,
                          overrides)

    @classmethod
    def from_cell(cls, cell: MatrixCell, check: bool = True,
                  program: Optional[ProgramSpec] = None
                  ) -> "EvaluateRequest":
        """Wrap a matrix cell back into a request.  ``program`` carries
        the original spec for inline-program cells; without it the cell
        is assumed to name a registry workload."""
        if program is None:
            program = ProgramSpec.registry(cell.workload)
        return cls(workload=cell.workload, technique=cell.technique,
                   coco=cell.coco, n_threads=cell.n_threads,
                   scale=cell.scale, alias_mode=cell.alias_mode,
                   local_schedule=cell.local_schedule,
                   mt_check=cell.mt_check, check=check,
                   topology=cell.topology, placer=cell.placer,
                   backend=cell.backend, overrides=cell.overrides,
                   program=program)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EvaluateRequest":
        """Build and validate a request from a plain (JSON) mapping.
        Unknown keys are rejected — a typoed field silently falling back
        to a default is worse than a 400."""
        if not isinstance(data, Mapping):
            raise RequestValidationError(
                "request body must be a JSON object, got %s"
                % type(data).__name__)
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(data) - known)
        if unknown:
            raise RequestValidationError(
                "unknown request field(s): %s" % ", ".join(unknown))
        data = dict(data)
        if data.get("program") is not None:
            data["program"] = ProgramSpec.from_dict(data["program"])
        try:
            request = cls(**data)
        except TypeError as error:
            raise RequestValidationError(str(error))
        return request.validate()

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    # -- identity ----------------------------------------------------------

    def request_key(self) -> str:
        """Deterministic idempotency key: a digest over the pipeline
        schema, the API schema, and every cell-identifying field.  Two
        requests for the same work always collide; any bump of either
        schema invalidates memoized responses.  ``backend`` is *not*
        part of the key — backends are bit-identical, so a memoized
        reference response answers a fast request and vice versa (and
        keys stay byte-compatible with pre-backend clients)."""
        cell = self.cell()
        return digest("api:evaluate", PIPELINE_SCHEMA, API_SCHEMA_VERSION,
                      repr(cell.identity()), repr(self.check),
                      repr(self.trace))


@dataclass
class EvaluateResult:
    """The response for one evaluated cell."""

    request: EvaluateRequest
    metrics: Dict[str, float] = field(default_factory=dict)
    fingerprints: Dict[str, Optional[str]] = field(default_factory=dict)
    telemetry: Optional[Dict[str, object]] = None
    stale: bool = False
    memoized: bool = False
    stale_age_seconds: Optional[float] = None
    trace: Optional[Dict[str, object]] = None
    schema_version: str = API_SCHEMA_VERSION

    @classmethod
    def from_evaluation(cls, request: EvaluateRequest,
                        evaluation) -> "EvaluateResult":
        """Wrap a finished :class:`~repro.pipeline.core.Evaluation`."""
        trace = getattr(evaluation, "trace", None)
        return cls(
            request=request,
            metrics=dict(evaluation.metrics()),
            fingerprints=dict(evaluation.fingerprints),
            telemetry=(evaluation.telemetry.to_dict()
                       if evaluation.telemetry is not None else None),
            trace=(trace.summary() if trace is not None else None))

    @property
    def speedup(self) -> float:
        return float(self.metrics.get("speedup", 0.0))

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "request": self.request.as_dict(),
            "metrics": dict(self.metrics),
            "fingerprints": dict(self.fingerprints),
            "telemetry": self.telemetry,
            "stale": self.stale,
            "memoized": self.memoized,
            "stale_age_seconds": self.stale_age_seconds,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EvaluateResult":
        if not isinstance(data, Mapping) or "request" not in data:
            raise RequestValidationError(
                "not an EvaluateResult document (missing 'request')")
        schema = data.get("schema_version", API_SCHEMA_VERSION)
        if schema != API_SCHEMA_VERSION:
            raise RequestValidationError(
                "schema mismatch: document has %r, this facade speaks %r"
                % (schema, API_SCHEMA_VERSION))
        request = EvaluateRequest.from_dict(data["request"])
        age = data.get("stale_age_seconds")
        return cls(request=request,
                   metrics={str(k): float(v)
                            for k, v in data.get("metrics", {}).items()},
                   fingerprints=dict(data.get("fingerprints", {})),
                   telemetry=data.get("telemetry"),
                   stale=bool(data.get("stale", False)),
                   memoized=bool(data.get("memoized", False)),
                   stale_age_seconds=(float(age) if age is not None
                                      else None),
                   trace=data.get("trace"),
                   schema_version=schema)

    def marked(self, stale: Optional[bool] = None,
               memoized: Optional[bool] = None,
               stale_age_seconds: Optional[float] = None
               ) -> "EvaluateResult":
        """A copy with service markers updated (results are shared
        between the memo and concurrent responses, so never mutated)."""
        result = replace(self)
        if stale is not None:
            result.stale = stale
        if memoized is not None:
            result.memoized = memoized
        if stale_age_seconds is not None:
            result.stale_age_seconds = stale_age_seconds
        return result


@dataclass(frozen=True)
class TuneRequest:
    """One auto-tuning run: search the declared knob space for the
    configurations minimizing total MT cycles on each workload.

    ``knobs`` optionally restricts the search to a subset of the knob
    space (empty = every knob of :data:`repro.tune.space.DEFAULT_SPACE`).
    ``backend`` is excluded from :meth:`request_key` — like evaluation
    requests, tuning over bit-identical backends is the same work.
    """

    workloads: Tuple[str, ...] = ()
    strategy: str = "greedy"
    budget: int = 24
    seed: int = 0
    n_threads: int = 2
    scale: str = "train"
    backend: str = DEFAULT_BACKEND
    knobs: Tuple[str, ...] = ()
    schema_version: str = TUNE_SCHEMA_VERSION

    def validate(self) -> "TuneRequest":
        """Return self (canonicalized) after checking every field;
        raise :class:`RequestValidationError` otherwise."""
        from ..workloads import unknown_workload_message, workload_names
        if self.schema_version != TUNE_SCHEMA_VERSION:
            raise RequestValidationError(
                "schema mismatch: request has %r, this facade speaks %r"
                % (self.schema_version, TUNE_SCHEMA_VERSION))
        workloads = tuple(self.workloads)
        if not workloads:
            raise RequestValidationError(
                "tune request needs at least one workload "
                "(see `python -m repro list`)")
        for name in workloads:
            if name not in workload_names():
                raise RequestValidationError(
                    unknown_workload_message(name))
        if self.strategy not in STRATEGIES:
            raise RequestValidationError(
                "unknown strategy %r (use one of %s)"
                % (self.strategy, ", ".join(STRATEGIES)))
        if not isinstance(self.budget, int) or isinstance(
                self.budget, bool) or self.budget < 1:
            raise RequestValidationError(
                "budget must be a positive integer (candidate "
                "evaluations per workload), got %r" % (self.budget,))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise RequestValidationError(
                "seed must be an integer, got %r" % (self.seed,))
        if not isinstance(self.n_threads, int) or isinstance(
                self.n_threads, bool) or self.n_threads < 1:
            raise RequestValidationError(
                "n_threads must be a positive integer, got %r"
                % (self.n_threads,))
        if self.scale not in SCALES:
            raise RequestValidationError(
                "unknown scale %r (use one of %s)"
                % (self.scale, ", ".join(SCALES)))
        if self.backend not in BACKENDS:
            raise RequestValidationError(
                "unknown backend %r (use one of %s)"
                % (self.backend, ", ".join(BACKENDS)))
        knobs = tuple(self.knobs)
        if knobs:
            # Validated against the live space lazily: repro.tune sits
            # above the api facade in the layer order.
            from ..tune.space import DEFAULT_SPACE
            try:
                DEFAULT_SPACE.subspace(knobs)
            except ValueError as error:
                raise RequestValidationError(str(error))
        if workloads != self.workloads or knobs != self.knobs:
            return replace(self, workloads=workloads, knobs=knobs)
        return self

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuneRequest":
        """Build and validate a tune request from a plain (JSON)
        mapping; unknown keys are rejected."""
        if not isinstance(data, Mapping):
            raise RequestValidationError(
                "request body must be a JSON object, got %s"
                % type(data).__name__)
        unknown = sorted(set(data) - set(cls.__dataclass_fields__))
        if unknown:
            raise RequestValidationError(
                "unknown request field(s): %s" % ", ".join(unknown))
        try:
            request = cls(**dict(data))
        except TypeError as error:
            raise RequestValidationError(str(error))
        return request.validate()

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["workloads"] = list(self.workloads)
        data["knobs"] = list(self.knobs)
        return data

    def request_key(self) -> str:
        """Deterministic key over everything that shapes the search
        outcome: schemas, workloads, strategy, budget, seed, threads,
        scale, and the knob subset — but not ``backend`` (backends are
        bit-identical) and not ``--jobs`` (results are pool-invariant).
        The per-candidate artifact-cache memo keys derive from this
        plus each candidate's :meth:`EvaluateRequest.request_key`."""
        return digest("api:tune", TUNE_SCHEMA_VERSION, PIPELINE_SCHEMA,
                      API_SCHEMA_VERSION,
                      repr((tuple(self.workloads), self.strategy,
                            self.budget, self.seed, self.n_threads,
                            self.scale, tuple(self.knobs))))


@dataclass
class TuneResult:
    """The outcome of one tuning run: a leaderboard per workload (rank
    0 = best), the best entry per workload, and bookkeeping."""

    request: TuneRequest
    leaderboards: Dict[str, List[Dict[str, object]]] = field(
        default_factory=dict)
    best: Dict[str, Dict[str, object]] = field(default_factory=dict)
    evaluated: int = 0
    schema_version: str = TUNE_SCHEMA_VERSION

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "request": self.request.as_dict(),
            "leaderboards": {name: [dict(entry) for entry in entries]
                             for name, entries in
                             sorted(self.leaderboards.items())},
            "best": {name: dict(entry)
                     for name, entry in sorted(self.best.items())},
            "evaluated": self.evaluated,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuneResult":
        if not isinstance(data, Mapping) or "request" not in data:
            raise RequestValidationError(
                "not a TuneResult document (missing 'request')")
        schema = data.get("schema_version", TUNE_SCHEMA_VERSION)
        if schema != TUNE_SCHEMA_VERSION:
            raise RequestValidationError(
                "schema mismatch: document has %r, this facade speaks %r"
                % (schema, TUNE_SCHEMA_VERSION))
        request = TuneRequest.from_dict(data["request"])
        return cls(request=request,
                   leaderboards={str(k): list(v) for k, v in
                                 data.get("leaderboards", {}).items()},
                   best={str(k): dict(v)
                         for k, v in data.get("best", {}).items()},
                   evaluated=int(data.get("evaluated", 0)),
                   schema_version=schema)
