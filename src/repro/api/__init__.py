"""``repro.api`` — the stable, versioned facade over the GMT pipeline.

Everything outside the pipeline package (the CLI, the benchmark
subsystem, the ``repro serve`` daemon, and downstream users) imports
from here.  The surface is:

* **typed request/response**: :class:`EvaluateRequest` /
  :class:`EvaluateResult` (``API_SCHEMA_VERSION``-stamped, JSON
  round-trippable, with deterministic idempotency keys), the
  :class:`ProgramSpec` program-input union (registry name, inline IR,
  or Python source compiled by :mod:`repro.frontend`) and the
  :func:`evaluate` / :func:`evaluate_many` entry points, plus
  :class:`TuneRequest` / :class:`TuneResult` and the :func:`tune`
  search driver (``TUNE_SCHEMA_VERSION``-stamped leaderboards);
* **the classic callables**: :func:`parallelize`,
  :func:`evaluate_workload`, :func:`evaluate_matrix`,
  :func:`build_cells`, and the workload registry;
* **infrastructure handles**: the artifact cache
  (:func:`get_cache`/:func:`configure_cache`) and telemetry
  (:class:`Telemetry`, :func:`global_telemetry`).

The facade is covenanted: additions only within one
``API_SCHEMA_VERSION``; renames/removals bump it and leave one release
of ``DeprecationWarning`` shims behind.
"""

from .facade import (ArtifactCache, ArtifactStore, BACKENDS, CacheStats,
                     DEFAULT_BACKEND, HttpStore, LocalStore,
                     STORE_URL_ENV, make_store,
                     Evaluation, LatencyHistogram, MatrixCell,
                     PARTITIONER_PARAMS, PLACERS, Parallelization,
                     TECHNIQUES, TOPOLOGIES, TUNABLE_MACHINE_FIELDS,
                     Telemetry, all_workloads, build_cells,
                     configure_cache, default_cache_dir, digest, evaluate,
                     evaluate_many, evaluate_matrix, evaluate_workload,
                     fingerprint_config, fingerprint_function,
                     fingerprint_inputs, fingerprint_profile, get_cache,
                     get_topology, get_workload, global_telemetry,
                     make_partitioner, normalize, overrides_config,
                     parallelize, pool_payload, reset_global_telemetry,
                     run_cell_payload, technique_config, topology_names,
                     resolve_program, tune, unknown_workload_message,
                     validate_backend, validate_overrides,
                     workload_names)
from .client import ServiceClient, ServiceError
from .types import (ALIAS_MODES, API_SCHEMA_VERSION, LOCAL_SCHEDULES,
                    MAX_INLINE_PROGRAM_BYTES, PROGRAM_KINDS, SCALES,
                    STRATEGIES, TUNE_SCHEMA_VERSION, EvaluateRequest,
                    EvaluateResult, ProgramSpec, RequestValidationError,
                    TuneRequest, TuneResult)

__all__ = [
    # typed surface
    "API_SCHEMA_VERSION", "EvaluateRequest", "EvaluateResult",
    "ProgramSpec", "PROGRAM_KINDS", "MAX_INLINE_PROGRAM_BYTES",
    "RequestValidationError", "resolve_program",
    "evaluate", "evaluate_many",
    "ServiceClient", "ServiceError",
    "SCALES", "ALIAS_MODES", "LOCAL_SCHEDULES",
    # auto-tuning
    "TUNE_SCHEMA_VERSION", "STRATEGIES", "TuneRequest", "TuneResult",
    "tune", "validate_overrides", "overrides_config",
    "TUNABLE_MACHINE_FIELDS", "PARTITIONER_PARAMS",
    # classic callables
    "Evaluation", "Parallelization", "evaluate_workload", "parallelize",
    "MatrixCell", "build_cells", "evaluate_matrix",
    "pool_payload", "run_cell_payload",
    "TECHNIQUES", "make_partitioner", "normalize", "technique_config",
    # machine topology / placement / backend registries
    "TOPOLOGIES", "get_topology", "topology_names", "PLACERS",
    "BACKENDS", "DEFAULT_BACKEND", "validate_backend",
    # infrastructure
    "ArtifactCache", "CacheStats", "configure_cache",
    "default_cache_dir", "get_cache",
    "ArtifactStore", "HttpStore", "LocalStore", "make_store",
    "STORE_URL_ENV",
    "digest", "fingerprint_config", "fingerprint_function",
    "fingerprint_inputs", "fingerprint_profile",
    "LatencyHistogram", "Telemetry", "global_telemetry",
    "reset_global_telemetry",
    # workload registry
    "all_workloads", "get_workload", "workload_names",
    "unknown_workload_message",
]
