"""A small HTTP client for ``repro serve`` daemons and clusters.

:class:`ServiceClient` speaks the same wire surface whether the base
URL is a standalone daemon, a cluster coordinator, or one worker node —
that symmetry is the point: callers switch from single-host to sharded
serving by changing a URL, nothing else.  ``tenant`` is forwarded as
the ``X-Repro-Tenant`` fairness header (it never affects results or
request keys).  Only the standard library is used, like everything
else in the repo.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from .types import EvaluateRequest, EvaluateResult


class ServiceError(Exception):
    """A non-200 answer from the service (the document is attached)."""

    def __init__(self, status: int, document: Dict[str, object]):
        super().__init__("HTTP %d: %s"
                         % (status, document.get("error", document)))
        self.status = status
        self.document = document


class ServiceClient:
    """JSON-over-HTTP access to one service/cluster endpoint."""

    def __init__(self, base_url: str, tenant: str = "default",
                 timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- raw transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Tuple[int, bytes]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json",
                     "X-Repro-Tenant": self.tenant})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as error:
            with error:
                return error.code, error.read()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, object]] = None
              ) -> Tuple[int, Dict[str, object]]:
        status, raw = self._request(method, path, body)
        try:
            return status, json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return status, {"error": "non-JSON response",
                            "raw": raw.decode("utf-8", "replace")}

    # -- typed surface -----------------------------------------------------

    def evaluate_raw(self, body: Dict[str, object]
                     ) -> Tuple[int, Dict[str, object]]:
        """POST an already-shaped request body; returns
        ``(status, document)`` without raising on errors (tests and
        tools inspect shed/timeout documents directly)."""
        return self._json("POST", "/v1/evaluate", body)

    def evaluate(self, request: EvaluateRequest) -> EvaluateResult:
        """Evaluate through the service; raises :class:`ServiceError`
        on any non-200 disposition."""
        status, document = self.evaluate_raw(request.as_dict())
        if status != 200:
            raise ServiceError(status, document)
        return EvaluateResult.from_dict(document)

    def metrics(self) -> Dict[str, object]:
        status, document = self._json("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, document)
        return document

    def health(self) -> Dict[str, object]:
        status, document = self._json("GET", "/healthz")
        if status != 200:
            raise ServiceError(status, document)
        return document

    def schema(self) -> Dict[str, object]:
        status, document = self._json("GET", "/v1/schema")
        if status != 200:
            raise ServiceError(status, document)
        return document
