"""The callable surface of ``repro.api``.

``evaluate()``/``evaluate_many()`` are the typed entry points: they take
:class:`~repro.api.types.EvaluateRequest` objects and return
:class:`~repro.api.types.EvaluateResult` — what the ``repro serve``
daemon speaks over HTTP, and what in-process consumers should prefer.

The module also re-exports the stable pipeline surface (``parallelize``,
``evaluate_workload``, ``evaluate_matrix``, the cache and telemetry
handles, the workload registry) so the CLI, the benchmark subsystem, and
the service import **only** ``repro.api`` — never
``repro.pipeline.core``/``repro.pipeline.matrix`` internals, whose
layout is free to change underneath this facade.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

# Re-exported pipeline surface (the facade's stability boundary).
from ..machine.backend import BACKENDS, DEFAULT_BACKEND, validate_backend
from ..machine.config import TUNABLE_MACHINE_FIELDS
from ..machine.placement import PLACERS
from ..machine.topology import TOPOLOGIES, get_topology, topology_names
from ..pipeline.cache import (ArtifactCache, CacheStats, configure_cache,
                              default_cache_dir, get_cache)
from ..pipeline.store import (ArtifactStore, HttpStore, LocalStore,
                              STORE_URL_ENV, make_store)
from ..pipeline.core import (Evaluation, Parallelization,
                             evaluate_workload, parallelize)
from ..pipeline.fingerprint import (digest, fingerprint_config,
                                    fingerprint_function,
                                    fingerprint_inputs,
                                    fingerprint_profile)
from ..pipeline.matrix import (MatrixCell, build_cells, evaluate_matrix,
                               overrides_config, pool_payload,
                               run_cell_payload, validate_overrides)
from ..pipeline.stages import (PARTITIONER_PARAMS, TECHNIQUES,
                               make_partitioner, normalize,
                               technique_config)
from ..pipeline.telemetry import (LatencyHistogram, Telemetry,
                                  global_telemetry,
                                  reset_global_telemetry)
from ..workloads import (all_workloads, get_workload,
                         unknown_workload_message, workload_names)
from .types import (EvaluateRequest, EvaluateResult, ProgramSpec,
                    TuneRequest, TuneResult)

__all__ = [
    "evaluate", "evaluate_many", "tune",
    "TuneRequest", "TuneResult",
    "TUNABLE_MACHINE_FIELDS", "PARTITIONER_PARAMS",
    "validate_overrides", "overrides_config",
    "ArtifactCache", "CacheStats", "configure_cache",
    "default_cache_dir", "get_cache",
    "digest", "fingerprint_config", "fingerprint_function",
    "fingerprint_inputs", "fingerprint_profile",
    "Evaluation", "Parallelization", "evaluate_workload", "parallelize",
    "MatrixCell", "build_cells", "evaluate_matrix",
    "pool_payload", "run_cell_payload",
    "TECHNIQUES", "make_partitioner", "normalize", "technique_config",
    "TOPOLOGIES", "get_topology", "topology_names", "PLACERS",
    "BACKENDS", "DEFAULT_BACKEND", "validate_backend",
    "LatencyHistogram", "Telemetry", "global_telemetry",
    "reset_global_telemetry",
    "all_workloads", "get_workload", "workload_names",
    "unknown_workload_message",
    "ProgramSpec", "resolve_program",
]


def resolve_program(program: ProgramSpec):
    """Validate a :class:`ProgramSpec` and return its
    :class:`~repro.workloads.Workload` — registering inline programs in
    the session registry as a side effect.  This is the one-stop hook
    for callers (the CLI's ``--source``/``--ir`` flags) that need the
    workload object itself rather than a full evaluation."""
    program.validate()
    return get_workload(program.workload_name())


def evaluate(request: EvaluateRequest,
             telemetry: Optional[Telemetry] = None) -> EvaluateResult:
    """Run the full methodology for one validated request and wrap the
    outcome as a schema-versioned :class:`EvaluateResult`."""
    request = request.validate()
    config, partitioner_args = overrides_config(request.technique,
                                                request.overrides)
    evaluation = evaluate_workload(
        get_workload(request.workload), technique=request.technique,
        n_threads=request.n_threads, coco=request.coco,
        scale=request.scale, config=config, check=request.check,
        alias_mode=request.alias_mode,
        local_schedule=request.local_schedule,
        mt_check=request.mt_check, telemetry=telemetry,
        trace=request.trace, topology=request.topology,
        placer=request.placer, backend=request.backend,
        partitioner_args=partitioner_args)
    return EvaluateResult.from_evaluation(request, evaluation)


def tune(request: TuneRequest, jobs: int = 1,
         out_dir: Optional[str] = None, top: int = 10,
         progress=None) -> TuneResult:
    """Run the auto-tuning search driver for one validated request (see
    :mod:`repro.tune`) and return its schema-versioned leaderboard.
    Imported lazily: ``repro.tune`` drives this facade in a closed loop,
    so the facade must not import it at module load."""
    from ..tune.driver import run_tune
    return run_tune(request, jobs=jobs, out_dir=out_dir, top=top,
                    progress=progress)


def evaluate_many(requests: Iterable[EvaluateRequest],
                  jobs: int = 1) -> List[EvaluateResult]:
    """Evaluate several requests, fanning across a process pool with
    ``jobs > 1`` (the same machinery as ``sweep --jobs N``)."""
    requests = [request.validate() for request in requests]
    if not requests:
        return []
    check = requests[0].check
    if any(request.check != check for request in requests) \
            or any(request.trace for request in requests):
        # evaluate_matrix applies one check policy per batch and its
        # cells carry no trace flag; run the rare mixed or traced batch
        # serially instead of silently unifying it.
        return [evaluate(request) for request in requests]
    evaluations = evaluate_matrix(
        [request.cell() for request in requests], jobs=jobs, check=check)
    return [EvaluateResult.from_evaluation(request, evaluation)
            for request, evaluation in zip(requests, evaluations)]
