"""Correctness subsystem: static MT validators, the differential
execution oracle, and the fuzzing driver.

The whole reproduction rests on one invariant — for any program and any
partition, the MTCG-generated multi-threaded program is observationally
equivalent to the single-threaded original and never deadlocks.  This
package turns the ad-hoc spot checks scattered across ``debug.py`` and
the test suite into reusable, CLI-driven infrastructure:

* :mod:`repro.check.validators` — post-MTCG static checks (channel
  balance, queue-allocation conflict freedom, cross-thread register
  isolation, a conservative wait-for-graph deadlock check), run by the
  pipeline's opt-in ``check`` stage (``--check``);
* :mod:`repro.check.oracle` — the differential execution oracle with a
  bounded-step watchdog classifying hangs as deadlock vs. livelock;
* :mod:`repro.check.generate` — the random structured-program /
  random-partition grammar (shared by the fuzzer and the property
  tests; hypothesis strategies in :mod:`repro.check.strategies`);
* :mod:`repro.check.fuzz` — the resumable fuzzing loop behind
  ``python -m repro fuzz``, with greedy shrinking and a persistent
  failure corpus.

See ``docs/correctness.md`` for the invariants and workflow.
"""

from .differential_backend import (CaseResult, DifferentialReport,
                                   diff_snapshots, run_differential,
                                   run_fuzz_case, run_workload_case,
                                   snapshot_result, snapshot_trace)
from .fuzz import FuzzFailure, FuzzReport, run_fuzz
from .generate import (MEM_SIZE, SAFE_BINOPS, ProgramSketch, random_args,
                       random_partition, random_sketch, render_program,
                       shrink_candidates, sketch_from_json, sketch_size,
                       sketch_to_json)
from .oracle import VERDICTS, OracleResult, run_oracle
from .validators import (MTValidationError, ValidationReport, Violation,
                         check_channel_balance, check_deadlock_freedom,
                         check_queue_conflicts, check_register_isolation,
                         validate_program)

__all__ = [
    # validators
    "MTValidationError", "ValidationReport", "Violation",
    "check_channel_balance", "check_deadlock_freedom",
    "check_queue_conflicts", "check_register_isolation",
    "validate_program",
    # oracle
    "OracleResult", "VERDICTS", "run_oracle",
    # generation
    "MEM_SIZE", "SAFE_BINOPS", "ProgramSketch", "random_args",
    "random_partition", "random_sketch", "render_program",
    "shrink_candidates", "sketch_from_json", "sketch_size",
    "sketch_to_json",
    # fuzzing
    "FuzzFailure", "FuzzReport", "run_fuzz",
    # backend equivalence
    "CaseResult", "DifferentialReport", "diff_snapshots",
    "run_differential", "run_fuzz_case", "run_workload_case",
    "snapshot_result", "snapshot_trace",
]
