"""Differential execution oracle: run one ``(program, partition,
options)`` cell single-threaded and multi-threaded and compare every
observable.

The oracle is the dynamic half of the correctness subsystem (the static
half is :mod:`repro.check.validators`): it executes the original
function on the reference interpreter and the MTCG output on the
functional MT machine (via the tracers in :mod:`repro.debug`), then
compares

* **live-out registers** (the declared results),
* **per-address memory write sequences** (same order, same values — the
  MTCG guarantee; cross-address interleaving is legal),
* **total store counts** (a cheap redundancy that catches lost or
  duplicated writes even when final values coincide),
* **queue residue** (every produced value must be consumed).

A bounded-step watchdog classifies non-terminating MT runs: all live
threads blocked on queues is a **deadlock** (with the structured
:class:`~repro.debug.DeadlockReport`); running past the step budget
while still making progress is a **livelock**.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..debug import (DeadlockReport, Divergence, diff_write_traces,
                     trace_mt, trace_single)
from ..ir.cfg import Function
from ..mtcg.program import MTProgram

#: Possible verdicts, roughly ordered by severity.
VERDICTS = ("deadlock", "livelock", "st-timeout", "divergence",
            "liveout-mismatch", "store-count-mismatch", "queue-residue",
            "ok")


class OracleResult:
    """Outcome of one differential comparison."""

    def __init__(self, verdict: str, detail: str = "",
                 divergence: Optional[Divergence] = None,
                 deadlock: Optional[DeadlockReport] = None,
                 st_stores: int = 0, mt_stores: int = 0,
                 st_liveouts: Optional[dict] = None,
                 mt_liveouts: Optional[dict] = None):
        assert verdict in VERDICTS, verdict
        self.verdict = verdict
        self.detail = detail
        self.divergence = divergence
        self.deadlock = deadlock
        self.st_stores = st_stores
        self.mt_stores = mt_stores
        self.st_liveouts = st_liveouts
        self.mt_liveouts = mt_liveouts

    @property
    def ok(self) -> bool:
        return self.verdict == "ok"

    def describe(self) -> str:
        if self.ok:
            return "oracle: equivalent (%d stores)" % self.st_stores
        lines = ["oracle verdict: %s" % self.verdict]
        if self.detail:
            lines.append("  " + self.detail)
        if self.deadlock is not None:
            lines.append(self.deadlock.describe())
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return "<OracleResult %s>" % self.verdict


def run_oracle(function: Function, program: MTProgram,
               args: Optional[Mapping[str, object]] = None,
               initial_memory: Optional[Mapping[str, object]] = None,
               queue_capacity: int = 32,
               max_steps: int = 2_000_000) -> OracleResult:
    """Differentially execute ``function`` vs ``program`` and classify."""
    st_trace = trace_single(function, args, initial_memory, max_steps)
    if st_trace.exhausted:
        return OracleResult(
            "st-timeout",
            "single-threaded run exceeded %d steps" % max_steps,
            st_stores=len(st_trace.writes))

    mt_trace = trace_mt(program, args, initial_memory, queue_capacity,
                        max_steps)
    st_stores = len(st_trace.writes)
    mt_stores = len(mt_trace.writes)
    if mt_trace.deadlock is not None:
        return OracleResult(
            "deadlock",
            "threads %s blocked on queue(s) %s"
            % (mt_trace.deadlock.blocked_threads,
               mt_trace.deadlock.blocking_queues),
            deadlock=mt_trace.deadlock,
            st_stores=st_stores, mt_stores=mt_stores)
    if mt_trace.exhausted:
        return OracleResult(
            "livelock",
            "MT run still progressing after %d steps (ST finished in %d)"
            % (mt_trace.steps, st_trace.steps),
            st_stores=st_stores, mt_stores=mt_stores)

    divergence = diff_write_traces(st_trace.writes, mt_trace.writes)
    if divergence is not None:
        return OracleResult("divergence", divergence.describe(),
                            divergence=divergence,
                            st_stores=st_stores, mt_stores=mt_stores)

    st_liveouts = {register: st_trace.regs.get(register)
                   for register in function.live_outs}
    exit_regs = mt_trace.thread_regs[program.exit_thread]
    mt_liveouts = {register: exit_regs.get(register)
                   for register in function.live_outs}
    if st_liveouts != mt_liveouts:
        return OracleResult(
            "liveout-mismatch",
            "MT live-outs %r != ST %r" % (mt_liveouts, st_liveouts),
            st_stores=st_stores, mt_stores=mt_stores,
            st_liveouts=st_liveouts, mt_liveouts=mt_liveouts)

    if st_stores != mt_stores:
        return OracleResult(
            "store-count-mismatch",
            "MT executed %d stores, ST %d" % (mt_stores, st_stores),
            st_stores=st_stores, mt_stores=mt_stores)

    if not mt_trace.queues.all_empty():
        residue = {queue: len(pending)
                   for queue, pending in
                   enumerate(mt_trace.queues.queues) if pending}
        return OracleResult(
            "queue-residue",
            "values left in queues at exit: %r" % (residue,),
            st_stores=st_stores, mt_stores=mt_stores)

    return OracleResult("ok", st_stores=st_stores, mt_stores=mt_stores,
                        st_liveouts=st_liveouts, mt_liveouts=mt_liveouts)
